//! Criterion scaling run of the event-driven group runtime: N members on
//! one simulated clock sustain a leave+join churn trace with 2% per-copy
//! loss on the overlay rekey transport, at N ∈ {64, 256, 1024}.
//!
//! The committed `BENCH_runtime.json` is produced by the `bench_runtime`
//! binary, which runs the same fixture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rekey_bench::churn_runtime_fixture;
use rekey_proto::{GroupRuntime, RuntimeConfig};

fn bench_churn_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("churn_scale");
    g.sample_size(10);
    for members in [64usize, 256, 1024] {
        let (net, config, trace, finish) = churn_runtime_fixture(members, 8, 0xC4C4);
        g.throughput(Throughput::Elements(members as u64));
        g.bench_with_input(
            BenchmarkId::new("runtime_churn", members),
            &members,
            |b, _| {
                b.iter(|| {
                    let runtime_config = RuntimeConfig::builder().loss(0.02).seed(0xC4C4).build();
                    let mut rt = GroupRuntime::new(config.clone(), runtime_config, net.clone());
                    rt.run_trace(&trace);
                    rt.finish(finish);
                    rt.snapshot().intervals
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_churn_scale);
criterion_main!(benches);
