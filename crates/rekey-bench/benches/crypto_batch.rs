//! Criterion benchmark of the batch-rekey crypto pipeline: one churned
//! interval on a pre-grown 4k-member tree, swept across seal-thread
//! counts. The serial cell is the baseline the parallel cells answer to;
//! the committed `BENCH_crypto.json` (from the `bench_crypto` binary)
//! carries the headline 64k numbers, this bench tracks the per-interval
//! latency shape under criterion's statistics.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ModifiedKeyTree, RekeyArena};

fn rng() -> rand_chacha::ChaCha12Rng {
    rand_chacha::ChaCha12Rng::seed_from_u64(0x5EA1)
}

fn bench_crypto_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_batch");
    g.sample_size(15);
    let spec = IdSpec::new(3, 16).unwrap();
    let ids: Vec<UserId> = (0..3_900).map(|i| UserId::from_index(&spec, i)).collect();
    let (base, fresh) = ids.split_at(3_600);
    let leaves = &base[..300];

    let mut r = rng();
    let mut arena = RekeyArena::new();
    let mut tree = ModifiedKeyTree::new(&spec);
    tree.batch_rekey(base, &[], &mut r, &mut arena).unwrap();

    // The churned interval costs >1024 encryptions, so the parallel cells
    // genuinely cross the scoped-thread threshold.
    for threads in [1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements((fresh.len() + leaves.len()) as u64));
        g.bench_with_input(
            BenchmarkId::new("churn_interval", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || {
                        let mut t = tree.clone();
                        t.set_seal_threads(threads);
                        (t, rng(), RekeyArena::new())
                    },
                    |(mut t, mut r2, mut a)| {
                        t.batch_rekey(fresh, leaves, &mut r2, &mut a).unwrap();
                        a
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_crypto_batch
}
criterion_main!(benches);
