//! Criterion micro-benchmarks for the performance-critical primitives:
//! ChaCha20 key wrapping, SipHash MACs, neighbor-table operations, the
//! FORWARD next-hop computation, the splitting filter and Dijkstra routing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rekey_crypto::{chacha, siphash, Encryption, Key};
use rekey_id::{IdPrefix, IdSpec, UserId};
use rekey_net::gtitm::{generate, GtItmParams};
use rekey_net::{shortest_paths, MatrixNetwork, PlanetLabParams, RouterId};
use rekey_table::{oracle, Member, NeighborRecord, PrimaryPolicy};
use rekey_tmesh::forward::user_next_hops;

fn rng() -> rand_chacha::ChaCha12Rng {
    rand_chacha::ChaCha12Rng::seed_from_u64(0xBE7C)
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let mut r = rng();
    let key = [7u8; chacha::KEY_LEN];
    let nonce = [3u8; chacha::NONCE_LEN];

    g.throughput(Throughput::Bytes(chacha::BLOCK_LEN as u64));
    g.bench_function("chacha20_block", |b| {
        b.iter(|| chacha::block(std::hint::black_box(&key), 1, std::hint::black_box(&nonce)))
    });

    let mut buf = vec![0u8; 1024];
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("chacha20_xor_1k", |b| {
        b.iter(|| chacha::xor_stream(&key, 0, &nonce, std::hint::black_box(&mut buf)))
    });

    let data = vec![0xA5u8; 256];
    g.throughput(Throughput::Bytes(256));
    g.bench_function("siphash24_256B", |b| {
        b.iter(|| siphash::siphash24(&[1u8; 16], std::hint::black_box(&data)))
    });

    let spec = IdSpec::PAPER;
    let aux = Key::random(IdPrefix::new(&spec, vec![3]).unwrap(), &mut r);
    let group_key = Key::random(IdPrefix::root(), &mut r);
    g.throughput(Throughput::Elements(1));
    g.bench_function("encryption_seal", |b| {
        b.iter(|| Encryption::seal(&aux, &group_key, &mut r))
    });
    let sealed = Encryption::seal(&aux, &group_key, &mut r);
    g.bench_function("encryption_open", |b| b.iter(|| sealed.open(&aux).unwrap()));
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    let mut r = rng();
    let spec = IdSpec::PAPER;
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut r);
    let members: Vec<Member> = (0..200)
        .map(|i| Member {
            id: UserId::from_index(&spec, r.gen_range(0..1_000_000)),
            host: rekey_net::HostId(i % 226),
            joined_at: i as u64,
        })
        .collect();

    g.bench_function("oracle_build_one_table_200", |b| {
        b.iter(|| {
            oracle::build_table(
                &spec,
                &members[0],
                &members,
                &net,
                4,
                PrimaryPolicy::SmallestRtt,
            )
        })
    });

    let table = oracle::build_table(
        &spec,
        &members[0],
        &members,
        &net,
        4,
        PrimaryPolicy::SmallestRtt,
    );
    g.bench_function("neighbor_insert_remove", |b| {
        let extra = Member {
            id: UserId::from_index(&spec, 999_999_999),
            host: rekey_net::HostId(5),
            joined_at: 9,
        };
        b.iter_batched(
            || table.clone(),
            |mut t| {
                t.insert(NeighborRecord {
                    member: extra.clone(),
                    rtt: 1,
                });
                t.remove(&extra.id);
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("forward_next_hops", |b| {
        b.iter(|| user_next_hops(std::hint::black_box(&table), 0))
    });
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("split");
    let mut r = rng();
    let spec = IdSpec::PAPER;
    // A realistic rekey message: ~1000 encryptions with mixed-depth IDs.
    let keys: Vec<Key> = (0..1000)
        .map(|i| {
            let len = i % (spec.depth() + 1);
            let digits: Vec<u16> = (0..len).map(|_| r.gen_range(0..256)).collect();
            Key::random(IdPrefix::new(&spec, digits).unwrap(), &mut r)
        })
        .collect();
    let root = Key::random(IdPrefix::root(), &mut r);
    let message: Vec<Encryption> = keys
        .iter()
        .map(|k| Encryption::seal(k, &root, &mut r))
        .collect();
    let indices: Vec<usize> = (0..message.len()).collect();
    let target = UserId::from_index(&spec, 123_456).prefix(2);

    g.throughput(Throughput::Elements(message.len() as u64));
    g.bench_function("split_for_neighbor_1000", |b| {
        b.iter(|| {
            rekey_proto::split_for_neighbor(&indices, &message, std::hint::black_box(&target))
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    g.sample_size(20);
    let mut r = rng();
    let topo = generate(&GtItmParams::default(), &mut r);
    let graph = topo.into_graph();
    g.bench_function("dijkstra_5000_routers", |b| {
        b.iter(|| shortest_paths(std::hint::black_box(&graph), RouterId(0)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_crypto, bench_tables, bench_split, bench_routing
}
criterion_main!(benches);
