//! Criterion benchmarks of whole rekeying operations at group scale:
//! batch rekeying on the three key trees, end-to-end split rekey transport,
//! and T-mesh multicast sessions on the event engine.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ClusteredKeyTree, KeyRing, ModifiedKeyTree, OriginalKeyTree, RekeyArena};
use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
use rekey_proto::{tmesh_rekey_transport, TransportOptions};
use rekey_table::{Member, PrimaryPolicy};
use rekey_tmesh::{Source, TmeshGroup};

fn rng() -> rand_chacha::ChaCha12Rng {
    rand_chacha::ChaCha12Rng::seed_from_u64(0x11EC)
}

fn unique_ids(spec: &IdSpec, n: usize, r: &mut impl Rng) -> Vec<UserId> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let id = UserId::from_index(spec, r.gen_range(0..spec.id_space()));
        if seen.insert(id.clone()) {
            out.push(id);
        }
    }
    out
}

fn bench_batch_rekey(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_rekey_1024_users_64_churn");
    g.sample_size(20);
    let mut r = rng();
    let spec = IdSpec::PAPER;
    let ids = unique_ids(&spec, 1024 + 64, &mut r);
    let (base, fresh) = ids.split_at(1024);
    let leaves = &base[..64];

    let mut arena = RekeyArena::new();
    let mut modified = ModifiedKeyTree::new(&spec);
    modified.batch_rekey(base, &[], &mut r, &mut arena).unwrap();
    g.throughput(Throughput::Elements(128));
    g.bench_function("modified", |b| {
        b.iter_batched(
            || (modified.clone(), rng(), RekeyArena::new()),
            |(mut t, mut r2, mut a)| {
                t.batch_rekey(fresh, leaves, &mut r2, &mut a).unwrap();
                a
            },
            BatchSize::SmallInput,
        )
    });

    let original = OriginalKeyTree::balanced(4, base);
    g.bench_function("original", |b| {
        b.iter_batched(
            || original.clone(),
            |mut t| t.batch_rekey(fresh, leaves),
            BatchSize::SmallInput,
        )
    });

    let mut clustered = ClusteredKeyTree::new(&spec);
    clustered
        .batch_rekey(base, &[], &mut r, &mut arena)
        .unwrap();
    g.bench_function("cluster", |b| {
        b.iter_batched(
            || (clustered.clone(), rng(), RekeyArena::new()),
            |(mut t, mut r2, mut a)| {
                t.batch_rekey(fresh, leaves, &mut r2, &mut a).unwrap();
                a
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn build_mesh(users: usize, r: &mut impl Rng) -> (MatrixNetwork, TmeshGroup, Vec<UserId>) {
    let spec = IdSpec::PAPER;
    let params = PlanetLabParams {
        continent_hosts: vec![users / 2 + 1, users / 4 + 1, users / 8 + 1, users / 8 + 1],
        ..PlanetLabParams::default()
    };
    let net = MatrixNetwork::synthetic_planetlab(&params, r);
    let ids = unique_ids(&spec, users, r);
    let members: Vec<Member> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| Member {
            id: id.clone(),
            host: HostId(i % (users / 2)),
            joined_at: i as u64,
        })
        .collect();
    let server = HostId(users / 2 + 1);
    let mesh = TmeshGroup::build(&spec, members, server, &net, 4, PrimaryPolicy::SmallestRtt);
    (net, mesh, ids)
}

fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("tmesh_session");
    g.sample_size(20);
    for users in [128usize, 512] {
        let mut r = rng();
        let (net, mesh, _) = build_mesh(users, &mut r);
        g.throughput(Throughput::Elements(users as u64));
        g.bench_with_input(
            BenchmarkId::new("server_multicast", users),
            &users,
            |b, _| b.iter(|| mesh.multicast(&net, Source::Server)),
        );
    }
    g.finish();
}

fn bench_split_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("rekey_transport_512_users");
    g.sample_size(15);
    let mut r = rng();
    let (net, mesh, ids) = build_mesh(512, &mut r);
    let mut tree = ModifiedKeyTree::new(&IdSpec::PAPER);
    let mut arena = RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut r, &mut arena).unwrap();
    // NOTE: the transported message rekeys 32 members who stay in the mesh
    // snapshot — fine for throughput measurement purposes.
    let out = tree
        .batch_rekey(&[], &ids[..32], &mut r, &mut arena)
        .unwrap();
    g.throughput(Throughput::Elements(out.cost() as u64));
    g.bench_function("with_split", |b| {
        b.iter(|| tmesh_rekey_transport(&mesh, &net, out.encryptions(), TransportOptions::split()))
    });
    g.bench_function("without_split", |b| {
        b.iter(|| tmesh_rekey_transport(&mesh, &net, out.encryptions(), TransportOptions::flood()))
    });
    g.finish();
}

fn bench_keyring_absorb(c: &mut Criterion) {
    let mut g = c.benchmark_group("keyring");
    let mut r = rng();
    let spec = IdSpec::PAPER;
    let ids = unique_ids(&spec, 512, &mut r);
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut r, &mut arena).unwrap();
    let ring = KeyRing::new(ids[0].clone(), tree.user_path_keys(&ids[0]));
    let out = tree
        .batch_rekey(&[], &ids[256..], &mut r, &mut arena)
        .unwrap();
    g.throughput(Throughput::Elements(out.cost() as u64));
    g.bench_function("absorb_full_message", |b| {
        b.iter_batched(
            || ring.clone(),
            |mut ring| ring.absorb(out.encryptions()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_distributed_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed_join");
    g.sample_size(10);
    let mut r = rng();
    let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut r);
    let spec = IdSpec::new(4, 16).unwrap();
    let params = rekey_proto::AssignParams::for_depth(4);
    let times: Vec<u64> = (0..64).map(|i| i * 2_000_000).collect();
    g.throughput(Throughput::Elements(64));
    g.bench_function("64_sequential_joins", |b| {
        b.iter(|| {
            rekey_proto::distributed::run_distributed_joins(&spec, &params, 2, &net, 64, &times)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);
    targets = bench_batch_rekey, bench_sessions, bench_split_transport, bench_keyring_absorb, bench_distributed_join
}
criterion_main!(benches);
