//! Criterion comparison of the indexed transport core (member index +
//! prefix-range split index) against the reference per-hop-scan
//! implementation, at N ∈ {512, 2048, 8192} members.
//!
//! The committed `BENCH_transport.json` is produced by the
//! `bench_transport` binary, which runs the same fixture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rekey_bench::transport_fixture;
use rekey_proto::split::reference;
use rekey_proto::{tmesh_rekey_transport, TransportOptions};

fn bench_transport_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport_scale");
    g.sample_size(10);
    for (users, leaves) in [(512usize, 32usize), (2048, 128), (8192, 512)] {
        let (net, mesh, encryptions) = transport_fixture(users, leaves, 0xBE7C);
        g.throughput(Throughput::Elements(users as u64));
        g.bench_with_input(BenchmarkId::new("indexed_split", users), &users, |b, _| {
            b.iter(|| tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::split()))
        });
        g.bench_with_input(
            BenchmarkId::new("reference_split", users),
            &users,
            |b, _| {
                b.iter(|| {
                    reference::tmesh_rekey_transport(
                        &mesh,
                        &net,
                        &encryptions,
                        TransportOptions::split(),
                    )
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("indexed_flood", users), &users, |b, _| {
            b.iter(|| tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::flood()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_transport_scale);
criterion_main!(benches);
