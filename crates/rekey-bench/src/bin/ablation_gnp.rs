//! Ablation: distributed probing vs GNP-style centralized ID assignment
//! (the §5 extension).
//!
//! Compares, on the PlanetLab-style substrate:
//!
//! * per-join probing cost (messages sent by the joiner), and
//! * resulting multicast quality (median/95th-pct RDP of a server rekey
//!   multicast over the assembled group),
//!
//! for the paper's distributed protocol against centralized assignment
//! where joiners probe only `L` landmarks.

use rekey_bench::harness::build_net;
use rekey_bench::{arg_usize, Topology};
use rekey_id::IdSpec;
use rekey_net::{CoordinateSystem, HostId};
use rekey_proto::{AssignParams, Group};
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;
use rekey_tmesh::{metrics::PathMetrics, Source};

fn main() {
    let users = arg_usize("--users", 226);
    let landmarks = arg_usize("--landmarks", 16);
    let spec = IdSpec::PAPER;
    eprintln!("ablation_gnp: {users} joins, {landmarks} landmarks…");

    let mut rng = seeded_rng(0x6a9);
    let net = build_net(Topology::PlanetLab, users + 1, &mut rng);
    let server = HostId(users);
    let coords = CoordinateSystem::spread(users, landmarks);

    println!("# ablation_gnp: distributed §3.1 probing vs centralized GNP assignment");
    println!("scheme\tmean_messages_per_join\tmedian_rdp\tp95_rdp\trdp_below_2_pct");

    for centralized in [false, true] {
        let mut group = Group::new(
            &spec,
            server,
            4,
            PrimaryPolicy::SmallestRtt,
            AssignParams::paper(),
        );
        let mut messages = 0u64;
        for h in 0..users {
            let out = if centralized {
                group
                    .join_centralized(HostId(h), &net, &coords, h as u64)
                    .unwrap()
            } else {
                group.join(HostId(h), &net, h as u64).unwrap()
            };
            messages += out.stats.queries + out.stats.probes;
        }
        let mesh = group.tmesh();
        let outcome = mesh.multicast(&net, Source::Server);
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &net, &outcome);
        let mut rdps: Vec<f64> = metrics.rdp.iter().flatten().copied().collect();
        rdps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{}\t{:.1}\t{:.2}\t{:.2}\t{:.0}",
            if centralized {
                "centralized_gnp"
            } else {
                "distributed"
            },
            messages as f64 / users as f64,
            rdps[rdps.len() / 2],
            rdps[rdps.len() * 95 / 100],
            100.0 * metrics.fraction_rdp_below(2.0),
        );
    }
}
