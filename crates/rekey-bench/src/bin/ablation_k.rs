//! Ablation: the neighbor-table entry capacity `K`.
//!
//! The paper sets `K = 4` "for resilience" (§2.2) — multicast correctness
//! only needs `K = 1`. This ablation sweeps `K ∈ {1, 2, 4, 8}` and reports
//! what `K` buys: surviving primaries after random member failures (the
//! fail-over capacity of Theorem 1's recovery path) against the per-user
//! memory cost (stored neighbor records).

use rand::seq::SliceRandom;
use rekey_bench::{arg_usize, grow_group, Topology};
use rekey_id::IdSpec;
use rekey_proto::AssignParams;
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;

fn main() {
    let users = arg_usize("--users", 226);
    let fail_fraction_pct = arg_usize("--fail-pct", 20);
    println!("# ablation_k: resilience vs memory as K grows (N = {users}, {fail_fraction_pct}% failures)");
    println!("K\tavg_records_per_user\tentries_with_backup_pct\tentries_lost_pct");

    for k in [1usize, 2, 4, 8] {
        let build = grow_group(
            Topology::PlanetLab,
            users,
            0,
            &IdSpec::PAPER,
            k,
            PrimaryPolicy::SmallestRtt,
            AssignParams::paper(),
            452_000_000,
            0xAB1 + k as u64,
        );
        let mut rng = seeded_rng(0xFA11 + k as u64);
        let mut failed: Vec<usize> = (0..users).collect();
        failed.shuffle(&mut rng);
        let failed: std::collections::HashSet<usize> = failed
            .into_iter()
            .take(users * fail_fraction_pct / 100)
            .collect();
        let failed_ids: std::collections::HashSet<_> = failed
            .iter()
            .map(|&i| build.group.members()[i].id.clone())
            .collect();

        let mut records = 0usize;
        let mut entries = 0usize;
        let mut with_backup = 0usize;
        let mut lost = 0usize;
        for (i, _) in build.group.members().iter().enumerate() {
            if failed.contains(&i) {
                continue;
            }
            let table = build.group.table(i);
            records += table.neighbor_count();
            for row in 0..IdSpec::PAPER.depth() {
                for j in 0..IdSpec::PAPER.base() {
                    let entry = table.entry(row, j);
                    if entry.is_empty() {
                        continue;
                    }
                    entries += 1;
                    let alive = entry
                        .iter()
                        .filter(|r| !failed_ids.contains(&r.member.id))
                        .count();
                    if alive == 0 {
                        lost += 1;
                    } else if alive > 1 || !failed_ids.contains(&entry.primary().unwrap().member.id)
                    {
                        with_backup += 1;
                    }
                }
            }
        }
        let survivors = users - failed.len();
        println!(
            "{k}\t{:.1}\t{:.1}\t{:.2}",
            records as f64 / survivors as f64,
            100.0 * with_backup as f64 / entries as f64,
            100.0 * lost as f64 / entries as f64,
        );
    }
}
