//! Ablation: rekey delivery under message loss, with limited unicast
//! recovery (the \[31\] companion mechanism).
//!
//! Sweeps the per-copy loss probability and reports how many members fall
//! back to unicast recovery and how much server bandwidth the recovery
//! pass costs, relative to the multicast message itself.

use rekey_bench::{arg_usize, grow_group, rekey_message_for_churn, ChurnPlan, Topology};
use rekey_id::IdSpec;
use rekey_keytree::{ModifiedKeyTree, RekeyArena};
use rekey_proto::{lossy_rekey_transport, AssignParams};
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;

fn main() {
    let users = arg_usize("--users", 512);
    let churn = arg_usize("--churn", 128);
    let spec = IdSpec::PAPER;
    eprintln!("ablation_loss: {users} users, {churn}+{churn} churn…");

    let mut build = grow_group(
        Topology::GtItm,
        users,
        churn,
        &spec,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
        2_048_000_000,
        0x1055,
    );
    let mut rng = seeded_rng(0x1056);
    let ids: Vec<_> = build.group.members().iter().map(|m| m.id.clone()).collect();
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
    let plan = ChurnPlan {
        initial: users,
        joins: churn,
        leaves: churn,
    };
    let mut next_host = users + 1;
    let (joins, leaves) = rekey_message_for_churn(
        &mut build.group,
        &build.net,
        &plan,
        &mut next_host,
        &mut rng,
    );
    let out = tree
        .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
        .unwrap();
    let mesh = build.group.tmesh();

    println!("# ablation_loss: split rekey transport under per-copy loss + unicast recovery");
    println!(
        "# message: {} encryptions, {} members",
        out.cost(),
        mesh.members().len()
    );
    println!("loss_pct\tcopies_lost\trecovering_members\trecovery_encs\trecovery_msgs");
    for loss_pct in [0u32, 1, 2, 5, 10, 20, 40] {
        let report = lossy_rekey_transport(
            &mesh,
            &build.net,
            out.encryptions(),
            f64::from(loss_pct) / 100.0,
            &mut seeded_rng(0xAB + u64::from(loss_pct)),
        );
        println!(
            "{loss_pct}\t{}\t{}\t{}\t{}",
            report.copies_lost,
            report.recovering_members.len(),
            report.recovery_encryptions,
            report.recovery_messages(),
        );
    }
}
