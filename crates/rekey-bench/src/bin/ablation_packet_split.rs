//! Ablation: splitting granularity (§2.5, last paragraph).
//!
//! "An alternative way is to split and re-compose the rekey message at
//! packet level, instead of encryption level. In this case, the rekey
//! bandwidth overhead would be larger." We quantify this by re-running the
//! Fig. 13 T-mesh transport with the message grouped into fixed-size
//! packets: a packet is forwarded to a next hop iff *any* contained
//! encryption is needed in that hop's subtree, and the receiver is charged
//! for the whole packet.

use rekey_bench::{arg_usize, grow_group, rekey_message_for_churn, ChurnPlan, Topology};
use rekey_id::IdSpec;
use rekey_keytree::{ModifiedKeyTree, RekeyArena};
use rekey_net::Network;
use rekey_proto::{split_for_neighbor, AssignParams};
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;
use rekey_tmesh::forward::{server_next_hops, user_next_hops};

fn main() {
    let users = arg_usize("--users", 512);
    let churn = arg_usize("--churn", 128);
    let spec = IdSpec::PAPER;
    eprintln!("ablation_packet_split: {users} users, {churn}+{churn} churn…");

    let mut build = grow_group(
        Topology::GtItm,
        users,
        churn,
        &spec,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
        2_048_000_000,
        0x9acc,
    );
    let mut rng = seeded_rng(0x9acd);
    let ids: Vec<_> = build.group.members().iter().map(|m| m.id.clone()).collect();
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
    let plan = ChurnPlan {
        initial: users,
        joins: churn,
        leaves: churn,
    };
    let mut next_host = users + 1;
    let (joins, leaves) = rekey_message_for_churn(
        &mut build.group,
        &build.net,
        &plan,
        &mut next_host,
        &mut rng,
    );
    let out = tree
        .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
        .unwrap();
    let mesh = build.group.tmesh();
    let n = mesh.members().len();
    let index = |id: &rekey_id::UserId| {
        mesh.members()
            .iter()
            .position(|m| &m.id == id)
            .expect("member")
    };

    println!("# ablation_packet_split: total encryptions received, by splitting granularity");
    println!(
        "# message: {} encryptions; packet sizes in encryptions per packet",
        out.cost()
    );
    println!("granularity\ttotal_received\tmax_received_per_user\tavg_received_per_user");

    // Packet size sweep: 1 (pure encryption-level) to 64.
    for packet_size in [1usize, 4, 8, 18, 32, 64] {
        // Pre-assign encryptions to packets in message order.
        let packet_of: Vec<usize> = (0..out.cost()).map(|e| e / packet_size).collect();
        let packet_count = out.cost().div_ceil(packet_size);
        let packet_sizes: Vec<u64> = (0..packet_count)
            .map(|p| packet_of.iter().filter(|&&q| q == p).count() as u64)
            .collect();

        let mut received = vec![0u64; n];
        let full: Vec<usize> = (0..out.cost()).collect();
        let mut queue = std::collections::VecDeque::new();
        for hop in server_next_hops(mesh.server_table()) {
            let to = index(&hop.neighbor.member.id);
            let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
            queue.push_back((
                to,
                hop.forward_level,
                split_for_neighbor(&full, out.encryptions(), &prefix),
            ));
        }
        while let Some((member, level, needed)) = queue.pop_front() {
            // Charge whole packets containing any needed encryption.
            let mut packets: Vec<usize> = needed.iter().map(|&e| packet_of[e]).collect();
            packets.sort_unstable();
            packets.dedup();
            received[member] += packets.iter().map(|&p| packet_sizes[p]).sum::<u64>();
            for hop in user_next_hops(mesh.table(member), level) {
                let to = index(&hop.neighbor.member.id);
                let prefix = hop.neighbor.member.id.prefix(hop.row + 1);
                queue.push_back((
                    to,
                    hop.forward_level,
                    split_for_neighbor(&needed, out.encryptions(), &prefix),
                ));
            }
        }
        let total: u64 = received.iter().sum();
        let max = received.iter().max().copied().unwrap_or(0);
        println!(
            "packet={packet_size}\t{total}\t{max}\t{:.1}",
            total as f64 / n as f64
        );
    }
    let _ = build
        .net
        .one_way(rekey_net::HostId(0), rekey_net::HostId(1));
}
