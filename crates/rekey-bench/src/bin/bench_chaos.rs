//! Measures self-healing recovery under composable fault plans.
//!
//! Two sweeps over the event-driven group runtime (128 members, steady
//! leave+join churn):
//!
//! 1. **Loss sweep** — the same stationary mean loss rate injected two
//!    ways, i.i.d. per copy vs. Gilbert–Elliott bursts. Bursts take out
//!    consecutive copies of the *same* interval on the *same* sender, so
//!    they should cost more NACK/unicast recovery traffic per lost copy
//!    and a higher apply delay than the same average rate spread
//!    independently.
//! 2. **Partition sweep** — a two-way partition (the server keeps one
//!    cell) of increasing duration. The heartbeat detector evicts a
//!    neighbor after a single unanswered ping, so any cut long enough to
//!    swallow a ping wrongfully departs cross-cell neighbors; duration
//!    then scales the damage (lost copies, control retransmissions) while
//!    the rejoin/resync machinery caps the recovery latency.
//!
//! Recovery latency is the mean interval apply delay — the time from a
//! rekey interval's multicast to a member actually applying it, averaged
//! over every (member, interval) pair — so loss-free delivery sets the
//! baseline and every recovery path (NACK unicast, resync, rejoin) adds
//! its round trips on top. Recovery bytes converts NACK-answered
//! encryptions to wire bytes. Prints the committed `BENCH_chaos.json` to
//! stdout; progress goes to stderr. Run with `--release`.

use rekey_bench::churn_runtime_fixture;
use rekey_proto::{chaos, GroupRuntime, RuntimeConfig, RuntimeReport};
use rekey_sim::{FaultPlan, GilbertElliott};

/// Serialized size of one `Encryption` on the wire (same accounting as
/// `bench_runtime`).
const ENCRYPTION_WIRE_BYTES: u64 = 2 * (6 + 8) + 12 + 32 + 8;

const SEC: u64 = 1_000_000;
const MEMBERS: usize = 128;
const CHURN_INTERVALS: u64 = 6;
const SEED: u64 = 0xC4A0;

/// A Gilbert–Elliott profile with `moderate()`'s burst shape (bad bursts
/// of mean length 4 copies at 60% loss) re-balanced to a target
/// stationary mean loss rate.
fn burst_profile(mean: f64) -> GilbertElliott {
    let base = GilbertElliott::moderate();
    // mean = (1 − πb)·loss_good + πb·loss_bad  ⇒  solve for πb, then for
    // p_enter_bad holding the mean burst length (1 / p_exit_bad) fixed.
    let pi_bad = (mean - base.loss_good) / (base.loss_bad - base.loss_good);
    assert!((0.0..1.0).contains(&pi_bad), "mean out of profile range");
    let p_enter_bad = pi_bad * base.p_exit_bad / (1.0 - pi_bad);
    let profile = GilbertElliott {
        p_enter_bad,
        ..base
    };
    assert!((profile.mean_loss() - mean).abs() < 1e-9);
    profile
}

struct Outcome {
    report: RuntimeReport,
    /// Mean µs from interval multicast to member apply, over all
    /// (member, interval) applications.
    apply_delay_us: f64,
}

fn run_plan(plan: FaultPlan, finish: u64) -> Outcome {
    let (net, config, trace, fixture_finish) =
        churn_runtime_fixture(MEMBERS, CHURN_INTERVALS, SEED);
    let runtime_config = RuntimeConfig {
        seed: SEED,
        ..RuntimeConfig::default()
    };
    let mut rt = GroupRuntime::new(config, runtime_config, net).with_faults(plan);
    rt.run_trace(&trace);
    rt.finish(fixture_finish.max(finish));
    let (mut delay_total, mut applied) = (0u64, 0u64);
    for m in 0..rt.member_count() {
        let stats = rt.member_stats(m);
        delay_total += stats.apply_delay_total;
        applied += stats.intervals_applied;
    }
    Outcome {
        report: rt.report(),
        apply_delay_us: delay_total as f64 / applied.max(1) as f64,
    }
}

fn print_common(label: &str, out: &Outcome, trailing_comma: bool) {
    let rep = &out.report;
    println!("      \"{label}\": {{");
    println!("        \"copies_lost\": {},", rep.copies_lost);
    println!("        \"nacks\": {},", rep.nacks);
    println!(
        "        \"recovery_encryptions\": {},",
        rep.recovery_encryptions
    );
    println!(
        "        \"recovery_bytes\": {},",
        rep.recovery_encryptions * ENCRYPTION_WIRE_BYTES
    );
    println!("        \"retransmissions\": {},", rep.retransmissions);
    println!("        \"resyncs\": {},", rep.resyncs);
    println!("        \"rejoins\": {},", rep.rejoins);
    println!("        \"apply_delay_us\": {:.1}", out.apply_delay_us);
    println!("      }}{}", if trailing_comma { "," } else { "" });
}

fn main() {
    let loss_rates = [0.02f64, 0.05, 0.10];
    let partition_secs = [0u64, 6, 12, 24];

    println!("{{");
    println!(
        "  \"bench\": \"GroupRuntime self-healing: {MEMBERS} members, {CHURN_INTERVALS} churn intervals, composable fault plans\","
    );
    println!(
        "  \"unit\": \"recovery traffic (bytes) and mean interval apply delay (us, multicast to member apply)\","
    );

    println!("  \"loss_sweep\": [");
    for (i, &rate) in loss_rates.iter().enumerate() {
        eprintln!("bench_chaos: loss sweep {rate:.2} (iid vs burst)…");
        let iid = run_plan(FaultPlan::new().iid_loss(rate), 0);
        let burst = run_plan(FaultPlan::new().burst_loss(burst_profile(rate)), 0);
        println!("    {{");
        println!("      \"mean_loss\": {rate:.2},");
        print_common("iid", &iid, true);
        print_common("burst", &burst, false);
        println!("    }}{}", if i + 1 < loss_rates.len() { "," } else { "" });
    }
    println!("  ],");

    println!("  \"partition_sweep\": [");
    for (i, &secs) in partition_secs.iter().enumerate() {
        eprintln!("bench_chaos: two-way partition for {secs} s…");
        // Cover every join handle the fixture can produce so late churn
        // joiners land in a real cell instead of the implicit extra one.
        let cells = chaos::modulo_cells(MEMBERS + CHURN_INTERVALS as usize, 2);
        let plan = if secs == 0 {
            FaultPlan::new()
        } else {
            FaultPlan::new().partition(cells, 30 * SEC, (30 + secs) * SEC)
        };
        // A tail after the heal so wrongful departs finish rejoining.
        let out = run_plan(plan, (30 + secs + 60) * SEC);
        println!("    {{");
        println!("      \"partition_secs\": {secs},");
        print_common("result", &out, false);
        println!(
            "    }}{}",
            if i + 1 < partition_secs.len() {
                ","
            } else {
                ""
            }
        );
    }
    println!("  ]");
    println!("}}");
}
