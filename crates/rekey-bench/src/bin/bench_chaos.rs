//! Measures self-healing recovery under composable fault plans.
//!
//! Two sweeps over the event-driven group runtime (128 members, steady
//! leave+join churn):
//!
//! 1. **Loss sweep** — the same stationary mean loss rate injected two
//!    ways, i.i.d. per copy vs. Gilbert–Elliott bursts. Bursts take out
//!    consecutive copies of the *same* interval on the *same* sender, so
//!    they should cost more NACK/unicast recovery traffic per lost copy
//!    and a higher apply delay than the same average rate spread
//!    independently.
//! 2. **Partition sweep** — a two-way partition (the server keeps one
//!    cell) of increasing duration. The heartbeat detector evicts a
//!    neighbor after a single unanswered ping, so any cut long enough to
//!    swallow a ping wrongfully departs cross-cell neighbors; duration
//!    then scales the damage (lost copies, control retransmissions) while
//!    the rejoin/resync machinery caps the recovery latency.
//! 3. **Outage sweep** — the key server killed and revived, once with a
//!    single replica (journal restart, epoch bump, group-wide resync)
//!    and once with three replicas (follower election and promotion).
//!    Every entry reports `restarts`, `elections`, `promotions`, and
//!    `epoch_bumps` side by side, so the artifact shows which recovery
//!    machinery paid for the outage.
//!
//! Recovery latency comes from the runtime's `apply_delay_us` histogram —
//! the time from a rekey interval's multicast to a member actually
//! applying it, one sample per (member, interval) pair — so loss-free
//! delivery sets the baseline and every recovery path (NACK unicast,
//! resync, rejoin) adds its round trips on top. Recovery bytes converts
//! NACK-answered encryptions to wire bytes; the fault attribution
//! counters (`partition_cuts`, `fault_loss_drops`) split the drops by
//! cause. Prints the committed `BENCH_chaos.json` to stdout via the
//! shared deterministic writer; every snapshot is validated against the
//! promised schema first. Progress goes to stderr. Run with `--release`.

use rekey_bench::{churn_runtime_fixture, schema};
use rekey_metrics::json::Writer;
use rekey_proto::{chaos, GroupRuntime, MetricsSnapshot, RuntimeConfig};
use rekey_sim::{FaultPlan, GilbertElliott};

/// Serialized size of one `Encryption` on the wire (same accounting as
/// `bench_runtime`).
const ENCRYPTION_WIRE_BYTES: u64 = 2 * (6 + 8) + 12 + 32 + 8;

const SEC: u64 = 1_000_000;
const MEMBERS: usize = 128;
const CHURN_INTERVALS: u64 = 6;
const SEED: u64 = 0xC4A0;

/// A Gilbert–Elliott profile with `moderate()`'s burst shape (bad bursts
/// of mean length 4 copies at 60% loss) re-balanced to a target
/// stationary mean loss rate.
fn burst_profile(mean: f64) -> GilbertElliott {
    let base = GilbertElliott::moderate();
    // mean = (1 − πb)·loss_good + πb·loss_bad  ⇒  solve for πb, then for
    // p_enter_bad holding the mean burst length (1 / p_exit_bad) fixed.
    let pi_bad = (mean - base.loss_good) / (base.loss_bad - base.loss_good);
    assert!((0.0..1.0).contains(&pi_bad), "mean out of profile range");
    let p_enter_bad = pi_bad * base.p_exit_bad / (1.0 - pi_bad);
    let profile = GilbertElliott {
        p_enter_bad,
        ..base
    };
    assert!((profile.mean_loss() - mean).abs() < 1e-9);
    profile
}

fn run_plan_with(plan: FaultPlan, finish: u64, replicas: usize) -> (MetricsSnapshot, u64) {
    let (net, config, trace, fixture_finish) =
        churn_runtime_fixture(MEMBERS, CHURN_INTERVALS, SEED);
    let runtime_config = RuntimeConfig::builder()
        .seed(SEED)
        .replicas(replicas)
        .build();
    let mut rt = GroupRuntime::new(config, runtime_config, net).with_faults(plan);
    rt.run_trace(&trace);
    rt.finish(fixture_finish.max(finish));
    let report = rt.snapshot();
    schema::validate_snapshot(&report.to_json());
    let epoch = rt.server_epoch();
    (report, epoch)
}

fn run_plan(plan: FaultPlan, finish: u64) -> MetricsSnapshot {
    run_plan_with(plan, finish, 1).0
}

/// `epoch_bumps` (the server epoch after the run) is reported only for
/// the outage sweep, where restart/promotion mechanics differ by replica
/// count; the loss/partition sweeps never kill the server.
fn write_common(w: &mut Writer, label: &str, rep: &MetricsSnapshot, epoch_bumps: Option<u64>) {
    w.begin_named_object(label);
    w.field_u64("copies_lost", rep.copies_lost);
    w.field_u64("partition_cuts", rep.partition_cuts);
    w.field_u64("fault_loss_drops", rep.fault_loss_drops);
    w.field_u64("nacks", rep.nacks);
    w.field_u64("recovery_encryptions", rep.recovery_encryptions);
    w.field_u64(
        "recovery_bytes",
        rep.recovery_encryptions * ENCRYPTION_WIRE_BYTES,
    );
    w.field_u64("retransmissions", rep.retransmissions);
    w.field_u64("resyncs", rep.resyncs);
    w.field_u64("rejoins", rep.rejoins);
    w.field_u64("restarts", rep.restarts);
    w.field_u64("elections", rep.elections);
    w.field_u64("promotions", rep.promotions);
    w.field_u64("lost_mutations", rep.lost_mutations);
    if let Some(bumps) = epoch_bumps {
        w.field_u64("epoch_bumps", bumps);
    }
    w.field_f64("apply_delay_us", rep.apply_delay_us.mean(), 1);
    w.field_u64("apply_delay_p95_us", rep.apply_delay_us.p95());
    w.end_object();
}

fn main() {
    let loss_rates = [0.02f64, 0.05, 0.10];
    let partition_secs = [0u64, 6, 12, 24];

    let mut w = Writer::new();
    w.begin_object();
    w.field_str(
        "bench",
        &format!(
            "GroupRuntime self-healing: {MEMBERS} members, \
             {CHURN_INTERVALS} churn intervals, composable fault plans"
        ),
    );
    w.field_str(
        "unit",
        "recovery traffic (bytes) and interval apply delay (us, multicast to member apply)",
    );

    w.begin_named_array("loss_sweep");
    for &rate in &loss_rates {
        eprintln!("bench_chaos: loss sweep {rate:.2} (iid vs burst)…");
        let iid = run_plan(FaultPlan::new().iid_loss(rate), 0);
        let burst = run_plan(FaultPlan::new().burst_loss(burst_profile(rate)), 0);
        w.begin_object();
        w.field_f64("mean_loss", rate, 2);
        write_common(&mut w, "iid", &iid, None);
        write_common(&mut w, "burst", &burst, None);
        w.end_object();
    }
    w.end_array();

    w.begin_named_array("partition_sweep");
    for &secs in &partition_secs {
        eprintln!("bench_chaos: two-way partition for {secs} s…");
        // Cover every join handle the fixture can produce so late churn
        // joiners land in a real cell instead of the implicit extra one.
        let cells = chaos::modulo_cells(MEMBERS + CHURN_INTERVALS as usize, 2);
        let plan = if secs == 0 {
            FaultPlan::new()
        } else {
            FaultPlan::new().partition(cells, 30 * SEC, (30 + secs) * SEC)
        };
        // A tail after the heal so wrongful departs finish rejoining.
        let out = run_plan(plan, (30 + secs + 60) * SEC);
        w.begin_object();
        w.field_u64("partition_secs", secs);
        write_common(&mut w, "result", &out, None);
        w.end_object();
    }
    w.end_array();

    // Outage sweep: the same kill/revive window recovered two ways. With
    // one replica the revived server restores its checkpoint journal and
    // epoch-bumps (restart path); with three the followers elect and
    // promote the most-caught-up one while the old primary is down, and
    // the revived process rejoins as a follower.
    w.begin_named_array("outage_sweep");
    for &secs in &[8u64, 30] {
        eprintln!("bench_chaos: server outage for {secs} s (1 vs 3 replicas)…");
        let plan = || FaultPlan::new().outage(chaos::SERVER_NODE, 30 * SEC, (30 + secs) * SEC);
        let tail = (30 + secs + 90) * SEC;
        let (single, single_epoch) = run_plan_with(plan(), tail, 1);
        let (repl, repl_epoch) = run_plan_with(plan(), tail, 3);
        w.begin_object();
        w.field_u64("outage_secs", secs);
        write_common(&mut w, "single_replica", &single, Some(single_epoch));
        write_common(&mut w, "three_replicas", &repl, Some(repl_epoch));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    print!("{}", w.finish());
}
