//! Measures the seal phase of [`ModifiedKeyTree::batch_rekey`] — key
//! wrapping only, after key derivation — serial vs parallel.
//!
//! Each cell bootstraps a fresh tree with one batch big enough to hit the
//! target seal-job count (~4k and ~64k encryptions), at 1/2/4/8 seal
//! worker threads, and reads [`RekeyBatch::seal_nanos`], the wall-clock
//! cost of exactly the phase the scoped-thread pipeline parallelises.
//! Because per-slot nonces are derived from one per-batch seed, every
//! thread count produces byte-identical output — the sweep re-checks that
//! here by fingerprinting each cell's first and last encryption.
//!
//! Reported per cell: the actual batch cost, min/mean seal nanoseconds
//! over the repeats, throughput in seals per microsecond, and the speedup
//! over the single-thread cell of the same batch size. On a host with at
//! least 4 cores the 64k sweep must show at least a 2x speedup at some
//! thread count — the bin asserts it, so a pipeline regression fails CI
//! loudly. Prints the committed `BENCH_crypto.json` to stdout via the
//! shared deterministic writer; progress goes to stderr. Run with
//! `--release`.
//!
//! [`ModifiedKeyTree::batch_rekey`]: rekey_keytree::ModifiedKeyTree::batch_rekey
//! [`RekeyBatch::seal_nanos`]: rekey_keytree::RekeyBatch::seal_nanos

use rand::SeedableRng;
use rekey_bench::schema;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ModifiedKeyTree, RekeyArena};
use rekey_metrics::json::Writer;

const SEED: u64 = 0xC0DE;
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Cell {
    threads: usize,
    cost: usize,
    min_ns: u64,
    mean_ns: u64,
}

/// One sweep cell: `repeats` fresh bootstraps of `users` members, same
/// seed every time, returning the batch cost and min/mean seal time plus
/// a content fingerprint that must not vary with the thread count.
fn measure(spec: &IdSpec, users: u64, threads: usize, repeats: u32) -> (Cell, Vec<u8>) {
    let ids: Vec<UserId> = (0..users).map(|i| UserId::from_index(spec, i)).collect();
    let mut arena = RekeyArena::new();
    let (mut min_ns, mut sum_ns, mut cost) = (u64::MAX, 0u64, 0usize);
    let mut fingerprint = Vec::new();
    for _ in 0..repeats {
        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED);
        let mut tree = ModifiedKeyTree::new(spec);
        tree.set_seal_threads(threads);
        let out = tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
        cost = out.cost();
        min_ns = min_ns.min(out.seal_nanos());
        sum_ns += out.seal_nanos();
        let (first, last) = (&out.encryptions()[0], &out.encryptions()[cost - 1]);
        fingerprint = [*first.wire_parts().2, *last.wire_parts().2].concat();
    }
    (
        Cell {
            threads,
            cost,
            min_ns,
            mean_ns: sum_ns / u64::from(repeats),
        },
        fingerprint,
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // (spec, bootstrap size, repeats): batches of ~4k and ~64k seal jobs.
    let sizes = [
        (IdSpec::new(3, 16).unwrap(), 3_900u64, 7u32),
        (IdSpec::new(4, 16).unwrap(), 61_000, 3),
    ];

    let mut w = Writer::new();
    w.begin_object();
    w.field_str(
        "bench",
        "batch-rekey seal phase, serial vs parallel: ~4k and ~64k \
         encryptions x 1/2/4/8 seal threads, identical bytes asserted",
    );
    w.field_str("unit", "seal-phase nanoseconds (min/mean over repeats)");
    w.field_usize("cores", cores);

    let mut speedup_64k = 0.0f64;
    w.begin_named_array("crypto_sweep");
    for (spec, users, repeats) in sizes {
        let mut serial_min = 0u64;
        let mut baseline_print = Vec::new();
        for threads in THREADS {
            eprintln!("bench_crypto: {users} users, {threads} seal threads…");
            let (cell, print) = measure(&spec, users, threads, repeats);
            if cell.threads == 1 {
                serial_min = cell.min_ns;
                baseline_print = print;
            } else {
                assert_eq!(
                    print, baseline_print,
                    "threads={threads} changed the sealed bytes"
                );
            }
            let speedup = serial_min as f64 / cell.min_ns as f64;
            if cell.cost > 32_000 {
                speedup_64k = speedup_64k.max(speedup);
            }
            w.begin_object();
            w.field_usize("batch_cost", cell.cost);
            w.field_usize("threads", cell.threads);
            w.field_u64("seal_ns_min", cell.min_ns);
            w.field_u64("seal_ns_mean", cell.mean_ns);
            w.field_f64(
                "seals_per_us",
                cell.cost as f64 * 1_000.0 / cell.min_ns as f64,
                2,
            );
            w.field_f64("speedup_vs_serial", speedup, 2);
            w.end_object();
        }
    }
    w.end_array();
    w.field_f64("speedup_64k_best", speedup_64k, 2);
    w.end_object();

    let json = w.finish();
    schema::validate_crypto_bench(&json);
    if cores >= 4 {
        assert!(
            speedup_64k >= 2.0,
            "parallel seal must be at least 2x serial at 64k on {cores} cores, got {speedup_64k:.2}x"
        );
    }
    print!("{json}");
}
