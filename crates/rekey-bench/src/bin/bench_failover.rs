//! Measures replicated-key-server failover: replica count × kill timing.
//!
//! Each cell of the sweep runs the standard 64-member churn fixture with
//! `replicas` key-server replicas and kills the primary (node 0) at a
//! configurable offset into a churned rekey interval, reviving it 45 s
//! later — long after a follower should have been elected and promoted.
//! The sweep varies:
//!
//! * **replica count** (2 vs 3) — with two replicas the sole follower
//!   promotes itself unopposed; with three the election has to pick the
//!   most-caught-up candidate and suppress the loser;
//! * **kill offset** (35 % vs 75 % into the interval) — an early kill
//!   dies with the previous interval's entries fully streamed, a late
//!   one dies closer to the boundary it will never multicast, shifting
//!   how much of the interval the promoted follower replays vs re-runs.
//!
//! Reported per cell: the election/promotion/restart counters, mutations
//! lost at the promotion watermark, the peak replication lag the primary
//! observed, the epoch after the run (each promotion and single-replica
//! restart bumps it), resync volume (the client-visible recovery), and
//! the interval apply-delay histogram (mean/p95), whose tail absorbs the
//! outage stall. Every snapshot is validated against the promised schema
//! first. Prints the committed `BENCH_failover.json` to stdout via the
//! shared deterministic writer; progress goes to stderr. Run with
//! `--release`.

use rekey_bench::{churn_runtime_fixture, schema};
use rekey_metrics::json::Writer;
use rekey_proto::{chaos, GroupRuntime, RuntimeConfig};
use rekey_sim::FaultPlan;

const SEC: u64 = 1_000_000;
const MEMBERS: usize = 64;
const CHURN_INTERVALS: u64 = 6;
const SEED: u64 = 0xFA11;
/// Rekey interval length of the default runtime config the fixture runs
/// under.
const PERIOD: u64 = 10 * SEC;
/// The killed primary stays dark this long before reviving.
const OUTAGE: u64 = 45 * SEC;

fn main() {
    let replica_counts = [2usize, 3];
    let kill_offsets_pct = [35u64, 75];

    let mut w = Writer::new();
    w.begin_object();
    w.field_str(
        "bench",
        &format!(
            "replicated key-server failover: {MEMBERS} members, \
             {CHURN_INTERVALS} churn intervals, replica count x kill timing"
        ),
    );
    w.field_str(
        "unit",
        "election/promotion counters, lost mutations, replication lag, apply delay (us)",
    );

    w.begin_named_array("failover_sweep");
    for &replicas in &replica_counts {
        for &pct in &kill_offsets_pct {
            eprintln!("bench_failover: {replicas} replicas, kill at {pct}% of the interval…");
            let (net, config, trace, fixture_finish) =
                churn_runtime_fixture(MEMBERS, CHURN_INTERVALS, SEED);
            let runtime_config = RuntimeConfig::builder()
                .seed(SEED)
                .replicas(replicas)
                .build();
            // The churn fixture's opening joins settle by 20 s; kill the
            // primary `pct` percent into the second churned interval
            // (which spans [30 s, 40 s)) so the outage lands mid-churn.
            let kill_at = 3 * PERIOD + pct * PERIOD / 100;
            let plan = FaultPlan::new().outage(chaos::SERVER_NODE, kill_at, kill_at + OUTAGE);
            let mut rt = GroupRuntime::new(config, runtime_config, net).with_faults(plan);
            rt.run_trace(&trace);
            rt.finish(fixture_finish.max(kill_at + OUTAGE + 60 * SEC));
            let report = rt.snapshot();
            schema::validate_snapshot(&report.to_json());

            w.begin_object();
            w.field_u64("replicas", replicas as u64);
            w.field_u64("kill_offset_pct", pct);
            w.field_u64("kill_at_us", kill_at);
            w.field_u64("elections", report.elections);
            w.field_u64("promotions", report.promotions);
            w.field_u64("restarts", report.restarts);
            w.field_u64("lost_mutations", report.lost_mutations);
            w.field_u64("repl_lag_peak", report.repl_lag_peak);
            w.field_u64("epoch_bumps", rt.server_epoch());
            w.field_u64("resyncs", report.resyncs);
            w.field_u64("nacks", report.nacks);
            w.field_u64("intervals", report.intervals);
            w.field_u64("final_members", rt.group().len() as u64);
            w.field_f64("apply_delay_us", report.apply_delay_us.mean(), 1);
            w.field_u64("apply_delay_p95_us", report.apply_delay_us.p95());
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    print!("{}", w.finish());
}
