//! Measures the event-driven group runtime end to end, twice over:
//!
//! 1. **Classic sweep** — N members on one simulated clock sustain a
//!    leave+join churn trace with 2% per-copy loss, at
//!    N ∈ {64, 256, 1024} (the `GroupRuntime` single-queue executor).
//! 2. **Mega sweep** — the sharded windowed executor
//!    (`ShardedGroupRuntime`) bootstraps N ∈ {65 536, 262 144, 1 048 576}
//!    members in one dealing pass and drives two churned rekey intervals
//!    with 1% copy loss. Reports build time separately from the drive
//!    rate, plus `member_intervals_per_sec` (intervals/s × members) — the
//!    per-member cost figure that should stay roughly flat as N grows.
//!    `--mega-cap N` skips mega sizes above N (CI smoke uses 65536).
//!
//! Reports completed rekey intervals per wall-clock second, the unicast
//! recovery traffic (NACK-triggered encryptions, converted to wire bytes)
//! the loss model induced, and apply-delay percentiles from the runtime's
//! metrics snapshot. Prints a JSON document (the committed
//! `BENCH_runtime.json`) to stdout via the shared deterministic writer;
//! every snapshot is validated against the promised schema first.
//! Progress goes to stderr. Run with `--release`.

use std::hint::black_box;
use std::time::Instant;

use rekey_bench::{arg_usize, churn_runtime_fixture, mega_runtime_fixture, schema};
use rekey_metrics::json::Writer;
use rekey_proto::{GroupRuntime, MetricsSnapshot, RuntimeConfig, ShardedGroupRuntime};

/// Serialized size of one `Encryption` on the wire: two key identifiers
/// (≤ 5-digit prefix + length byte + u64 version, 14 bytes each), a
/// 12-byte nonce, 32 bytes of wrapped key material and an 8-byte MAC tag.
const ENCRYPTION_WIRE_BYTES: u64 = 2 * (6 + 8) + 12 + 32 + 8;

const CHURN_INTERVALS: u64 = 8;
const SEED: u64 = 0xC4C4;

struct Row {
    members: usize,
    report: MetricsSnapshot,
    run_ns: f64,
}

fn run_once(members: usize) -> MetricsSnapshot {
    let (net, config, trace, finish) = churn_runtime_fixture(members, CHURN_INTERVALS, SEED);
    let runtime_config = RuntimeConfig::builder().loss(0.02).seed(SEED).build();
    let mut rt = GroupRuntime::new(config, runtime_config, net);
    rt.run_trace(&trace);
    rt.finish(finish);
    rt.snapshot()
}

/// Times full runs adaptively: after the warm-up, repeat until at least
/// `MIN_TIME` has elapsed, and report mean nanoseconds per run.
fn run_size(members: usize) -> Row {
    const MIN_TIME_NS: u128 = 400_000_000;
    const MIN_ITERS: u32 = 3;
    eprintln!("bench_runtime: {members} members, {CHURN_INTERVALS} churn intervals, 2% loss…");
    let report = run_once(members); // warm-up; runs are deterministic
    schema::validate_snapshot(&report.to_json());
    let mut iters = 0u32;
    let start = Instant::now();
    while iters < MIN_ITERS || start.elapsed().as_nanos() < MIN_TIME_NS {
        black_box(run_once(members));
        iters += 1;
    }
    let run_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    eprintln!(
        "bench_runtime: {members} members: {} intervals in {:.0} ms/run",
        report.intervals,
        run_ns / 1e6
    );
    Row {
        members,
        report,
        run_ns,
    }
}

struct MegaRow {
    members: usize,
    shards: usize,
    report: MetricsSnapshot,
    build_ns: f64,
    run_ns: f64,
}

/// One mega point, run once (bootstraps alone take tens of seconds at
/// 10⁶ members; the run is deterministic, so repetition buys nothing but
/// heat). Build and drive are timed separately: the per-member cost
/// figure is about sustaining churn, not the one-off dealing pass.
fn run_mega_size(members: usize) -> MegaRow {
    const SHARDS: usize = 8;
    const MEGA_LOSS: f64 = 0.01;
    eprintln!("bench_runtime: mega {members} members, 2 churned intervals, 1% loss…");
    let (net, group, leaves, finish, window) = mega_runtime_fixture(members);
    let runtime_config = RuntimeConfig::builder().loss(MEGA_LOSS).seed(SEED).build();
    let build_start = Instant::now();
    let mut rt =
        ShardedGroupRuntime::bootstrapped(group, runtime_config, net, members, SHARDS, window)
            .expect("the fixture's ID space seats every member");
    let build_ns = build_start.elapsed().as_nanos() as f64;
    for &(at, handle) in &leaves {
        rt.leave_at(at, handle);
    }
    let run_start = Instant::now();
    rt.finish(finish);
    let run_ns = run_start.elapsed().as_nanos() as f64;
    let report = rt.snapshot();
    schema::validate_snapshot(&report.to_json());
    eprintln!(
        "bench_runtime: mega {members}: built in {:.0} ms, {} intervals in {:.0} ms",
        build_ns / 1e6,
        report.intervals,
        run_ns / 1e6
    );
    MegaRow {
        members,
        shards: SHARDS,
        report,
        build_ns,
        run_ns,
    }
}

fn main() {
    let rows: Vec<Row> = [64usize, 256, 1024].map(run_size).into();
    let mega_cap = arg_usize("--mega-cap", 1_048_576);
    let mega_rows: Vec<MegaRow> = [65_536usize, 262_144, 1_048_576]
        .into_iter()
        .filter(|&m| m <= mega_cap)
        .map(run_mega_size)
        .collect();
    let mut w = Writer::new();
    w.begin_object();
    w.field_str(
        "bench",
        &format!(
            "GroupRuntime: event-driven churn at scale \
             ({CHURN_INTERVALS} leave+join intervals, 2% copy loss)"
        ),
    );
    w.field_str(
        "unit",
        "completed rekey intervals per wall-clock second (release)",
    );
    w.begin_named_array("results");
    for r in &rows {
        let rep = &r.report;
        w.begin_object();
        w.field_usize("members", r.members);
        w.field_u64("intervals", rep.intervals);
        w.field_f64(
            "intervals_per_sec",
            rep.intervals as f64 / (r.run_ns / 1e9),
            2,
        );
        w.field_u64("forward_copies", rep.forward_copies);
        w.field_u64("copies_lost", rep.copies_lost);
        w.field_u64("nacks", rep.nacks);
        w.field_u64("recovery_encryptions", rep.recovery_encryptions);
        w.field_u64(
            "recovery_bytes",
            rep.recovery_encryptions * ENCRYPTION_WIRE_BYTES,
        );
        w.field_u64("dead_letters", rep.dead_letters);
        w.field_u64("suppressed", rep.suppressed);
        w.field_u64("delivered", rep.delivered);
        w.field_u64("apply_delay_p50_us", rep.apply_delay_us.p50());
        w.field_u64("apply_delay_p95_us", rep.apply_delay_us.p95());
        w.field_usize("peak_queue_depth", rep.peak_queue_depth);
        w.end_object();
    }
    w.end_array();
    w.begin_named_array("mega_results");
    for r in &mega_rows {
        let rep = &r.report;
        let intervals_per_sec = rep.intervals as f64 / (r.run_ns / 1e9);
        w.begin_object();
        w.field_usize("members", r.members);
        w.field_usize("shards", r.shards);
        w.field_u64("intervals", rep.intervals);
        w.field_f64("build_ms", r.build_ns / 1e6, 1);
        w.field_f64("intervals_per_sec", intervals_per_sec, 4);
        w.field_f64(
            "member_intervals_per_sec",
            intervals_per_sec * r.members as f64,
            0,
        );
        w.field_u64("departures", rep.departures);
        w.field_u64("forward_copies", rep.forward_copies);
        w.field_u64("copies_lost", rep.copies_lost);
        w.field_u64("nacks", rep.nacks);
        w.field_u64("recovery_encryptions", rep.recovery_encryptions);
        w.field_u64(
            "recovery_bytes",
            rep.recovery_encryptions * ENCRYPTION_WIRE_BYTES,
        );
        w.field_u64("delivered", rep.delivered);
        w.field_u64("apply_delay_p50_us", rep.apply_delay_us.p50());
        w.field_u64("apply_delay_p95_us", rep.apply_delay_us.p95());
        w.field_usize("peak_queue_depth", rep.peak_queue_depth);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    print!("{}", w.finish());
}
