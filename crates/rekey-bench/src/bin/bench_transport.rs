//! Measures the indexed transport core (member index + prefix-range split
//! index) against the reference per-hop-scan implementation preserved in
//! `rekey_proto::split::reference`, at N ∈ {512, 2048, 8192} members.
//!
//! Prints a JSON document (the committed `BENCH_transport.json`) to
//! stdout. Progress goes to stderr. Run with `--release`.

use std::hint::black_box;
use std::time::Instant;

use rekey_bench::transport_fixture;
use rekey_net::MatrixNetwork;
use rekey_proto::split::reference;
use rekey_proto::{tmesh_rekey_transport, TransportOptions};
use rekey_tmesh::TmeshGroup;

/// Times `f` adaptively: warm up once, then run batches until at least
/// `MIN_TIME` has elapsed, and report mean nanoseconds per iteration.
fn time_ns(mut f: impl FnMut() -> u64) -> f64 {
    const MIN_TIME_NS: u128 = 400_000_000;
    const MIN_ITERS: u32 = 5;
    black_box(f());
    let mut iters = 0u32;
    let start = Instant::now();
    while iters < MIN_ITERS || start.elapsed().as_nanos() < MIN_TIME_NS {
        black_box(f());
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

struct Row {
    users: usize,
    message: usize,
    split_indexed_ns: f64,
    split_reference_ns: f64,
    flood_indexed_ns: f64,
    flood_reference_ns: f64,
}

fn run_size(users: usize, leaves: usize) -> Row {
    eprintln!("bench_transport: building fixture for {users} users ({leaves} leave)…");
    let (net, mesh, encryptions): (MatrixNetwork, TmeshGroup, _) =
        transport_fixture(users, leaves, 0xBE7C);
    eprintln!(
        "bench_transport: {users} users, message = {} encryptions",
        encryptions.len()
    );
    let split_indexed_ns = time_ns(|| {
        tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::split()).received[0]
    });
    let split_reference_ns = time_ns(|| {
        reference::tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::split())
            .received[0]
    });
    let flood_indexed_ns = time_ns(|| {
        tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::flood()).received[0]
    });
    let flood_reference_ns = time_ns(|| {
        reference::tmesh_rekey_transport(&mesh, &net, &encryptions, TransportOptions::flood())
            .received[0]
    });
    Row {
        users,
        message: encryptions.len(),
        split_indexed_ns,
        split_reference_ns,
        flood_indexed_ns,
        flood_reference_ns,
    }
}

fn main() {
    let rows: Vec<Row> = [(512usize, 32usize), (2048, 128), (8192, 512)]
        .map(|(n, l)| run_size(n, l))
        .into();
    println!("{{");
    println!("  \"bench\": \"tmesh_rekey_transport: indexed core vs reference per-hop scan\",");
    println!("  \"unit\": \"mean ns per full transport session\",");
    println!("  \"results\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("    {{");
        println!("      \"users\": {},", r.users);
        println!("      \"message_encryptions\": {},", r.message);
        println!(
            "      \"split\": {{\"indexed_ns\": {:.0}, \"reference_ns\": {:.0}, \"speedup\": {:.2}}},",
            r.split_indexed_ns,
            r.split_reference_ns,
            r.split_reference_ns / r.split_indexed_ns
        );
        println!(
            "      \"flood\": {{\"indexed_ns\": {:.0}, \"reference_ns\": {:.0}, \"speedup\": {:.2}}}",
            r.flood_indexed_ns,
            r.flood_reference_ns,
            r.flood_reference_ns / r.flood_indexed_ns
        );
        println!("    }}{comma}");
    }
    println!("  ]");
    println!("}}");
}
