//! Experiment: concurrent rekey and data transport under bandwidth
//! contention — the paper's §1 motivation, quantified.
//!
//! A data sender streams frames while the key server multicasts a rekey
//! burst over the same overlay; every member's access link serialises its
//! egress. Reports the data frames' latency (mean / p95 / max, ms) with no
//! rekey, with `REKEY-MESSAGE-SPLIT`, and with the unsplit message, across
//! access-link bandwidths.

use rekey_bench::{arg_usize, grow_group, Topology};
use rekey_id::{IdPrefix, IdSpec};
use rekey_keytree::{ModifiedKeyTree, RekeyArena};
use rekey_proto::concurrent::{run_concurrent_session, RekeyLoad, TrafficParams};
use rekey_proto::AssignParams;
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;

fn main() {
    let users = arg_usize("--users", 1024);
    let churn = arg_usize("--churn", 256);
    let spec = IdSpec::PAPER;
    eprintln!(
        "concurrent_transport: {users} users, burst = one {churn}+{churn}-churn rekey message…"
    );

    let mut build = grow_group(
        Topology::PlanetLab,
        users,
        churn,
        &spec,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
        452_000_000,
        0xC0C1,
    );
    let mut rng = seeded_rng(0xC0C2);
    let ids: Vec<_> = build.group.members().iter().map(|m| m.id.clone()).collect();
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
    let plan = rekey_bench::ChurnPlan {
        initial: users,
        joins: churn,
        leaves: churn,
    };
    let mut next_host = users + 1;
    let (joins, leaves) = rekey_bench::rekey_message_for_churn(
        &mut build.group,
        &build.net,
        &plan,
        &mut next_host,
        &mut rng,
    );
    let out = tree
        .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
        .unwrap();
    let enc_ids: Vec<IdPrefix> = out.encryptions().iter().map(|e| e.id().clone()).collect();
    let mesh = build.group.tmesh();
    eprintln!(
        "concurrent_transport: rekey message = {} encryptions",
        enc_ids.len()
    );

    println!("# concurrent_transport: data-frame latency under a concurrent rekey burst");
    println!(
        "# 60 frames at 50 fps; message of {} encryptions injected at t = 0",
        enc_ids.len()
    );
    println!("bandwidth_mbps\tload\tmean_ms\tp50_ms\tp95_ms\tmax_ms");
    for mbps in [2u64, 10, 100] {
        let params = TrafficParams {
            bandwidth_bps: mbps * 1_000_000 / 8,
            frames: 60,
            ..TrafficParams::default()
        };
        for (label, load) in [
            ("none", RekeyLoad::None),
            ("split", RekeyLoad::Split),
            ("unsplit", RekeyLoad::Unsplit),
        ] {
            let outcome = run_concurrent_session(&mesh, &build.net, &enc_ids, load, 7, &params);
            let mean = outcome.frame_latencies.iter().sum::<u64>() as f64
                / outcome.frame_latencies.len() as f64
                / 1000.0;
            println!(
                "{mbps}\t{label}\t{mean:.1}\t{:.1}\t{:.1}\t{:.1}",
                outcome.latency_ms(0.5),
                outcome.latency_ms(0.95),
                outcome.latency_ms(1.0),
            );
        }
    }
}
