//! Regenerates **Figure 6** of the paper: rekey path latency on the PlanetLab topology (226 joins, T-mesh vs NICE).
//!
//! Prints three TSV tables (inverse CDFs of user stress, application-layer
//! delay in ms, and RDP) with one column per scheme. Override the run count
//! with `--runs N` and group size with `--users N`.

use rekey_bench::{arg_usize, latency_figure, print_series_table, LatencyConfig, Topology};

fn main() {
    let mut cfg = LatencyConfig::paper(Topology::PlanetLab, 226, false);
    cfg.runs = arg_usize("--runs", 100);
    cfg.users = arg_usize("--users", cfg.users);
    eprintln!(
        "fig6: {} users, {} runs on {:?} ({} path)…",
        cfg.users,
        cfg.runs,
        cfg.topology,
        if cfg.data_path { "data" } else { "rekey" }
    );
    let fig = latency_figure(&cfg);
    print_series_table(
        "fig6a: inverse CDF of user stress",
        &[
            ("nice", &fig.stress.nice),
            ("nice_p95", &fig.stress.nice_p95),
            ("tmesh", &fig.stress.tmesh),
            ("tmesh_p95", &fig.stress.tmesh_p95),
        ],
    );
    print_series_table(
        "fig6b: inverse CDF of application-layer delay (ms)",
        &[
            ("nice", &fig.delay_ms.nice),
            ("nice_p95", &fig.delay_ms.nice_p95),
            ("tmesh", &fig.delay_ms.tmesh),
            ("tmesh_p95", &fig.delay_ms.tmesh_p95),
        ],
    );
    print_series_table(
        "fig6c: inverse CDF of RDP",
        &[
            ("nice", &fig.rdp.nice),
            ("nice_p95", &fig.rdp.nice_p95),
            ("tmesh", &fig.rdp.tmesh),
            ("tmesh_p95", &fig.rdp.tmesh_p95),
        ],
    );
    eprintln!(
        "fig6: T-mesh RDP<2 for {:.0}% of users, RDP<3 for {:.0}%; NICE RDP<2 for {:.0}%, RDP<3 for {:.0}%",
        frac_below(&fig.rdp.tmesh, 2.0), frac_below(&fig.rdp.tmesh, 3.0),
        frac_below(&fig.rdp.nice, 2.0), frac_below(&fig.rdp.nice, 3.0),
    );
}

fn frac_below(series: &[f64], bound: f64) -> f64 {
    100.0 * series.iter().filter(|&&v| v < bound).count() as f64 / series.len() as f64
}
