//! Regenerates **Figure 8** of the paper: rekey path latency on the GT-ITM topology with 1024 user joins.
//!
//! Prints three TSV tables (inverse CDFs of user stress, application-layer
//! delay in ms, and RDP) with one column per scheme. Override the run count
//! with `--runs N` and group size with `--users N`.

use rekey_bench::{arg_usize, latency_figure, print_series_table, LatencyConfig, Topology};

fn main() {
    let mut cfg = LatencyConfig::paper(Topology::GtItm, 1024, false);
    cfg.runs = arg_usize("--runs", 5);
    cfg.users = arg_usize("--users", cfg.users);
    eprintln!(
        "fig8: {} users, {} runs on {:?} ({} path)…",
        cfg.users,
        cfg.runs,
        cfg.topology,
        if cfg.data_path { "data" } else { "rekey" }
    );
    let fig = latency_figure(&cfg);
    print_series_table(
        "fig8a: inverse CDF of user stress",
        &[
            ("nice", &fig.stress.nice),
            ("nice_p95", &fig.stress.nice_p95),
            ("tmesh", &fig.stress.tmesh),
            ("tmesh_p95", &fig.stress.tmesh_p95),
        ],
    );
    print_series_table(
        "fig8b: inverse CDF of application-layer delay (ms)",
        &[
            ("nice", &fig.delay_ms.nice),
            ("nice_p95", &fig.delay_ms.nice_p95),
            ("tmesh", &fig.delay_ms.tmesh),
            ("tmesh_p95", &fig.delay_ms.tmesh_p95),
        ],
    );
    print_series_table(
        "fig8c: inverse CDF of RDP",
        &[
            ("nice", &fig.rdp.nice),
            ("nice_p95", &fig.rdp.nice_p95),
            ("tmesh", &fig.rdp.tmesh),
            ("tmesh_p95", &fig.rdp.tmesh_p95),
        ],
    );
    eprintln!(
        "fig8: T-mesh RDP<2 for {:.0}% of users, RDP<3 for {:.0}%; NICE RDP<2 for {:.0}%, RDP<3 for {:.0}%",
        frac_below(&fig.rdp.tmesh, 2.0), frac_below(&fig.rdp.tmesh, 3.0),
        frac_below(&fig.rdp.nice, 2.0), frac_below(&fig.rdp.nice, 3.0),
    );
}

fn frac_below(series: &[f64], bound: f64) -> f64 {
    100.0 * series.iter().filter(|&&v| v < bound).count() as f64 / series.len() as f64
}
