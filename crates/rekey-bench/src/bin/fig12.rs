//! Regenerates **Figure 12** of the paper: rekey cost as a function of the
//! number of joins `J` and leaves `L` in one rekey interval, for
//!
//! * (a) the modified key tree,
//! * (b) the modified key tree minus the original (Wong–Gouda–Lam,
//!   degree 4, batch rekeying) key tree, and
//! * (c) the modified key tree with the cluster rekeying heuristic minus
//!   the original key tree.
//!
//! Setup per the paper (§4.2): 1024 users join on the GT-ITM topology (IDs
//! via the assignment protocol); then `J` joins and `L` leaves are
//! processed in one interval; each `(J, L)` point averages over `--runs`
//! runs (paper: 20; default here 5 for turnaround — pass `--runs 20` for
//! the full setting). The `J`/`L` grid step is `--step` (default 256).

use rekey_bench::{arg_usize, grow_group, rekey_message_for_churn, ChurnPlan, Topology};
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ClusteredKeyTree, ModifiedKeyTree, OriginalKeyTree, RekeyArena};
use rekey_proto::AssignParams;
use rekey_sim::seeded_rng;
use rekey_table::PrimaryPolicy;

fn main() {
    let initial = arg_usize("--users", 1024);
    let runs = arg_usize("--runs", 5);
    let step = arg_usize("--step", 256);
    let spec = IdSpec::PAPER;
    eprintln!("fig12: {initial} initial users, grid step {step}, {runs} runs/point…");

    let grid: Vec<usize> = (0..=initial).step_by(step.max(1)).collect();
    // sums[(j, l)] = (modified, original, cluster)
    let mut sums = vec![[0f64; 3]; grid.len() * grid.len()];

    for run in 0..runs {
        let seed = 0x12f1_0000 + run as u64;
        let build = grow_group(
            Topology::GtItm,
            initial,
            initial, // spare hosts for the largest J
            &spec,
            4,
            PrimaryPolicy::SmallestRtt,
            AssignParams::paper(),
            2_048_000_000,
            seed,
        );
        let mut rng = seeded_rng(seed ^ 0xfee1);
        let base_ids: Vec<UserId> = build.group.members().iter().map(|m| m.id.clone()).collect();
        let mut order: Vec<usize> = (0..base_ids.len()).collect();
        order.sort_by_key(|&i| build.group.members()[i].joined_at);
        let ordered: Vec<UserId> = order.iter().map(|&i| base_ids[i].clone()).collect();

        // Server-side trees over the initial membership.
        let mut arena = RekeyArena::new();
        let mut base_modified = ModifiedKeyTree::new(&spec);
        base_modified
            .batch_rekey(&base_ids, &[], &mut rng, &mut arena)
            .expect("initial joins");
        let base_original = OriginalKeyTree::balanced(4, &base_ids);
        let mut base_cluster = ClusteredKeyTree::new(&spec);
        base_cluster
            .batch_rekey(&ordered, &[], &mut rng, &mut arena)
            .expect("initial joins");

        for (ji, &j) in grid.iter().enumerate() {
            for (li, &l) in grid.iter().enumerate() {
                let mut group = build.group.clone();
                let plan = ChurnPlan {
                    initial,
                    joins: j,
                    leaves: l,
                };
                let mut next_host = initial + 1;
                let (joins, leaves) = rekey_message_for_churn(
                    &mut group,
                    &build.net,
                    &plan,
                    &mut next_host,
                    &mut rng,
                );

                let mut modified = base_modified.clone();
                let mut original = base_original.clone();
                let mut cluster = base_cluster.clone();
                let cell = &mut sums[ji * grid.len() + li];
                cell[0] += modified
                    .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
                    .unwrap()
                    .cost() as f64;
                cell[1] += original.batch_rekey(&joins, &leaves).cost() as f64;
                cell[2] += cluster
                    .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
                    .unwrap()
                    .cost() as f64;
            }
        }
        eprintln!("fig12: run {} / {runs} done", run + 1);
    }

    println!("# fig12: rekey cost vs (J joins, L leaves); averages over {runs} runs");
    println!("J\tL\tmodified\toriginal\tcluster\tmod_minus_orig\tcluster_minus_orig");
    for (ji, &j) in grid.iter().enumerate() {
        for (li, &l) in grid.iter().enumerate() {
            let cell = sums[ji * grid.len() + li];
            let n = runs as f64;
            let (m, o, c) = (cell[0] / n, cell[1] / n, cell[2] / n);
            println!(
                "{j}\t{l}\t{m:.1}\t{o:.1}\t{c:.1}\t{:.1}\t{:.1}",
                m - o,
                c - o
            );
        }
    }
}
