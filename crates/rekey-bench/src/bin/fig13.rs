//! Regenerates **Figure 13** of the paper: rekey bandwidth overhead of the
//! seven rekey transport protocols of Table 2, on the GT-ITM topology.
//!
//! Setup per §4.3: 1024 users join; then 256 joins and 256 leaves are
//! processed in one 512 s rekey interval, producing one rekey message per
//! key-management strategy; the message is delivered by each protocol and
//! we record the inverse CDFs of
//!
//! * (a) encryptions **received** per user,
//! * (b) encryptions **forwarded** per user, and
//! * (c) encryptions going through each **network link**.

use std::collections::{HashMap, HashSet};

use rekey_bench::harness::AnyNet;
use rekey_bench::{
    arg_usize, grow_group, print_series_table, rekey_message_for_churn, ChurnPlan, Topology,
};
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ClusteredKeyTree, ModifiedKeyTree, OriginalKeyTree, RekeyArena};
use rekey_net::HostId;
use rekey_proto::{
    cluster_rekey_transport, ipmc_rekey_transport, nice_rekey_transport, tmesh_rekey_transport,
    AssignParams, BandwidthReport, TransportOptions,
};
use rekey_sim::seeded_rng;
use rekey_table::{oracle, PrimaryPolicy};
use rekey_tmesh::TmeshGroup;

fn main() {
    let initial = arg_usize("--users", 1024);
    let churn = arg_usize("--churn", 256);
    let seed = arg_usize("--seed", 0x13) as u64;
    let spec = IdSpec::PAPER;
    eprintln!("fig13: {initial} users, {churn} joins + {churn} leaves in one interval…");

    // Build the base group on GT-ITM with spare hosts for the joins.
    let mut build = grow_group(
        Topology::GtItm,
        initial,
        churn,
        &spec,
        4,
        PrimaryPolicy::SmallestRtt,
        AssignParams::paper(),
        2_048_000_000,
        seed,
    );
    let mut rng = seeded_rng(seed ^ 0x5eed);
    let base_ids: Vec<UserId> = build.group.members().iter().map(|m| m.id.clone()).collect();
    let mut order: Vec<usize> = (0..base_ids.len()).collect();
    order.sort_by_key(|&i| build.group.members()[i].joined_at);
    let ordered: Vec<UserId> = order.iter().map(|&i| base_ids[i].clone()).collect();

    // Server-side key state over the initial membership.
    let mut modified = ModifiedKeyTree::new(&spec);
    let mut modified_arena = RekeyArena::new();
    modified
        .batch_rekey(&base_ids, &[], &mut rng, &mut modified_arena)
        .expect("initial joins");
    let mut original = OriginalKeyTree::balanced(4, &base_ids);
    let mut cluster = ClusteredKeyTree::new(&spec);
    let mut cluster_arena = RekeyArena::new();
    cluster
        .batch_rekey(&ordered, &[], &mut rng, &mut cluster_arena)
        .expect("initial joins");

    // The measured churn interval.
    let plan = ChurnPlan {
        initial,
        joins: churn,
        leaves: churn,
    };
    let mut next_host = initial + 1;
    let (joins, leaves) = rekey_message_for_churn(
        &mut build.group,
        &build.net,
        &plan,
        &mut next_host,
        &mut rng,
    );
    let out_modified = modified
        .batch_rekey(&joins, &leaves, &mut rng, &mut modified_arena)
        .unwrap();
    let out_original = original.batch_rekey(&joins, &leaves);
    let out_cluster = cluster
        .batch_rekey(&joins, &leaves, &mut rng, &mut cluster_arena)
        .unwrap();
    eprintln!(
        "fig13: rekey costs — modified {} encryptions, original {}, cluster {}",
        out_modified.cost(),
        out_original.cost(),
        out_cluster.cost()
    );

    // Post-churn membership snapshots.
    let members = build.group.members().to_vec();
    let hosts: Vec<HostId> = members.iter().map(|m| m.host).collect();
    let mesh = build.group.tmesh();
    // Tables with leader-aware primaries for the cluster protocols.
    let cluster_tables = oracle::build_all_tables(
        &spec,
        &members,
        &build.net,
        4,
        PrimaryPolicy::EarliestJoinAtBottom,
    );
    let cluster_mesh = TmeshGroup::from_tables(
        &spec,
        members.clone(),
        cluster_tables.into_iter().map(std::rc::Rc::new).collect(),
        std::rc::Rc::new(oracle::build_server_table(
            &spec,
            &members,
            build.server,
            &build.net,
            4,
        )),
        build.server,
    );
    let is_leader = |i: usize| cluster.tree().contains_user(&members[i].id);
    let cluster_of = |i: usize| -> Vec<usize> {
        let prefix = members[i].id.prefix(spec.depth() - 1);
        members
            .iter()
            .enumerate()
            .filter(|(_, m)| prefix.is_prefix_of_id(&m.id))
            .map(|(k, _)| k)
            .collect()
    };

    // NICE hierarchy over the post-churn hosts, joined sequentially in the
    // same order the members joined the group.
    let nice = {
        let mut n = rekey_nice::NiceHierarchy::new(rekey_nice::NiceParams::default());
        for &h in &hosts {
            n.join(h, &build.net);
        }
        n
    };

    // Need-sets for the original key tree (P0/P0′): node indices on each
    // member's leaf-to-root path.
    let needs: HashMap<HostId, HashSet<usize>> = members
        .iter()
        .map(|m| {
            let path: HashSet<usize> = original.user_path(&m.id).into_iter().map(|n| n.0).collect();
            let needed: HashSet<usize> = out_original
                .encryptions
                .iter()
                .enumerate()
                .filter(|(_, e)| path.contains(&e.encrypting.0))
                .map(|(i, _)| i)
                .collect();
            (m.host, needed)
        })
        .collect();

    let AnyNet::Routed(routed) = &build.net else {
        panic!("fig13 runs on GT-ITM")
    };
    let reports: Vec<(&str, BandwidthReport)> = vec![
        (
            "P0(nice)",
            nice_rekey_transport(
                &nice,
                &build.net,
                build.server,
                &hosts,
                &needs,
                out_original.cost(),
                false,
            ),
        ),
        (
            "P0'(nice+split)",
            nice_rekey_transport(
                &nice,
                &build.net,
                build.server,
                &hosts,
                &needs,
                out_original.cost(),
                true,
            ),
        ),
        (
            "P1(tmesh)",
            tmesh_rekey_transport(
                &mesh,
                &build.net,
                out_modified.encryptions(),
                TransportOptions::flood(),
            ),
        ),
        (
            "P2(tmesh+split)",
            tmesh_rekey_transport(
                &mesh,
                &build.net,
                out_modified.encryptions(),
                TransportOptions::split(),
            ),
        ),
        (
            "P3(tmesh+cluster)",
            cluster_rekey_transport(
                &cluster_mesh,
                &build.net,
                out_cluster.rekey().encryptions(),
                TransportOptions::flood(),
                &is_leader,
                &cluster_of,
            ),
        ),
        (
            "P4(tmesh+cluster+split)",
            cluster_rekey_transport(
                &cluster_mesh,
                &build.net,
                out_cluster.rekey().encryptions(),
                TransportOptions::split(),
                &is_leader,
                &cluster_of,
            ),
        ),
        (
            "Pm(ipmc)",
            ipmc_rekey_transport(routed, build.server, &hosts, out_original.cost()),
        ),
    ];

    let sorted = |v: &[u64]| -> Vec<f64> {
        let mut s: Vec<f64> = v.iter().map(|&x| x as f64).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s
    };
    let recv: Vec<(&str, Vec<f64>)> = reports
        .iter()
        .map(|(n, r)| (*n, sorted(&r.received)))
        .collect();
    let fwd: Vec<(&str, Vec<f64>)> = reports
        .iter()
        .map(|(n, r)| (*n, sorted(&r.forwarded)))
        .collect();
    let link: Vec<(&str, Vec<f64>)> = reports
        .iter()
        .map(|(n, r)| {
            let loads = r
                .link_load
                .as_ref()
                .expect("GT-ITM has links")
                .sorted_loads();
            (*n, loads.into_iter().map(|x| x as f64).collect())
        })
        .collect();

    print_series_table(
        "fig13a: inverse CDF of encryptions received per user",
        &recv
            .iter()
            .map(|(n, s)| (*n, s.as_slice()))
            .collect::<Vec<_>>(),
    );
    print_series_table(
        "fig13b: inverse CDF of encryptions forwarded per user",
        &fwd.iter()
            .map(|(n, s)| (*n, s.as_slice()))
            .collect::<Vec<_>>(),
    );
    print_series_table(
        "fig13c: inverse CDF of encryptions per network link",
        &link
            .iter()
            .map(|(n, s)| (*n, s.as_slice()))
            .collect::<Vec<_>>(),
    );

    for (name, r) in &reports {
        let p90 = percentile_u64(&r.received, 0.90);
        eprintln!(
            "fig13: {name}: 90th-pct user receives {p90} encryptions; max received {}, max forwarded {}, max link {}",
            r.received.iter().max().unwrap(),
            r.forwarded.iter().max().unwrap(),
            r.link_load.as_ref().map(|l| l.max()).unwrap_or(0),
        );
    }
}

fn percentile_u64(v: &[u64], q: f64) -> u64 {
    let mut s = v.to_vec();
    s.sort_unstable();
    s[((q * (s.len() - 1) as f64).round()) as usize]
}
