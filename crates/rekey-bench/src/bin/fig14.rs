//! Regenerates **Figure 14** of the paper: sensitivity of T-mesh rekey path
//! latency to the delay thresholds `R_1 … R_{D−1}` and the ID depth `D`.
//!
//! Setup per §4.4: PlanetLab topology with 226 joins; the key server
//! multicasts one rekey message per setting; inverse CDFs of the
//! application-layer delay and RDP are printed per `(D, R…)` variant.

use rekey_bench::{arg_usize, grow_group, print_series_table, Topology};
use rekey_id::IdSpec;
use rekey_net::ms;
use rekey_proto::AssignParams;
use rekey_table::PrimaryPolicy;
use rekey_tmesh::{metrics::PathMetrics, Source};

fn main() {
    let users = arg_usize("--users", 226);
    let seed = arg_usize("--seed", 0x14) as u64;
    eprintln!("fig14: {users} joins on PlanetLab, threshold sweep…");

    // (label, D, thresholds in ms)
    let variants: Vec<(String, usize, Vec<u64>)> = vec![
        ("D5(150,30,9,3)".into(), 5, vec![150, 30, 9, 3]),
        ("D5(90,30,9,3)".into(), 5, vec![90, 30, 9, 3]),
        ("D6(150,50,30,9,3)".into(), 6, vec![150, 50, 30, 9, 3]),
        ("D6(150,80,30,9,3)".into(), 6, vec![150, 80, 30, 9, 3]),
        ("D4(150,30,9)".into(), 4, vec![150, 30, 9]),
    ];

    let mut delay_cols: Vec<(String, Vec<f64>)> = Vec::new();
    let mut rdp_cols: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, depth, thresholds) in &variants {
        let spec = IdSpec::new(*depth, 256).expect("valid spec");
        let assign = AssignParams {
            p: 10,
            f_percentile: 80,
            thresholds: thresholds.iter().map(|&t| ms(t)).collect(),
        };
        let build = grow_group(
            Topology::PlanetLab,
            users,
            0,
            &spec,
            4,
            PrimaryPolicy::SmallestRtt,
            assign,
            452_000_000,
            seed,
        );
        let mesh = build.group.tmesh();
        let outcome = mesh.multicast(&build.net, Source::Server);
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &build.net, &outcome);
        let mut delays: Vec<f64> = metrics
            .delay
            .iter()
            .flatten()
            .map(|&d| d as f64 / 1000.0)
            .collect();
        let mut rdps: Vec<f64> = metrics.rdp.iter().flatten().copied().collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rdps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        eprintln!(
            "fig14: {label}: median delay {:.1} ms, median RDP {:.2}",
            delays[delays.len() / 2],
            rdps[rdps.len() / 2]
        );
        delay_cols.push((label.clone(), delays));
        rdp_cols.push((label.clone(), rdps));
    }

    print_series_table(
        "fig14a: inverse CDF of application-layer delay (ms) per threshold setting",
        &delay_cols
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_slice()))
            .collect::<Vec<_>>(),
    );
    print_series_table(
        "fig14b: inverse CDF of RDP per threshold setting",
        &rdp_cols
            .iter()
            .map(|(n, s)| (n.as_str(), s.as_slice()))
            .collect::<Vec<_>>(),
    );
}
