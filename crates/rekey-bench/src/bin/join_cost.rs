//! Validates the §3.1.4 analysis: the total number of messages exchanged
//! while a joining user determines its ID is `O(P · D · N^{1/D})` on
//! average.
//!
//! Sweeps the group size `N` on the PlanetLab-style substrate and prints
//! the measured mean queries/probes per join against the analytical bound.

use rekey_bench::{arg_usize, grow_group, Topology};
use rekey_id::IdSpec;
use rekey_net::HostId;
use rekey_proto::AssignParams;
use rekey_table::PrimaryPolicy;

fn main() {
    let max_users = arg_usize("--users", 512);
    let probes_per_point = arg_usize("--probes", 20);
    let spec = IdSpec::new(4, 64).expect("valid spec");
    let assign = AssignParams::for_depth(spec.depth());
    println!("# join_cost: ID assignment message cost vs group size");
    println!("N\tmean_queries\tmean_probes\tbound_PDN",);

    let mut n = 32;
    while n <= max_users {
        let build = grow_group(
            Topology::PlanetLab,
            n,
            probes_per_point,
            &spec,
            4,
            PrimaryPolicy::SmallestRtt,
            assign.clone(),
            1_000_000_000,
            0x10c0 + n as u64,
        );
        let mut group = build.group.clone();
        let mut queries = 0f64;
        let mut probes = 0f64;
        for p in 0..probes_per_point {
            let out = group
                .join(HostId(n + 1 + p), &build.net, 10_000 + p as u64)
                .unwrap();
            queries += out.stats.queries as f64;
            probes += out.stats.probes as f64;
        }
        let bound =
            assign.p as f64 * spec.depth() as f64 * (n as f64).powf(1.0 / spec.depth() as f64);
        println!(
            "{n}\t{:.1}\t{:.1}\t{:.1}",
            queries / probes_per_point as f64,
            probes / probes_per_point as f64,
            bound
        );
        n *= 2;
    }
}
