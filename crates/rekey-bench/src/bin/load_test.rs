//! Loopback-UDP load test: thousands of in-process members behind the
//! real-socket driver (`UdpGroupDriver`), every rekey interval, NACK and
//! recovery flowing through actual `std::net::UdpSocket` datagrams.
//!
//! The run bootstraps `--members` members across `--workers` worker
//! threads, then sustains `--churn` leaves **and** `--churn` fresh joins
//! per rekey interval for `--intervals` intervals, finishing with the
//! server's flush rounds and a full K-consistency audit. Unlike the
//! simulated engines, the clock here is the wall clock and the loss
//! model is the kernel: bursts that overflow a socket's receive buffer
//! are real drops, and the NACK/recovery counters show the protocol
//! paying them back.
//!
//! Prints a JSON document (the committed `BENCH_loadtest.json`) to
//! stdout via the shared deterministic writer: apply-delay percentiles,
//! datagram throughput, and recovery counts. Progress goes to stderr.
//! Wall-clock figures vary run to run; everything derived from protocol
//! counters is deterministic per seed up to kernel-induced loss.
//!
//! Run with `--release`. Defaults (1024 members, 3 churned intervals)
//! finish in a few seconds on one core; `--members 4000` is still under
//! the 4096-ID space of the default spec.

use std::time::{Duration, Instant};

use rekey_bench::arg_usize;
use rekey_id::IdSpec;
use rekey_metrics::json::Writer;
use rekey_net::GridNetwork;
use rekey_proto::{GroupConfig, RuntimeConfig, UdpGroupDriver};

/// Real time per rekey interval. Long enough for a 1k-member interval's
/// forward mesh to drain on one core, short enough that a smoke run
/// stays bounded.
const PERIOD_US: u64 = 500_000;
/// Patience per interval before declaring the session wedged. Generous:
/// CI boxes stall; the protocol shouldn't be blamed for a noisy neighbor.
const PATIENCE: Duration = Duration::from_secs(60);
const SEED: u64 = 0x10AD;

fn main() {
    let members = arg_usize("--members", 1024);
    let workers = arg_usize("--workers", 4);
    let intervals = arg_usize("--intervals", 3);
    let churn = arg_usize("--churn", 8);

    let joins_total = churn * intervals;
    let spec = IdSpec::new(4, 8).expect("4 levels of 8 digits");
    assert!(
        members + joins_total < 4096,
        "roster outgrows the 4096-ID space"
    );
    let net = GridNetwork::new(members + joins_total + 1, 1_000, 100);
    let group = GroupConfig::for_spec(&spec).k(2).seed(SEED);
    let config = RuntimeConfig::builder()
        .rekey_period(PERIOD_US)
        .nack_grace(PERIOD_US / 4)
        .heartbeat_period(1 << 40)
        .retry_base(PERIOD_US / 8)
        .seed(SEED)
        .build();

    eprintln!(
        "load_test: bootstrapping {members} members on {workers} worker threads \
         ({intervals} intervals, {churn} leaves + {churn} joins each)…"
    );
    let build_start = Instant::now();
    let mut rt = UdpGroupDriver::bootstrapped(group, config, net, members, workers)
        .expect("bootstrap fits the ID space and the loopback");
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    eprintln!("load_test: bootstrapped in {build_ms:.0} ms; driving churn…");

    let run_start = Instant::now();
    let mut next_leave = 0usize;
    for interval in 0..intervals {
        for _ in 0..churn {
            // Walk the original roster front to back: every leaver is a
            // distinct bootstrap-era member, never a fresh joiner.
            rt.leave(next_leave);
            next_leave += 1;
        }
        for _ in 0..churn {
            rt.join();
        }
        let target = interval as u64 + 2; // bootstrap completes interval 1
        assert!(
            rt.run_to_interval(target, PATIENCE),
            "interval {target} failed to converge within {PATIENCE:?}"
        );
        eprintln!(
            "load_test: interval {target} complete at {:.2} s",
            run_start.elapsed().as_secs_f64()
        );
    }
    assert!(rt.finish(PATIENCE), "shutdown flush failed to converge");
    let wall = run_start.elapsed();

    rt.check_consistency()
        .expect("tables K-consistent after churn");
    let group_key = rt.server().tree().group_key().expect("non-empty group");
    let mut live = 0usize;
    for handle in 0..rt.member_count() {
        if let Some(agent) = rt.agent(handle) {
            assert_eq!(
                agent.group_key(),
                Some(group_key),
                "member {handle} finished stale"
            );
            live += 1;
        }
    }

    let report = rt.snapshot();
    rekey_bench::schema::validate_snapshot(&report.to_json());
    let traffic = rt.traffic();
    let wall_s = wall.as_secs_f64();
    let packets = traffic.packets_sent + traffic.packets_received;
    eprintln!(
        "load_test: {} intervals in {:.2} s, {} datagrams ({:.0}/s), {} nacks recovered",
        report.intervals,
        wall_s,
        packets,
        packets as f64 / wall_s,
        report.nacks
    );

    let mut w = Writer::new();
    w.begin_object();
    w.field_str(
        "bench",
        "UdpGroupDriver: loopback-UDP churn through real sockets \
         (kernel loss, wall-clock rekey intervals)",
    );
    w.field_str(
        "unit",
        "datagrams per wall-clock second over loopback (release)",
    );
    w.begin_named_object("config");
    w.field_usize("members", members);
    w.field_usize("workers", workers);
    w.field_usize("churn_per_interval", churn);
    w.field_u64("rekey_period_us", PERIOD_US);
    w.field_u64("seed", SEED);
    w.end_object();
    w.begin_named_object("results");
    w.field_u64("intervals", report.intervals);
    w.field_usize("live_members", live);
    w.field_u64("joins", report.joins);
    w.field_u64("departures", report.departures);
    w.field_f64("build_ms", build_ms, 1);
    w.field_f64("wall_s", wall_s, 2);
    w.field_f64("packets_per_sec", packets as f64 / wall_s, 0);
    w.field_u64("packets_sent", traffic.packets_sent);
    w.field_u64("packets_received", traffic.packets_received);
    w.field_u64("bytes_sent", traffic.bytes_sent);
    w.field_u64("bytes_received", traffic.bytes_received);
    w.field_u64(
        "kernel_drops",
        traffic.packets_sent - traffic.packets_received,
    );
    w.field_u64("oversize_drops", traffic.oversize_drops);
    w.field_u64("malformed_frames", traffic.malformed_frames);
    w.field_u64("decode_errors", traffic.decode_errors);
    w.field_u64("forward_copies", report.forward_copies);
    w.field_u64("delivered", report.delivered);
    w.field_u64("nacks", report.nacks);
    w.field_u64("recovery_encryptions", report.recovery_encryptions);
    w.field_u64("retransmissions", report.retransmissions);
    w.field_u64("apply_delay_p50_us", report.apply_delay_us.p50());
    w.field_u64("apply_delay_p95_us", report.apply_delay_us.p95());
    w.field_u64("apply_delay_p99_us", report.apply_delay_us.p99());
    w.field_f64("apply_delay_mean_us", report.apply_delay_us.mean(), 1);
    w.end_object();
    w.end_object();
    print!("{}", w.finish());
}
