//! Experiment harness: topology construction, group growth and the shared
//! latency-figure pipeline (Figs. 6–11, 14).

use rand::seq::SliceRandom;
use rand::Rng;
use rekey_crypto::Encryption;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::ModifiedKeyTree;
use rekey_net::gtitm::{generate, GtItmParams};
use rekey_net::{
    GridNetwork, HostId, LinkId, MatrixNetwork, Micros, Network, PlanetLabParams, RoutedNetwork,
};
use rekey_nice::{NiceHierarchy, NiceParams};
use rekey_proto::{AssignParams, ChurnEvent, Group, GroupConfig};
use rekey_sim::{seeded_rng, SimRng};
use rekey_table::{Member, PrimaryPolicy};
use rekey_tmesh::{metrics::PathMetrics, Source, TmeshGroup};

use crate::output::{ranked_mean, ranked_quantile};

/// The two evaluation topologies of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// The PlanetLab all-pairs RTT matrix (synthesised; see DESIGN.md).
    PlanetLab,
    /// The GT-ITM-style transit-stub topology (≈5000 routers, ≈13000
    /// links).
    GtItm,
}

/// A network substrate of either kind.
#[derive(Debug)]
pub enum AnyNet {
    /// RTT-matrix substrate.
    Matrix(MatrixNetwork),
    /// Router-graph substrate.
    Routed(RoutedNetwork),
}

impl Network for AnyNet {
    fn host_count(&self) -> usize {
        match self {
            AnyNet::Matrix(n) => n.host_count(),
            AnyNet::Routed(n) => n.host_count(),
        }
    }
    fn rtt(&self, a: HostId, b: HostId) -> Micros {
        match self {
            AnyNet::Matrix(n) => n.rtt(a, b),
            AnyNet::Routed(n) => n.rtt(a, b),
        }
    }
    fn gateway_rtt(&self, a: HostId, b: HostId) -> Micros {
        match self {
            AnyNet::Matrix(n) => n.gateway_rtt(a, b),
            AnyNet::Routed(n) => n.gateway_rtt(a, b),
        }
    }
    fn one_way(&self, a: HostId, b: HostId) -> Micros {
        match self {
            AnyNet::Matrix(n) => n.one_way(a, b),
            AnyNet::Routed(n) => n.one_way(a, b),
        }
    }
    fn path_links(&self, a: HostId, b: HostId) -> Option<Vec<LinkId>> {
        match self {
            AnyNet::Matrix(n) => n.path_links(a, b),
            AnyNet::Routed(n) => n.path_links(a, b),
        }
    }
    fn link_count(&self) -> usize {
        match self {
            AnyNet::Matrix(n) => n.link_count(),
            AnyNet::Routed(n) => n.link_count(),
        }
    }
}

/// PlanetLab parameters scaled so the matrix has exactly `hosts` hosts,
/// keeping the paper's continental proportions.
pub fn planetlab_params(hosts: usize) -> PlanetLabParams {
    let mut params = PlanetLabParams::default();
    let total: usize = params.continent_hosts.iter().sum();
    if hosts != total {
        let mut scaled: Vec<usize> = params
            .continent_hosts
            .iter()
            .map(|&c| (c * hosts / total).max(1))
            .collect();
        let mut sum: usize = scaled.iter().sum();
        while sum < hosts {
            scaled[0] += 1;
            sum += 1;
        }
        while sum > hosts {
            let i = scaled.iter().position(|&c| c > 1).expect("positive counts");
            scaled[i] -= 1;
            sum -= 1;
        }
        params.continent_hosts = scaled;
    }
    params
}

/// Builds a substrate with `hosts` hosts.
pub fn build_net(topology: Topology, hosts: usize, rng: &mut SimRng) -> AnyNet {
    match topology {
        Topology::PlanetLab => AnyNet::Matrix(MatrixNetwork::synthetic_planetlab(
            &planetlab_params(hosts),
            rng,
        )),
        Topology::GtItm => {
            let topo = generate(&GtItmParams::default(), rng);
            AnyNet::Routed(RoutedNetwork::random_attachment(
                topo.into_graph(),
                hosts,
                rng,
            ))
        }
    }
}

/// A grown group plus the substrate and join order it was grown on.
pub struct GroupBuild {
    /// The network substrate.
    pub net: AnyNet,
    /// The group after all joins.
    pub group: Group,
    /// Hosts in join order (users only; the server is the last host).
    pub join_order: Vec<HostId>,
    /// The key server's host.
    pub server: HostId,
}

/// Grows a group of `users` members on `topology` via the §3.1 ID
/// assignment protocol, with joins at random times in `[0, interval]` (the
/// figures use 452 s for PlanetLab and 2048 s for GT-ITM).
///
/// `spare_hosts` extra hosts are provisioned on the substrate (at indices
/// `users + 1 ..`) for later churn intervals; pass 0 when no churn follows.
#[allow(clippy::too_many_arguments)]
pub fn grow_group(
    topology: Topology,
    users: usize,
    spare_hosts: usize,
    spec: &IdSpec,
    k: usize,
    policy: PrimaryPolicy,
    assign: AssignParams,
    interval: Micros,
    seed: u64,
) -> GroupBuild {
    let mut rng = seeded_rng(seed);
    let net = build_net(topology, users + 1 + spare_hosts, &mut rng);
    let server = HostId(users);
    let mut group = Group::new(spec, server, k, policy, assign);
    let mut join_order: Vec<HostId> = (0..users).map(HostId).collect();
    join_order.shuffle(&mut rng);
    let mut times: Vec<Micros> = (0..users).map(|_| rng.gen_range(0..=interval)).collect();
    times.sort_unstable();
    for (host, at) in join_order.iter().zip(times) {
        group
            .join(*host, &net, at)
            .expect("ID space is large enough");
    }
    GroupBuild {
        net,
        group,
        join_order,
        server,
    }
}

/// Builds a NICE hierarchy over the same hosts in the same join order
/// ("users follow the same join and leave order in T-mesh and NICE", §4).
pub fn grow_nice(net: &AnyNet, join_order: &[HostId]) -> NiceHierarchy {
    let mut nice = NiceHierarchy::new(NiceParams::default());
    for &h in join_order {
        nice.join(h, net);
    }
    nice
}

/// One metric's rank-averaged series for the two schemes, with the
/// 95-percentile across runs per rank (the paper's Fig. 6 vertical bars).
#[derive(Debug, Clone)]
pub struct SchemeSeries {
    /// T-mesh values, rank-averaged across runs.
    pub tmesh: Vec<f64>,
    /// NICE values, rank-averaged across runs.
    pub nice: Vec<f64>,
    /// Per-rank 95-percentile across runs, T-mesh.
    pub tmesh_p95: Vec<f64>,
    /// Per-rank 95-percentile across runs, NICE.
    pub nice_p95: Vec<f64>,
}

/// The three latency metrics of Figs. 6–11.
#[derive(Debug, Clone)]
pub struct LatencyFigure {
    /// User stress (messages forwarded).
    pub stress: SchemeSeries,
    /// Application-layer delay in milliseconds.
    pub delay_ms: SchemeSeries,
    /// Relative delay penalty.
    pub rdp: SchemeSeries,
}

/// Configuration of one latency figure.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// Evaluation topology.
    pub topology: Topology,
    /// Number of user joins.
    pub users: usize,
    /// Independent simulation runs to average over.
    pub runs: usize,
    /// `false` ⇒ rekey path (sender = key server); `true` ⇒ data path
    /// (sender = random user).
    pub data_path: bool,
    /// ID-space shape.
    pub spec: IdSpec,
    /// Neighbor-table entry capacity.
    pub k: usize,
    /// ID assignment parameters.
    pub assign: AssignParams,
    /// Join-time window.
    pub interval: Micros,
    /// Base RNG seed.
    pub seed: u64,
}

impl LatencyConfig {
    /// The paper's defaults for a given topology/size/path.
    pub fn paper(topology: Topology, users: usize, data_path: bool) -> LatencyConfig {
        LatencyConfig {
            topology,
            users,
            runs: 100,
            data_path,
            spec: IdSpec::PAPER,
            k: 4,
            assign: AssignParams::paper(),
            interval: match topology {
                Topology::PlanetLab => 452_000_000,
                Topology::GtItm => 2_048_000_000,
            },
            seed: 20050607,
        }
    }
}

/// Runs a latency figure: grows the group and the NICE hierarchy per run,
/// multicasts once from the configured sender in each scheme, and
/// rank-averages user stress / application-layer delay / RDP.
pub fn latency_figure(cfg: &LatencyConfig) -> LatencyFigure {
    let mut stress_t = Vec::new();
    let mut stress_n = Vec::new();
    let mut delay_t = Vec::new();
    let mut delay_n = Vec::new();
    let mut rdp_t = Vec::new();
    let mut rdp_n = Vec::new();

    for run in 0..cfg.runs {
        let seed = cfg.seed.wrapping_add(run as u64);
        let build = grow_group(
            cfg.topology,
            cfg.users,
            0,
            &cfg.spec,
            cfg.k,
            PrimaryPolicy::SmallestRtt,
            cfg.assign.clone(),
            cfg.interval,
            seed,
        );
        let nice = grow_nice(&build.net, &build.join_order);
        let mesh = build.group.tmesh();
        let mut rng = seeded_rng(seed ^ 0x5eed);

        let (source, nice_out) = if cfg.data_path {
            let sender_idx = rng.gen_range(0..build.group.len());
            let sender_host = build.group.members()[sender_idx].host;
            (
                Source::User(sender_idx),
                nice.data_multicast(&build.net, sender_host),
            )
        } else {
            (
                Source::Server,
                nice.rekey_multicast(&build.net, build.server),
            )
        };
        let outcome = mesh.multicast(&build.net, source);
        outcome.exactly_once().expect("Theorem 1");
        let metrics = PathMetrics::from_outcome(&mesh, &build.net, &outcome);
        let sender_host = mesh.host_of(source);

        stress_t.push(metrics.stress.iter().map(|&s| s as f64).collect());
        delay_t.push(
            metrics
                .delay
                .iter()
                .flatten()
                .map(|&d| d as f64 / 1000.0)
                .collect(),
        );
        rdp_t.push(metrics.rdp.iter().flatten().copied().collect());

        let mut sn = Vec::new();
        let mut dn = Vec::new();
        let mut rn = Vec::new();
        for m in build.group.members() {
            sn.push(f64::from(nice_out.user_stress(m.host)));
            if let Some(d) = nice_out.delivery(m.host) {
                dn.push(d.arrival as f64 / 1000.0);
                let unicast = build.net.one_way(sender_host, m.host).max(1);
                rn.push(d.arrival as f64 / unicast as f64);
            }
        }
        stress_n.push(sn);
        delay_n.push(dn);
        rdp_n.push(rn);
    }

    let series = |t: &[Vec<f64>], n: &[Vec<f64>]| SchemeSeries {
        tmesh: ranked_mean(t),
        nice: ranked_mean(n),
        tmesh_p95: ranked_quantile(t, 0.95),
        nice_p95: ranked_quantile(n, 0.95),
    };
    LatencyFigure {
        stress: series(&stress_t, &stress_n),
        delay_ms: series(&delay_t, &delay_n),
        rdp: series(&rdp_t, &rdp_n),
    }
}

/// Churn plan for the rekey-cost and bandwidth figures (Figs. 12–13).
#[derive(Debug, Clone, Copy)]
pub struct ChurnPlan {
    /// Initial group size (1024 in the paper).
    pub initial: usize,
    /// Joins in the measured rekey interval.
    pub joins: usize,
    /// Leaves in the measured rekey interval.
    pub leaves: usize,
}

/// Applies one churn interval to a grown group: `plan.leaves` random
/// current members leave and `plan.joins` fresh spare hosts join (IDs via
/// the assignment protocol; `next_host` must start past the server host).
/// Returns `(joined_ids, left_ids)`.
pub fn rekey_message_for_churn(
    group: &mut Group,
    net: &AnyNet,
    plan: &ChurnPlan,
    next_host: &mut usize,
    rng: &mut SimRng,
) -> (Vec<rekey_id::UserId>, Vec<rekey_id::UserId>) {
    let mut leave_ids = Vec::with_capacity(plan.leaves);
    for _ in 0..plan.leaves {
        let pick = rng.gen_range(0..group.len());
        let id = group.members()[pick].id.clone();
        group.leave(&id, net).expect("member exists");
        leave_ids.push(id);
    }
    let mut join_ids = Vec::with_capacity(plan.joins);
    for _ in 0..plan.joins {
        let host = HostId(*next_host);
        *next_host += 1;
        let out = group.join(host, net, *next_host as u64).expect("space");
        join_ids.push(out.id);
    }
    (join_ids, leave_ids)
}

/// Parses `--runs N` / `--users N` style overrides from the command line.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Fixture for the transport-scaling benchmarks: a T-mesh over `users`
/// members plus the rekey message of an interval in which `leaves` of
/// them depart.
///
/// Built by the oracle constructor rather than the join protocol so the
/// mesh scales to thousands of members quickly. The substrate is capped
/// at 1024 hosts (the flattened all-pairs RTT matrix grows quadratically)
/// and members beyond that share hosts round-robin, which leaves the
/// transport's work — hop enumeration and payload composition — exactly
/// as it would be with distinct hosts.
pub fn transport_fixture(
    users: usize,
    leaves: usize,
    seed: u64,
) -> (MatrixNetwork, TmeshGroup, Vec<Encryption>) {
    assert!(leaves <= users);
    let spec = IdSpec::PAPER;
    let mut rng = seeded_rng(seed);
    let member_hosts = users.min(1024);
    let net = MatrixNetwork::synthetic_planetlab(&planetlab_params(member_hosts + 1), &mut rng);
    let mut seen = std::collections::HashSet::new();
    let mut ids: Vec<UserId> = Vec::with_capacity(users);
    while ids.len() < users {
        let id = UserId::from_index(&spec, rng.gen_range(0..spec.id_space()));
        if seen.insert(id.clone()) {
            ids.push(id);
        }
    }
    let members: Vec<Member> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| Member {
            id: id.clone(),
            host: HostId(i % member_hosts),
            joined_at: i as u64,
        })
        .collect();
    let server = HostId(member_hosts);
    let mesh = TmeshGroup::build(&spec, members, server, &net, 4, PrimaryPolicy::SmallestRtt);
    let mut tree = ModifiedKeyTree::new(&spec);
    let mut arena = rekey_keytree::RekeyArena::new();
    tree.batch_rekey(&ids, &[], &mut rng, &mut arena).unwrap();
    // NOTE: the message rekeys members who stay in the mesh snapshot —
    // fine for throughput measurement purposes.
    let mut out = tree
        .batch_rekey(&[], &ids[..leaves], &mut rng, &mut arena)
        .unwrap();
    (net, mesh, out.take_encryptions())
}

/// Substrate, group config, churn trace and finish time for a
/// [`rekey_proto::GroupRuntime`] scaling run: `members` joins spread over
/// the opening intervals, then `churn_intervals` rekey intervals in which
/// one member leaves and a fresh one joins (audience size stays constant).
///
/// The trace leaves a quiet tail after the last churn event so every
/// welcome and repair completes before the returned finish time.
pub fn churn_runtime_fixture(
    members: usize,
    churn_intervals: u64,
    seed: u64,
) -> (MatrixNetwork, GroupConfig, Vec<ChurnEvent>, u64) {
    const SEC: u64 = 1_000_000;
    let mut rng = seeded_rng(seed);
    let hosts = members + churn_intervals as usize + 1;
    let net = MatrixNetwork::synthetic_planetlab(&planetlab_params(hosts), &mut rng);
    let spec = IdSpec::new(4, 8).expect("valid spec");
    let config = GroupConfig::for_spec(&spec).k(4).seed(seed);
    let mut trace: Vec<ChurnEvent> = (0..members as u64)
        .map(|i| ChurnEvent::join(SEC + i * 10_000))
        .collect();
    // Churn starts after the slowest opening-join wave has been admitted
    // (members × 10 ms, plus one full interval of slack).
    let churn_start = (SEC + members as u64 * 10_000).div_ceil(10 * SEC) * 10 * SEC + 10 * SEC;
    for i in 0..churn_intervals {
        let t = churn_start + i * 10 * SEC;
        trace.push(ChurnEvent::leave(t, (i as usize * 13) % members));
        trace.push(ChurnEvent::join(t + 2 * SEC));
    }
    let finish = churn_start + churn_intervals * 10 * SEC + 11 * SEC;
    (net, config, trace, finish)
}

/// Fixture for the sharded million-member runtime sweep: a [`GridNetwork`]
/// with one host per member plus the server, a 5-digit hexadecimal ID
/// space (16⁵ ≈ 1.05 M ids) at K = 1, a leaves-only churn plan (two
/// interval windows, four departures each, handles spread across the
/// group), and the finish time that closes the second churned interval.
///
/// The substrate is a delay grid rather than an RTT matrix because an
/// all-pairs matrix over 10⁶ hosts is 4 TB; the grid answers delay
/// queries in O(1) from coordinates and guarantees the positive minimum
/// cross-host delay ([`GridNetwork::min_one_way`]) the sharded executor's
/// window invariant needs.
pub fn mega_runtime_fixture(
    members: usize,
) -> (GridNetwork, GroupConfig, Vec<(u64, usize)>, u64, Micros) {
    const SEC: u64 = 1_000_000;
    const PERIOD: u64 = 10 * SEC;
    let net = GridNetwork::with_defaults(members + 1);
    let window = net.min_one_way();
    let spec = IdSpec::new(5, 16).expect("valid spec");
    assert!(
        (members as u64) <= spec.id_space(),
        "the 16^5 ID space seats at most {} members",
        spec.id_space()
    );
    let config = GroupConfig::for_spec(&spec).k(1).seed(0xC4C4);
    // Two churned intervals, four leaves each; handles are spread by
    // fixed fractions so departures hit distinct level-1 subtrees.
    let spread = [members / 7, members / 3, members / 2 + 1, members - 2];
    let mut leaves: Vec<(u64, usize)> = Vec::new();
    for (i, &h) in spread.iter().enumerate() {
        leaves.push((2 * SEC + i as u64 * SEC, h));
    }
    for (i, &h) in [members / 5, members / 11 + 2, members / 2 - 3, members - 9]
        .iter()
        .enumerate()
    {
        leaves.push((PERIOD + 2 * SEC + i as u64 * SEC, h));
    }
    let finish = 2 * PERIOD + SEC;
    (net, config, leaves, finish, window)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mega fixture drives the sharded executor end to end at a
    /// thumbnail size: every leave departs, every survivor stays current,
    /// and at least the two churned intervals complete.
    #[test]
    fn mega_fixture_drives_the_sharded_runtime() {
        use rekey_proto::{RuntimeConfig, ShardedGroupRuntime};
        let members = 4096;
        let (net, group, leaves, finish, window) = mega_runtime_fixture(members);
        let config = RuntimeConfig::builder().loss(0.01).seed(1).build();
        let mut rt = ShardedGroupRuntime::bootstrapped(group, config, net, members, 8, window)
            .expect("4096 members fit the 16^5 space");
        assert_eq!(leaves.len(), 8);
        for &(at, handle) in &leaves {
            rt.leave_at(at, handle);
        }
        rt.finish(finish);
        let report = rt.snapshot();
        assert_eq!(report.departures, 8);
        assert_eq!(report.members, members - 8);
        assert!(report.intervals >= 2, "got {} intervals", report.intervals);
        assert!(report.forward_copies > 0);
        let server_interval = rt.server().interval();
        let leavers: Vec<usize> = leaves.iter().map(|&(_, h)| h).collect();
        for handle in (0..members).step_by(97) {
            if leavers.contains(&handle) {
                continue;
            }
            let agent = rt.agent(handle).expect("survivor was welcomed");
            assert_eq!(agent.interval(), server_interval, "member {handle} lags");
        }
    }

    #[test]
    fn planetlab_params_scale_exactly() {
        for hosts in [5, 60, 227, 400] {
            assert_eq!(planetlab_params(hosts).host_count(), hosts);
        }
    }

    #[test]
    fn small_latency_figure_runs() {
        let cfg = LatencyConfig {
            topology: Topology::PlanetLab,
            users: 12,
            runs: 2,
            data_path: false,
            spec: IdSpec::new(3, 8).unwrap(),
            k: 2,
            assign: AssignParams::for_depth(3),
            interval: 1_000_000,
            seed: 7,
        };
        let fig = latency_figure(&cfg);
        assert_eq!(fig.stress.tmesh.len(), 12);
        assert_eq!(fig.rdp.tmesh.len(), 12);
        assert_eq!(fig.rdp.nice.len(), 12);
        // RDP is positive (triangle-inequality violations in measured RTT
        // matrices can push it slightly below 1, as on real PlanetLab).
        assert!(fig.rdp.tmesh.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn data_path_figure_excludes_sender_from_delay() {
        let cfg = LatencyConfig {
            topology: Topology::PlanetLab,
            users: 10,
            runs: 1,
            data_path: true,
            spec: IdSpec::new(3, 8).unwrap(),
            k: 2,
            assign: AssignParams::for_depth(3),
            interval: 1_000_000,
            seed: 9,
        };
        let fig = latency_figure(&cfg);
        assert_eq!(fig.stress.tmesh.len(), 10);
        assert_eq!(fig.delay_ms.tmesh.len(), 9);
        assert_eq!(fig.delay_ms.nice.len(), 9);
    }

    #[test]
    fn churn_keeps_group_size() {
        let mut build = grow_group(
            Topology::PlanetLab,
            16,
            8,
            &IdSpec::new(3, 8).unwrap(),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(3),
            1_000_000,
            4,
        );
        let mut next_host = 17;
        let mut rng = seeded_rng(5);
        let plan = ChurnPlan {
            initial: 16,
            joins: 4,
            leaves: 4,
        };
        let (j, l) = rekey_message_for_churn(
            &mut build.group,
            &build.net,
            &plan,
            &mut next_host,
            &mut rng,
        );
        assert_eq!(j.len(), 4);
        assert_eq!(l.len(), 4);
        assert_eq!(build.group.len(), 16);
        build.group.check().expect("still K-consistent");
    }
}
