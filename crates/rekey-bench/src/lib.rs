//! Shared harness code for regenerating the paper's tables and figures.
//!
//! Every figure has a dedicated binary in `src/bin/` (`fig06` … `fig14`,
//! plus `join_cost` and the ablations); each prints TSV series to stdout.
//! The `bench_*` binaries emit the committed `BENCH_*.json` snapshots
//! (schema-checked by [`schema::validate_snapshot`]), and `load_test`
//! drives 1k+ members over real loopback UDP sockets against the wall
//! clock. `EXPERIMENTS.md` in the repository root records
//! paper-vs-measured for every experiment.

pub mod harness;
pub mod output;
pub mod schema;

pub use harness::{
    arg_usize, churn_runtime_fixture, grow_group, grow_nice, latency_figure, mega_runtime_fixture,
    rekey_message_for_churn, transport_fixture, ChurnPlan, GroupBuild, LatencyConfig,
    LatencyFigure, SchemeSeries, Topology,
};
pub use output::{fraction_axis, print_series_table, ranked_mean};
