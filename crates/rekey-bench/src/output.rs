//! TSV output helpers for the figure binaries.

/// The x axis of an inverse CDF plot: `ranks` evenly spaced fractions of
/// users/links.
pub fn fraction_axis(samples: usize) -> Vec<f64> {
    if samples <= 1 {
        return vec![1.0];
    }
    (0..samples)
        .map(|i| i as f64 / (samples - 1) as f64)
        .collect()
}

/// Rank-wise mean across runs: every run contributes a sorted sample
/// vector; the result is the per-rank mean (the paper's methodology for
/// Fig. 6: "we ranked the users in increasing order of their stresses. For
/// each rank … we computed the average user stress of the users with this
/// particular rank across all runs").
///
/// # Panics
///
/// Panics if runs have different lengths or no runs are given.
pub fn ranked_mean(runs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!runs.is_empty(), "need at least one run");
    let n = runs[0].len();
    let mut means = vec![0.0; n];
    for run in runs {
        assert_eq!(run.len(), n, "all runs must rank the same population size");
        let mut sorted = run.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN-free"));
        for (m, v) in means.iter_mut().zip(sorted) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= runs.len() as f64;
    }
    means
}

/// Rank-wise quantile across runs (the paper's Fig. 6 draws the
/// 95-percentile as vertical bars at each rank): each run is sorted, then
/// for every rank the `q`-quantile over runs is taken.
///
/// # Panics
///
/// Panics if runs have different lengths, no runs are given, or `q` is
/// outside `[0, 1]`.
pub fn ranked_quantile(runs: &[Vec<f64>], q: f64) -> Vec<f64> {
    assert!(!runs.is_empty(), "need at least one run");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let n = runs[0].len();
    let sorted_runs: Vec<Vec<f64>> = runs
        .iter()
        .map(|run| {
            assert_eq!(run.len(), n, "all runs must rank the same population size");
            let mut s = run.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("NaN-free"));
            s
        })
        .collect();
    (0..n)
        .map(|rank| {
            let mut column: Vec<f64> = sorted_runs.iter().map(|r| r[rank]).collect();
            column.sort_by(|a, b| a.partial_cmp(b).expect("NaN-free"));
            let idx = ((q * (column.len() - 1) as f64).round()) as usize;
            column[idx]
        })
        .collect()
}

/// Prints a TSV table: a header, then one row per rank with the fraction
/// axis and one column per series.
///
/// # Panics
///
/// Panics if series lengths differ.
pub fn print_series_table(title: &str, columns: &[(&str, &[f64])]) {
    println!("# {title}");
    print!("fraction");
    for (name, _) in columns {
        print!("\t{name}");
    }
    println!();
    let n = columns.first().map_or(0, |(_, s)| s.len());
    for (_, s) in columns {
        assert_eq!(s.len(), n, "series length mismatch");
    }
    let axis = fraction_axis(n);
    for (i, frac) in axis.iter().enumerate() {
        print!("{frac:.4}");
        for (_, s) in columns {
            print!("\t{:.4}", s[i]);
        }
        println!();
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_mean_sorts_each_run() {
        let runs = vec![vec![3.0, 1.0, 2.0], vec![10.0, 30.0, 20.0]];
        assert_eq!(ranked_mean(&runs), vec![5.5, 11.0, 16.5]);
    }

    #[test]
    fn fraction_axis_spans_unit_interval() {
        let axis = fraction_axis(5);
        assert_eq!(axis[0], 0.0);
        assert_eq!(axis[4], 1.0);
        assert_eq!(fraction_axis(1), vec![1.0]);
    }

    #[test]
    fn ranked_quantile_extracts_per_rank_extremes() {
        let runs = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]];
        assert_eq!(ranked_quantile(&runs, 1.0), vec![3.0, 30.0]);
        assert_eq!(ranked_quantile(&runs, 0.0), vec![1.0, 10.0]);
        assert_eq!(ranked_quantile(&runs, 0.5), vec![2.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "same population")]
    fn ranked_mean_rejects_mismatched_runs() {
        ranked_mean(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
