//! Loud validation of the snapshot JSON schema the bench artifacts
//! promise.
//!
//! The committed `BENCH_runtime.json` / `BENCH_chaos.json` documents are
//! derived from [`rekey_proto::MetricsSnapshot`] data, and downstream
//! tooling greps those artifacts by key. Every bench binary calls
//! [`validate_snapshot`] on each snapshot it folds into an artifact, so a
//! renamed or dropped counter fails the bench run immediately instead of
//! silently shipping an artifact with holes.

use rekey_metrics::json::has_key;

/// Every key a `MetricsSnapshot::to_json` document must contain —
/// counters, histogram series, and the span block. Keep in sync with
/// `MetricsSnapshot`; removing a key here loosens the artifact contract
/// and should be a deliberate, reviewed change.
pub const SNAPSHOT_REQUIRED_KEYS: &[&str] = &[
    // counters
    "intervals",
    "members",
    "joins",
    "departures",
    "failures_detected",
    "forward_copies",
    "copies_lost",
    "dead_letters",
    "suppressed",
    "nacks",
    "recovery_encryptions",
    "pings",
    "evictions",
    "retransmissions",
    "max_retry_attempts",
    "resyncs",
    "rejoins",
    "rehabilitations",
    "restarts",
    "checkpoints",
    "delivered",
    "welcomes",
    "leave_acks",
    "tree_encryptions",
    "tombstone_hits",
    "partition_cuts",
    "fault_loss_drops",
    "elections",
    "promotions",
    "lost_mutations",
    "repl_lag_peak",
    "peak_queue_depth",
    // histogram series
    "apply_delay_us",
    "batch_size",
    "split_payload",
    "forward_fanout",
    "recovery_size",
    // span block
    "spans",
    "spans_dropped",
];

/// Checks a snapshot JSON document against [`SNAPSHOT_REQUIRED_KEYS`].
///
/// # Panics
///
/// Panics listing every promised key absent from `json`.
pub fn validate_snapshot(json: &str) {
    let missing: Vec<&str> = SNAPSHOT_REQUIRED_KEYS
        .iter()
        .copied()
        .filter(|key| !has_key(json, key))
        .collect();
    assert!(
        missing.is_empty(),
        "snapshot JSON is missing promised keys: {missing:?}"
    );
}

/// Every key the `BENCH_crypto.json` artifact promises: the sweep array,
/// its per-cell measurements, and the headline 64k speedup downstream
/// tooling greps for.
pub const CRYPTO_BENCH_REQUIRED_KEYS: &[&str] = &[
    "bench",
    "unit",
    "cores",
    "crypto_sweep",
    "batch_cost",
    "threads",
    "seal_ns_min",
    "seal_ns_mean",
    "seals_per_us",
    "speedup_vs_serial",
    "speedup_64k_best",
];

/// Checks a `bench_crypto` artifact against
/// [`CRYPTO_BENCH_REQUIRED_KEYS`].
///
/// # Panics
///
/// Panics listing every promised key absent from `json`.
pub fn validate_crypto_bench(json: &str) {
    let missing: Vec<&str> = CRYPTO_BENCH_REQUIRED_KEYS
        .iter()
        .copied()
        .filter(|key| !has_key(json, key))
        .collect();
    assert!(
        missing.is_empty(),
        "crypto bench JSON is missing promised keys: {missing:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_snapshot_satisfies_the_promised_schema() {
        validate_snapshot(&rekey_proto::MetricsSnapshot::default().to_json());
    }

    #[test]
    #[should_panic(expected = "missing promised keys")]
    fn missing_keys_are_reported_loudly() {
        validate_snapshot("{\"intervals\": 3}");
    }

    #[test]
    #[should_panic(expected = "missing promised keys")]
    fn crypto_bench_keys_are_checked_loudly() {
        validate_crypto_bench("{\"bench\": \"x\"}");
    }
}
