//! ChaCha20 stream cipher (RFC 8439), implemented from the specification.
//!
//! The paper treats "encryptions" abstractly — an encryption is a new key
//! encrypted under another key. To make the reproduction end-to-end
//! verifiable (users actually *decrypt* the rekey messages they receive and
//! must end up holding exactly the right keys) we wrap keys with a real
//! stream cipher rather than a placeholder.

/// Size of a ChaCha20 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a ChaCha20 nonce in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;
/// Size of one ChaCha20 block in bytes.
pub const BLOCK_LEN: usize = 64;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4 bytes"));
    }
    state
}

/// Computes one 64-byte ChaCha20 keystream block (RFC 8439 §2.3).
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let mut state = initial;
    for _ in 0..10 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place with the ChaCha20 keystream starting
/// at block `counter` (RFC 8439 §2.4). Encryption and decryption are the
/// same operation.
///
/// # Panics
///
/// Panics if the message would overflow the 32-bit block counter (over
/// 256 GiB with a single nonce), which cannot happen for key wraps.
pub fn xor_stream(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let blocks_needed = data.len().div_ceil(BLOCK_LEN) as u64;
    assert!(
        u64::from(counter) + blocks_needed <= u64::from(u32::MAX) + 1,
        "counter overflow"
    );
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        let clean: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        clean
            .as_bytes()
            .chunks(2)
            .map(|c| u8::from_str_radix(std::str::from_utf8(c).unwrap(), 16).unwrap())
            .collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    /// RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block_test_vector() {
        let key = test_key();
        let nonce = hex("000000090000004a00000000");
        let out = block(&key, 1, nonce.as_slice().try_into().unwrap());
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(out.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2 encryption test vector ("Ladies and Gentlemen...").
    #[test]
    fn rfc8439_encrypt_test_vector() {
        let key = test_key();
        let nonce = hex("000000000000004a00000000");
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it."
            .to_vec();
        xor_stream(&key, 1, nonce.as_slice().try_into().unwrap(), &mut data);
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_stream_round_trips() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let original: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let mut data = original.clone();
        xor_stream(&key, 0, &nonce, &mut data);
        assert_ne!(data, original);
        xor_stream(&key, 0, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = test_key();
        let a = block(&key, 0, &[0u8; NONCE_LEN]);
        let b = block(&key, 0, &[1u8; NONCE_LEN]);
        assert_ne!(a, b);
        let c = block(&key, 1, &[0u8; NONCE_LEN]);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_message_is_noop() {
        let key = test_key();
        let mut data: Vec<u8> = Vec::new();
        xor_stream(&key, 0, &[0u8; NONCE_LEN], &mut data);
        assert!(data.is_empty());
    }
}
