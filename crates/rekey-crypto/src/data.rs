//! Group-key data encryption: the payload side of secure group
//! communication.
//!
//! The group key exists to "encrypt data traffic between group members"
//! (§1). [`SealedData`] is that operation: ChaCha20 over the payload with a
//! fresh nonce, SipHash-2-4 tag, and a `(key id, key version)` header so
//! receivers know which group-key generation to decrypt with — important
//! while a rekey interval is propagating and members briefly hold different
//! versions.

use std::fmt;

use rand::Rng;
use rekey_id::IdPrefix;

use crate::chacha::{self, NONCE_LEN};
use crate::key::Key;
use crate::siphash::{siphash24, TAG_LEN};

/// Errors produced when opening sealed data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpenError {
    /// The supplied key's ID does not match the sealing key's ID.
    WrongKeyId {
        /// ID of the key the data was sealed under.
        expected: IdPrefix,
        /// ID of the key supplied.
        actual: IdPrefix,
    },
    /// The supplied key is a different version than the sealing key.
    WrongKeyVersion {
        /// Version the data was sealed under.
        expected: u64,
        /// Version supplied.
        actual: u64,
    },
    /// The authentication tag did not verify (corruption or wrong key
    /// material).
    BadTag,
}

impl fmt::Display for OpenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenError::WrongKeyId { expected, actual } => {
                write!(f, "data sealed under key {expected}, got {actual}")
            }
            OpenError::WrongKeyVersion { expected, actual } => {
                write!(f, "data sealed under key version {expected}, got {actual}")
            }
            OpenError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for OpenError {}

/// A data payload encrypted under a (group) key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedData {
    key_id: IdPrefix,
    key_version: u64,
    nonce: [u8; NONCE_LEN],
    ciphertext: Vec<u8>,
    tag: [u8; TAG_LEN],
}

impl SealedData {
    /// Encrypts `plaintext` under `key` with a fresh random nonce.
    pub fn seal<R: Rng + ?Sized>(key: &Key, plaintext: &[u8], rng: &mut R) -> SealedData {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce[..]);
        let mut ciphertext = plaintext.to_vec();
        chacha::xor_stream(key.material().as_bytes(), 1, &nonce, &mut ciphertext);
        let mut sealed = SealedData {
            key_id: key.id().clone(),
            key_version: key.version(),
            nonce,
            ciphertext,
            tag: [0u8; TAG_LEN],
        };
        sealed.tag = sealed.compute_tag(key);
        sealed
    }

    fn compute_tag(&self, key: &Key) -> [u8; TAG_LEN] {
        let mut input = Vec::with_capacity(self.ciphertext.len() + 32);
        input.push(self.key_id.len() as u8);
        for &d in self.key_id.digits() {
            input.extend_from_slice(&d.to_le_bytes());
        }
        input.extend_from_slice(&self.key_version.to_le_bytes());
        input.extend_from_slice(&self.nonce);
        input.extend_from_slice(&self.ciphertext);
        siphash24(&key.material().mac_subkey(), &input)
    }

    /// Decrypts with `key`.
    ///
    /// # Errors
    ///
    /// * [`OpenError::WrongKeyId`] / [`OpenError::WrongKeyVersion`] — header
    ///   mismatch, checkable before any cryptography;
    /// * [`OpenError::BadTag`] — wrong key material or corrupted data.
    pub fn open(&self, key: &Key) -> Result<Vec<u8>, OpenError> {
        if key.id() != &self.key_id {
            return Err(OpenError::WrongKeyId {
                expected: self.key_id.clone(),
                actual: key.id().clone(),
            });
        }
        if key.version() != self.key_version {
            return Err(OpenError::WrongKeyVersion {
                expected: self.key_version,
                actual: key.version(),
            });
        }
        if self.compute_tag(key) != self.tag {
            return Err(OpenError::BadTag);
        }
        let mut plaintext = self.ciphertext.clone();
        chacha::xor_stream(key.material().as_bytes(), 1, &self.nonce, &mut plaintext);
        Ok(plaintext)
    }

    /// ID of the key this data was sealed under.
    pub fn key_id(&self) -> &IdPrefix {
        &self.key_id
    }

    /// Version of the key this data was sealed under.
    pub fn key_version(&self) -> u64 {
        self.key_version
    }

    /// The raw parts for wire encoding (see [`crate::wire`]).
    pub fn wire_parts(&self) -> (&IdPrefix, u64, &[u8; NONCE_LEN], &[u8], &[u8; TAG_LEN]) {
        (
            &self.key_id,
            self.key_version,
            &self.nonce,
            &self.ciphertext,
            &self.tag,
        )
    }

    /// Reassembles sealed data from decoded wire parts; [`SealedData::open`]
    /// still verifies authenticity.
    pub fn from_wire_parts(
        key_id: IdPrefix,
        key_version: u64,
        nonce: [u8; NONCE_LEN],
        ciphertext: Vec<u8>,
        tag: [u8; TAG_LEN],
    ) -> SealedData {
        SealedData {
            key_id,
            key_version,
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Serialised size in bytes.
    pub fn wire_size(&self) -> usize {
        1 + 2 * self.key_id.len() + 8 + NONCE_LEN + 4 + self.ciphertext.len() + TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group_key(version: u64) -> (StdRng, Key) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut key = Key::random(IdPrefix::root(), &mut rng);
        for _ in 0..version {
            key = key.next_version(&mut rng);
        }
        (rng, key)
    }

    #[test]
    fn seal_open_round_trip() {
        let (mut rng, key) = group_key(3);
        let msg = b"conference frame 42";
        let sealed = SealedData::seal(&key, msg, &mut rng);
        assert_eq!(sealed.open(&key).unwrap(), msg);
        assert_eq!(sealed.key_version(), 3);
        assert!(sealed.key_id().is_empty());
    }

    #[test]
    fn stale_group_key_is_rejected_cleanly() {
        let (mut rng, key) = group_key(0);
        let newer = key.next_version(&mut rng);
        let sealed = SealedData::seal(&newer, b"secret", &mut rng);
        assert_eq!(
            sealed.open(&key),
            Err(OpenError::WrongKeyVersion {
                expected: 1,
                actual: 0
            })
        );
    }

    #[test]
    fn wrong_key_id_is_rejected() {
        let (mut rng, key) = group_key(0);
        let sealed = SealedData::seal(&key, b"x", &mut rng);
        let spec = rekey_id::IdSpec::new(3, 4).unwrap();
        let aux = Key::random(IdPrefix::new(&spec, vec![1]).unwrap(), &mut rng);
        assert!(matches!(
            sealed.open(&aux),
            Err(OpenError::WrongKeyId { .. })
        ));
    }

    #[test]
    fn tampering_detected() {
        let (mut rng, key) = group_key(1);
        let mut sealed = SealedData::seal(&key, b"payload bytes", &mut rng);
        sealed.ciphertext[0] ^= 0x80;
        assert_eq!(sealed.open(&key), Err(OpenError::BadTag));
    }

    #[test]
    fn empty_payload_works() {
        let (mut rng, key) = group_key(0);
        let sealed = SealedData::seal(&key, b"", &mut rng);
        assert_eq!(sealed.open(&key).unwrap(), Vec::<u8>::new());
        assert!(sealed.wire_size() > 0);
    }
}
