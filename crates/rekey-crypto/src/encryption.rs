//! Encryptions: new keys wrapped under other keys (the paper's `{k'}_k`).
//!
//! The paper defines "`{k'}_k` denotes key `k'` encrypted by key `k`, and is
//! referred to as an *encryption*", and identifies each encryption by "the ID
//! of the encrypting key" (§2.4). [`Encryption::id`] returns exactly that, so
//! Lemma 3 reads: a user needs an encryption iff
//! `encryption.id().is_prefix_of_id(user_id)`.

use std::fmt;

use rand::Rng;
use rekey_id::IdPrefix;

use crate::chacha::{self, NONCE_LEN};
use crate::key::{Key, KeyMaterial};
use crate::siphash::{siphash24, TAG_LEN};

/// Errors produced when opening (decrypting) an [`Encryption`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnwrapError {
    /// The supplied key's ID does not match the encrypting key's ID.
    WrongKeyId {
        /// ID of the encrypting key recorded in the encryption.
        expected: IdPrefix,
        /// ID of the key that was supplied.
        actual: IdPrefix,
    },
    /// The MAC tag did not verify: wrong key version or corrupted data.
    BadTag,
}

impl fmt::Display for UnwrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnwrapError::WrongKeyId { expected, actual } => {
                write!(f, "encryption requires key {expected}, got {actual}")
            }
            UnwrapError::BadTag => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for UnwrapError {}

/// A single encryption `{k'}_k`: the material of a new key `k'` wrapped
/// (ChaCha20 + SipHash-2-4, encrypt-then-MAC) under an encrypting key `k`.
#[derive(Debug, PartialEq, Eq)]
pub struct Encryption {
    encrypting_id: IdPrefix,
    encrypting_version: u64,
    encrypted_id: IdPrefix,
    encrypted_version: u64,
    nonce: [u8; NONCE_LEN],
    ciphertext: [u8; chacha::KEY_LEN],
    tag: [u8; TAG_LEN],
}

/// Hand-written so [`Clone::clone_from`] reuses the destination's ID digit
/// buffers (see [`IdPrefix`]'s `Clone`) when copying into reused slots.
impl Clone for Encryption {
    fn clone(&self) -> Encryption {
        Encryption {
            encrypting_id: self.encrypting_id.clone(),
            encrypting_version: self.encrypting_version,
            encrypted_id: self.encrypted_id.clone(),
            encrypted_version: self.encrypted_version,
            nonce: self.nonce,
            ciphertext: self.ciphertext,
            tag: self.tag,
        }
    }

    fn clone_from(&mut self, source: &Encryption) {
        self.encrypting_id.clone_from(&source.encrypting_id);
        self.encrypting_version = source.encrypting_version;
        self.encrypted_id.clone_from(&source.encrypted_id);
        self.encrypted_version = source.encrypted_version;
        self.nonce = source.nonce;
        self.ciphertext = source.ciphertext;
        self.tag = source.tag;
    }
}

/// Stack capacity for the MAC input of a key wrap. Covers IDs up to 120
/// digits combined (2 length bytes + 2 bytes/digit + 16 version bytes +
/// nonce + ciphertext ≤ 512); deeper trees fall back to the heap.
const MAC_STACK_LEN: usize = 512;

impl Encryption {
    /// Wraps `new_key` under `encrypting_key` with a fresh random nonce.
    ///
    /// Convenience wrapper over [`Encryption::seal_into`] that allocates a
    /// new `Encryption`. Batch paths that reuse arena slots should call
    /// `seal_into` directly with a [`crate::NonceSeq`]-derived nonce.
    pub fn seal<R: Rng + ?Sized>(encrypting_key: &Key, new_key: &Key, rng: &mut R) -> Encryption {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce[..]);
        let mut enc = Encryption::placeholder();
        enc.seal_into(encrypting_key, new_key, nonce);
        enc
    }

    /// An inert slot value for pre-sizing arenas; overwritten by
    /// [`Encryption::seal_into`] before use.
    pub fn placeholder() -> Encryption {
        Encryption {
            encrypting_id: IdPrefix::root(),
            encrypting_version: 0,
            encrypted_id: IdPrefix::root(),
            encrypted_version: 0,
            nonce: [0u8; NONCE_LEN],
            ciphertext: [0u8; chacha::KEY_LEN],
            tag: [0u8; TAG_LEN],
        }
    }

    /// Wraps `new_key` under `encrypting_key` directly into `self`, with a
    /// caller-supplied nonce (see [`crate::NonceSeq`]).
    ///
    /// All fields are overwritten in place via `clone_from`, so once this
    /// slot's ID digit buffers have grown to the working depth, re-sealing
    /// performs **zero heap allocations**. Safe to call concurrently on
    /// distinct slots — it only reads the two keys.
    pub fn seal_into(&mut self, encrypting_key: &Key, new_key: &Key, nonce: [u8; NONCE_LEN]) {
        self.encrypting_id.clone_from(encrypting_key.id());
        self.encrypting_version = encrypting_key.version();
        self.encrypted_id.clone_from(new_key.id());
        self.encrypted_version = new_key.version();
        self.nonce = nonce;
        self.ciphertext = *new_key.material().as_bytes();
        chacha::xor_stream(
            encrypting_key.material().as_bytes(),
            0,
            &nonce,
            &mut self.ciphertext,
        );
        self.tag = self.compute_tag(encrypting_key.material());
    }

    /// Serialises the MAC-bound identity (IDs, versions, nonce, ciphertext)
    /// into `buf` so replays across nodes/versions are detected; returns the
    /// number of bytes written. `buf` must be at least [`Self::mac_len`].
    fn write_mac_input(&self, buf: &mut [u8]) -> usize {
        let mut at = 0;
        let mut push = |bytes: &[u8]| {
            buf[at..at + bytes.len()].copy_from_slice(bytes);
            at += bytes.len();
        };
        push(&[self.encrypting_id.len() as u8]);
        for &d in self.encrypting_id.digits() {
            push(&d.to_le_bytes());
        }
        push(&self.encrypting_version.to_le_bytes());
        push(&[self.encrypted_id.len() as u8]);
        for &d in self.encrypted_id.digits() {
            push(&d.to_le_bytes());
        }
        push(&self.encrypted_version.to_le_bytes());
        push(&self.nonce);
        push(&self.ciphertext);
        at
    }

    /// Exact MAC-input length for this encryption.
    fn mac_len(&self) -> usize {
        2 + 2 * (self.encrypting_id.len() + self.encrypted_id.len())
            + 16
            + NONCE_LEN
            + chacha::KEY_LEN
    }

    fn compute_tag(&self, wrap_key: &KeyMaterial) -> [u8; TAG_LEN] {
        let subkey = wrap_key.mac_subkey();
        let len = self.mac_len();
        if len <= MAC_STACK_LEN {
            let mut buf = [0u8; MAC_STACK_LEN];
            let written = self.write_mac_input(&mut buf);
            debug_assert_eq!(written, len);
            siphash24(&subkey, &buf[..written])
        } else {
            let mut buf = vec![0u8; len];
            self.write_mac_input(&mut buf);
            siphash24(&subkey, &buf)
        }
    }

    /// Unwraps the encryption with `key`, returning the encrypted new key.
    ///
    /// # Errors
    ///
    /// * [`UnwrapError::WrongKeyId`] — `key` is not the encrypting key for
    ///   this encryption (checkable without cryptography via [`Self::id`]).
    /// * [`UnwrapError::BadTag`] — wrong key material (e.g. a stale version)
    ///   or corrupted ciphertext.
    pub fn open(&self, key: &Key) -> Result<Key, UnwrapError> {
        if key.id() != &self.encrypting_id {
            return Err(UnwrapError::WrongKeyId {
                expected: self.encrypting_id.clone(),
                actual: key.id().clone(),
            });
        }
        if self.compute_tag(key.material()) != self.tag {
            return Err(UnwrapError::BadTag);
        }
        let mut plaintext = self.ciphertext;
        chacha::xor_stream(key.material().as_bytes(), 0, &self.nonce, &mut plaintext);
        Ok(Key::new(
            self.encrypted_id.clone(),
            self.encrypted_version,
            KeyMaterial::from_bytes(plaintext),
        ))
    }

    /// The encryption's ID: the ID of the **encrypting** key (§2.4).
    ///
    /// This drives both Lemma 3 (a user needs the encryption iff this ID is
    /// a prefix of the user's ID) and the splitting rule of Fig. 5.
    pub fn id(&self) -> &IdPrefix {
        &self.encrypting_id
    }

    /// Version of the encrypting key the wrap was made under.
    pub fn encrypting_version(&self) -> u64 {
        self.encrypting_version
    }

    /// ID of the key carried *inside* the encryption.
    pub fn encrypted_id(&self) -> &IdPrefix {
        &self.encrypted_id
    }

    /// Version of the key carried inside the encryption.
    pub fn encrypted_version(&self) -> u64 {
        self.encrypted_version
    }

    /// The raw cryptographic parts `(nonce, ciphertext, tag)` for wire
    /// encoding (see [`crate::wire`]).
    pub fn wire_parts(&self) -> (&[u8; NONCE_LEN], &[u8; chacha::KEY_LEN], &[u8; TAG_LEN]) {
        (&self.nonce, &self.ciphertext, &self.tag)
    }

    /// Reassembles an encryption from decoded wire parts. The result is
    /// only as trustworthy as its tag: [`Encryption::open`] still verifies
    /// authenticity.
    pub fn from_wire_parts(
        encrypting_id: IdPrefix,
        encrypting_version: u64,
        encrypted_id: IdPrefix,
        encrypted_version: u64,
        nonce: [u8; NONCE_LEN],
        ciphertext: [u8; chacha::KEY_LEN],
        tag: [u8; TAG_LEN],
    ) -> Encryption {
        Encryption {
            encrypting_id,
            encrypting_version,
            encrypted_id,
            encrypted_version,
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Serialised size in bytes, used for bandwidth accounting.
    ///
    /// Layout: 1 length byte + 2 bytes/digit for each of the two IDs, two
    /// 8-byte versions, nonce, 32-byte wrapped key and 8-byte tag.
    pub fn wire_size(&self) -> usize {
        let id_bytes = 2 + 2 * self.encrypting_id.len() + 2 * self.encrypted_id.len();
        id_bytes + 16 + NONCE_LEN + chacha::KEY_LEN + TAG_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_id::IdSpec;

    fn setup() -> (StdRng, Key, Key) {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = IdSpec::new(3, 4).unwrap();
        let aux = Key::random(IdPrefix::new(&spec, vec![2]).unwrap(), &mut rng);
        let group = Key::random(IdPrefix::root(), &mut rng);
        (rng, aux, group)
    }

    #[test]
    fn seal_open_round_trip() {
        let (mut rng, aux, group) = setup();
        let new_group = group.next_version(&mut rng);
        let enc = Encryption::seal(&aux, &new_group, &mut rng);
        assert_eq!(enc.id(), aux.id());
        assert_eq!(enc.encrypted_id(), group.id());
        assert_eq!(enc.encrypted_version(), 1);
        let opened = enc.open(&aux).expect("must open with correct key");
        assert_eq!(opened, new_group);
    }

    #[test]
    fn open_with_wrong_key_id_fails() {
        let (mut rng, aux, group) = setup();
        let enc = Encryption::seal(&aux, &group.next_version(&mut rng), &mut rng);
        let err = enc.open(&group).unwrap_err();
        assert!(matches!(err, UnwrapError::WrongKeyId { .. }));
        assert!(err.to_string().contains("requires key"));
    }

    #[test]
    fn open_with_stale_key_version_fails() {
        let (mut rng, aux, group) = setup();
        let new_aux = aux.next_version(&mut rng);
        let enc = Encryption::seal(&new_aux, &group.next_version(&mut rng), &mut rng);
        // Same ID but old material: must be rejected by the MAC.
        assert_eq!(enc.open(&aux), Err(UnwrapError::BadTag));
        assert!(enc.open(&new_aux).is_ok());
    }

    #[test]
    fn tampered_ciphertext_is_detected() {
        let (mut rng, aux, group) = setup();
        let mut enc = Encryption::seal(&aux, &group.next_version(&mut rng), &mut rng);
        enc.ciphertext[0] ^= 1;
        assert_eq!(enc.open(&aux), Err(UnwrapError::BadTag));
    }

    #[test]
    fn seal_into_matches_seal_given_same_nonce() {
        let (mut rng, aux, group) = setup();
        let new_group = group.next_version(&mut rng);
        let mut draw = StdRng::seed_from_u64(99);
        let via_seal = Encryption::seal(&aux, &new_group, &mut draw);
        let mut slot = Encryption::placeholder();
        slot.seal_into(&aux, &new_group, *via_seal.wire_parts().0);
        assert_eq!(slot, via_seal);
        assert_eq!(slot.open(&aux).unwrap(), new_group);
    }

    #[test]
    fn seal_into_overwrites_previous_slot_contents() {
        let (mut rng, aux, group) = setup();
        let mut slot = Encryption::placeholder();
        slot.seal_into(&aux, &group.next_version(&mut rng), [1; NONCE_LEN]);
        // Re-seal the same slot with a different pair; no stale fields may
        // survive.
        let new_aux = aux.next_version(&mut rng);
        slot.seal_into(&group, &new_aux, [2; NONCE_LEN]);
        assert_eq!(slot.id(), group.id());
        assert_eq!(slot.encrypted_id(), new_aux.id());
        assert_eq!(slot.open(&group).unwrap(), new_aux);
    }

    #[test]
    fn deep_ids_use_heap_mac_fallback() {
        // IdSpec depth is unbounded; combined ID depth beyond the stack
        // buffer must still produce a valid (openable) wrap.
        let mut rng = StdRng::seed_from_u64(11);
        let spec = IdSpec::new(300, 4).unwrap();
        let deep = IdPrefix::new(&spec, vec![1; 260]).unwrap();
        let deep_key = Key::random(deep, &mut rng);
        let group = Key::random(IdPrefix::root(), &mut rng);
        let enc = Encryption::seal(&deep_key, &group.next_version(&mut rng), &mut rng);
        assert!(enc.wire_size() > MAC_STACK_LEN);
        assert_eq!(enc.open(&deep_key).unwrap().id(), group.id());
    }

    #[test]
    fn wire_size_scales_with_id_length() {
        let (mut rng, aux, group) = setup();
        let enc_short = Encryption::seal(&group, &group.next_version(&mut rng), &mut rng);
        let enc_long = Encryption::seal(&aux, &group.next_version(&mut rng), &mut rng);
        assert!(enc_long.wire_size() > enc_short.wire_size());
        // group->group wrap: 2 + 16 + 12 + 32 + 8 = 70 bytes.
        assert_eq!(enc_short.wire_size(), 70);
    }
}
