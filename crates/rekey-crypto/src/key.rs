//! Key material and the keys held by the key server and users.

use std::fmt;

use rand::Rng;
use rekey_id::IdPrefix;

use crate::chacha;

/// Raw 256-bit symmetric key material.
///
/// `Debug` deliberately prints only a 4-byte fingerprint so that simulation
/// logs never leak whole keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyMaterial([u8; chacha::KEY_LEN]);

impl KeyMaterial {
    /// Generates fresh random key material.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> KeyMaterial {
        let mut bytes = [0u8; chacha::KEY_LEN];
        rng.fill(&mut bytes[..]);
        KeyMaterial(bytes)
    }

    /// Wraps existing bytes as key material (for tests and fixed vectors).
    pub fn from_bytes(bytes: [u8; chacha::KEY_LEN]) -> KeyMaterial {
        KeyMaterial(bytes)
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; chacha::KEY_LEN] {
        &self.0
    }

    /// Derives the 128-bit MAC subkey used for encrypt-then-MAC key wraps.
    ///
    /// Domain separation comes from a fixed derivation nonce, so the cipher
    /// keystream used for wrapping (random per-wrap nonces) can never collide
    /// with the MAC subkey derivation.
    pub fn mac_subkey(&self) -> [u8; crate::siphash::MAC_KEY_LEN] {
        const DERIVE_NONCE: [u8; chacha::NONCE_LEN] = *b"mac-subkey!!";
        let block = chacha::block(&self.0, u32::MAX, &DERIVE_NONCE);
        let mut out = [0u8; crate::siphash::MAC_KEY_LEN];
        out.copy_from_slice(&block[..crate::siphash::MAC_KEY_LEN]);
        out
    }
}

impl fmt::Debug for KeyMaterial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KeyMaterial({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// A key in the (modified) key tree, carrying the paper's identification
/// scheme: "the ID of a key in the key tree \[is\] the ID of its corresponding
/// node in the ID tree" (§2.4).
///
/// * `id.is_empty()` — the **group key**.
/// * `0 < id.len() < D` — an **auxiliary key**.
/// * `id.len() == D` — a user's **individual key**.
///
/// `version` counts how many times the key at this node has been changed by
/// rekeying; a `(id, version)` pair uniquely names one concrete key value.
#[derive(Debug, PartialEq, Eq)]
pub struct Key {
    id: IdPrefix,
    version: u64,
    material: KeyMaterial,
}

/// Hand-written so [`Clone::clone_from`] propagates to the ID's digit
/// buffer (see [`IdPrefix`]'s `Clone`), keeping key overwrites in reused
/// arena slots allocation-free.
impl Clone for Key {
    fn clone(&self) -> Key {
        Key {
            id: self.id.clone(),
            version: self.version,
            material: self.material,
        }
    }

    fn clone_from(&mut self, source: &Key) {
        self.id.clone_from(&source.id);
        self.version = source.version;
        self.material = source.material;
    }
}

impl Key {
    /// Creates a key with the given identity and material.
    pub fn new(id: IdPrefix, version: u64, material: KeyMaterial) -> Key {
        Key {
            id,
            version,
            material,
        }
    }

    /// Creates version-0 random key material for ID-tree node `id`.
    pub fn random<R: Rng + ?Sized>(id: IdPrefix, rng: &mut R) -> Key {
        Key {
            id,
            version: 0,
            material: KeyMaterial::random(rng),
        }
    }

    /// The key's ID: the ID of its ID-tree node.
    pub fn id(&self) -> &IdPrefix {
        &self.id
    }

    /// The key's version (bumped by 1 on every rekey of this node).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The raw key material.
    pub fn material(&self) -> &KeyMaterial {
        &self.material
    }

    /// Produces the next version of this key with fresh material.
    pub fn next_version<R: Rng + ?Sized>(&self, rng: &mut R) -> Key {
        Key {
            id: self.id.clone(),
            version: self.version + 1,
            material: KeyMaterial::random(rng),
        }
    }

    /// Advances this key to its next version in place with fresh material
    /// — the allocation-free form of [`Key::next_version`], drawing from
    /// `rng` identically (one material fill).
    pub fn refresh<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.version += 1;
        self.material = KeyMaterial::random(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_material_differs() {
        let mut rng = rng();
        let a = KeyMaterial::random(&mut rng);
        let b = KeyMaterial::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_material() {
        let m = KeyMaterial::from_bytes([0xAB; 32]);
        let s = format!("{m:?}");
        assert!(s.contains("abab"));
        assert!(s.len() < 30, "full key must not be printed: {s}");
    }

    #[test]
    fn mac_subkey_is_deterministic_and_key_dependent() {
        let a = KeyMaterial::from_bytes([1; 32]);
        let b = KeyMaterial::from_bytes([2; 32]);
        assert_eq!(a.mac_subkey(), a.mac_subkey());
        assert_ne!(a.mac_subkey(), b.mac_subkey());
    }

    #[test]
    fn refresh_matches_next_version_draws() {
        // Identically seeded RNGs: in-place refresh and next_version must
        // land on the same (version, material) state.
        let mut r1 = rng();
        let mut r2 = rng();
        let base = Key::random(IdPrefix::root(), &mut r1);
        let mut in_place = Key::random(IdPrefix::root(), &mut r2);
        let owned = base.next_version(&mut r1);
        in_place.refresh(&mut r2);
        assert_eq!(in_place, owned);
    }

    #[test]
    fn next_version_bumps_and_keeps_id() {
        let mut rng = rng();
        let k = Key::random(IdPrefix::root(), &mut rng);
        let k2 = k.next_version(&mut rng);
        assert_eq!(k2.id(), k.id());
        assert_eq!(k2.version(), 1);
        assert_ne!(k2.material(), k.material());
    }
}
