//! Key material, ChaCha20 key wrapping and rekey *encryptions* for the group
//! rekeying system (Zhang, Lam & Liu, ICDCS 2005, §2.4).
//!
//! The paper's rekey messages are sets of *encryptions* — new keys encrypted
//! under keys that (some) users already hold. This crate makes those objects
//! concrete and verifiable:
//!
//! * [`chacha`] — ChaCha20 (RFC 8439), implemented from the specification
//!   with the RFC test vectors.
//! * [`siphash`] — SipHash-2-4, the MAC for encrypt-then-MAC key wraps.
//! * [`KeyMaterial`] / [`Key`] — 256-bit keys carrying the paper's
//!   identification scheme (key ID = ID-tree node ID).
//! * [`Encryption`] — `{k'}_k` with [`Encryption::id`] equal to the ID of
//!   the *encrypting* key, exactly as §2.4 defines it.
//!
//! # Example: one rekey hop, end to end
//!
//! ```
//! use rand::SeedableRng;
//! use rekey_crypto::{Encryption, Key};
//! use rekey_id::{IdPrefix, IdSpec};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let spec = IdSpec::new(5, 256)?;
//! // An auxiliary key for ID subtree [3] and the current group key.
//! let aux = Key::random(IdPrefix::new(&spec, vec![3])?, &mut rng);
//! let group = Key::random(IdPrefix::root(), &mut rng);
//!
//! // The server rekeys the group and wraps the new group key under the aux key.
//! let new_group = group.next_version(&mut rng);
//! let enc = Encryption::seal(&aux, &new_group, &mut rng);
//!
//! // A user holding the aux key recovers the new group key.
//! assert_eq!(enc.open(&aux).unwrap(), new_group);
//! // Lemma 3: the encryption is needed by users whose ID starts with digit 3.
//! assert_eq!(enc.id(), aux.id());
//! # Ok::<(), rekey_id::IdError>(())
//! ```

pub mod chacha;
pub mod siphash;
pub mod wire;

mod data;
mod encryption;
mod key;
mod nonce;

pub use data::{OpenError, SealedData};
pub use encryption::{Encryption, UnwrapError};
pub use key::{Key, KeyMaterial};
pub use nonce::NonceSeq;
