//! Deterministic per-slot nonce derivation for batch sealing.
//!
//! The batch-rekey pipeline seals every encryption of an interval in
//! parallel, so nonces cannot be drawn from the (sequential, shared) key
//! RNG at seal time — the draw order would depend on thread scheduling.
//! [`NonceSeq`] decouples the two: one 256-bit seed is drawn *once* per
//! interval from the key RNG, and each seal job derives its nonce from
//! `(seed, slot)` with a ChaCha20 block, where `slot` is the job's fixed
//! position in the interval's flat job list. Identical seeds therefore
//! produce byte-identical nonces at any thread count, in any seal order.
//!
//! Uniqueness: within one interval the slots are distinct, and across
//! intervals the seeds are independent 256-bit draws, so `(encrypting
//! key, nonce)` pairs never repeat for keystream purposes — the same
//! guarantee fresh random nonces gave the serial path, with the same
//! 96-bit nonce width on the wire.

use rand::Rng;

use crate::chacha::{self, NONCE_LEN};

/// A deterministic sequence of 96-bit nonces, keyed by a per-batch seed.
///
/// ```
/// use rand::SeedableRng;
/// use rekey_crypto::NonceSeq;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let seq = NonceSeq::from_rng(&mut rng);
/// // Same slot ⇒ same nonce (any thread may derive it independently) …
/// assert_eq!(seq.nonce(42), seq.nonce(42));
/// // … different slots ⇒ different nonces.
/// assert_ne!(seq.nonce(0), seq.nonce(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonceSeq {
    seed: [u8; chacha::KEY_LEN],
}

impl NonceSeq {
    /// Draws a fresh 256-bit seed from `rng` — exactly one draw, so the
    /// serial reference oracle and the parallel pipeline consume the RNG
    /// identically.
    pub fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> NonceSeq {
        let mut seed = [0u8; chacha::KEY_LEN];
        rng.fill(&mut seed[..]);
        NonceSeq { seed }
    }

    /// Wraps an explicit seed (tests and fixed vectors).
    pub fn from_seed(seed: [u8; chacha::KEY_LEN]) -> NonceSeq {
        NonceSeq { seed }
    }

    /// The nonce for seal slot `slot`: the first [`NONCE_LEN`] bytes of
    /// the ChaCha20 block keyed by the seed at a slot-derived position.
    /// Pure — safe to call concurrently from any thread.
    pub fn nonce(&self, slot: u64) -> [u8; NONCE_LEN] {
        // Domain-separate from data encryption: the derivation nonce
        // carries a fixed tag plus the high slot bits, the block counter
        // the low bits, so every u64 slot maps to a distinct block.
        let mut derive = [0u8; NONCE_LEN];
        derive[..4].copy_from_slice(b"seq:");
        derive[4..].copy_from_slice(&(slot >> 32).to_le_bytes());
        let block = chacha::block(&self.seed, slot as u32, &derive);
        let mut out = [0u8; NONCE_LEN];
        out.copy_from_slice(&block[..NONCE_LEN]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed_and_slot() {
        let a = NonceSeq::from_seed([7; 32]);
        let b = NonceSeq::from_seed([7; 32]);
        assert_eq!(a.nonce(0), b.nonce(0));
        assert_eq!(a.nonce(u64::MAX), b.nonce(u64::MAX));
        let c = NonceSeq::from_seed([8; 32]);
        assert_ne!(a.nonce(0), c.nonce(0));
    }

    #[test]
    fn slots_beyond_u32_differ() {
        // Slots that collide in the low 32 bits must still derive
        // distinct nonces via the high bits in the derivation nonce.
        let seq = NonceSeq::from_seed([1; 32]);
        assert_ne!(seq.nonce(5), seq.nonce(5 + (1u64 << 32)));
    }

    #[test]
    fn rng_draw_is_one_fill() {
        // Two identically seeded RNGs: one feeds NonceSeq, the other does
        // a single 32-byte fill — afterwards both must be in the same
        // state (the draw-order contract the key tree relies on).
        let mut a = rand::rngs::StdRng::seed_from_u64(3);
        let mut b = rand::rngs::StdRng::seed_from_u64(3);
        let _ = NonceSeq::from_rng(&mut a);
        let mut skip = [0u8; 32];
        b.fill(&mut skip[..]);
        let (mut x, mut y) = ([0u8; 8], [0u8; 8]);
        a.fill(&mut x[..]);
        b.fill(&mut y[..]);
        assert_eq!(x, y);
    }
}
