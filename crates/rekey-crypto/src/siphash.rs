//! SipHash-2-4 (Aumasson & Bernstein), used as the MAC for key wraps.
//!
//! SipHash is a keyed pseudorandom function with a 128-bit key and 64-bit
//! output. We use it encrypt-then-MAC style so that corrupted or
//! wrongly-keyed unwraps are detected, which the end-to-end rekeying tests
//! rely on.

/// Size of a SipHash key in bytes.
pub const MAC_KEY_LEN: usize = 16;
/// Size of the produced tag in bytes.
pub const TAG_LEN: usize = 8;

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes the SipHash-2-4 tag of `data` under `key`.
pub fn siphash24(key: &[u8; MAC_KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
    let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }
    let rest = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rest.len()].copy_from_slice(rest);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= m;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    (v[0] ^ v[1] ^ v[2] ^ v[3]).to_le_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash paper (Appendix A): key
    /// 000102...0f, messages of increasing length 00, 0001, 000102, ...
    const VECTORS: [[u8; 8]; 8] = [
        [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
        [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
        [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
        [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
        [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf],
        [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18],
        [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb],
        [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab],
    ];

    #[test]
    fn paper_test_vectors() {
        let mut key = [0u8; MAC_KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        for (len, expected) in VECTORS.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(&siphash24(&key, &msg), expected, "length {len}");
        }
    }

    #[test]
    fn different_keys_give_different_tags() {
        let msg = b"rekey message";
        let a = siphash24(&[0u8; MAC_KEY_LEN], msg);
        let b = siphash24(&[1u8; MAC_KEY_LEN], msg);
        assert_ne!(a, b);
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [9u8; MAC_KEY_LEN];
        let base = siphash24(&key, b"hello world");
        assert_ne!(base, siphash24(&key, b"hello worle"));
        assert_ne!(base, siphash24(&key, b"hello worl"));
        assert_ne!(base, siphash24(&key, b"hello world "));
    }
}
