//! Wire encoding of rekey messages and sealed data.
//!
//! A real deployment sends encryptions and data payloads over UDP/TCP; this
//! module provides the (dependency-free) binary codec. The format is
//! little-endian and length-prefixed:
//!
//! ```text
//! IdPrefix    := len:u8, digits:[u16; len]
//! Encryption  := 0x01, enc_id:IdPrefix, enc_ver:u64,
//!                tgt_id:IdPrefix, tgt_ver:u64,
//!                nonce:[u8;12], ciphertext:[u8;32], tag:[u8;8]
//! SealedData  := 0x02, key_id:IdPrefix, key_ver:u64,
//!                nonce:[u8;12], len:u32, ciphertext:[u8;len], tag:[u8;8]
//! RekeyMessage:= 0x03, count:u32, Encryption*
//! ```

use std::fmt;

use rekey_id::{IdError, IdPrefix, IdSpec};

use crate::chacha::{KEY_LEN, NONCE_LEN};
use crate::data::SealedData;
use crate::encryption::Encryption;
use crate::key::{Key, KeyMaterial};
use crate::siphash::TAG_LEN;

const TAG_ENCRYPTION: u8 = 0x01;
const TAG_SEALED_DATA: u8 = 0x02;
const TAG_REKEY_MESSAGE: u8 = 0x03;

/// Errors produced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the structure was complete.
    Truncated,
    /// The leading type tag was not the expected one.
    WrongTag {
        /// Tag found in the input.
        found: u8,
        /// Tag the decoder expected.
        expected: u8,
    },
    /// An embedded ID failed validation against the [`IdSpec`].
    BadId(IdError),
    /// Trailing bytes remained after a complete structure.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::WrongTag { found, expected } => {
                write!(f, "wrong type tag {found:#04x}, expected {expected:#04x}")
            }
            DecodeError::BadId(e) => write!(f, "invalid embedded ID: {e}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after structure"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<IdError> for DecodeError {
    fn from(e: IdError) -> DecodeError {
        DecodeError::BadId(e)
    }
}

/// A bounds-checked cursor over wire bytes.
///
/// Every accessor returns [`DecodeError::Truncated`] instead of panicking
/// when the input runs short, so decoders built on it are total functions
/// over arbitrary byte strings. Higher layers (the runtime's `RtMsg`
/// codec) compose their decoders from the same reader this module uses.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the input is exhausted.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

/// Appends an [`IdPrefix`] (`len:u8, digits:[u16; len]`, little-endian).
pub fn encode_prefix(out: &mut Vec<u8>, p: &IdPrefix) {
    put_prefix(out, p);
}

/// Reads an [`IdPrefix`] written by [`encode_prefix`], validating it
/// against `spec`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] on short input, [`DecodeError::BadId`] when
/// the digits violate `spec`.
pub fn decode_prefix(r: &mut Reader<'_>, spec: &IdSpec) -> Result<IdPrefix, DecodeError> {
    get_prefix(r, spec)
}

fn put_prefix(out: &mut Vec<u8>, p: &IdPrefix) {
    out.push(p.len() as u8);
    for &d in p.digits() {
        out.extend_from_slice(&d.to_le_bytes());
    }
}

fn get_prefix(r: &mut Reader<'_>, spec: &IdSpec) -> Result<IdPrefix, DecodeError> {
    let len = usize::from(r.u8()?);
    let mut digits = Vec::with_capacity(len);
    for _ in 0..len {
        digits.push(r.u16()?);
    }
    Ok(IdPrefix::new(spec, digits)?)
}

fn expect_tag(r: &mut Reader<'_>, expected: u8) -> Result<(), DecodeError> {
    let found = r.u8()?;
    if found != expected {
        return Err(DecodeError::WrongTag { found, expected });
    }
    Ok(())
}

/// Encodes one encryption.
pub fn encode_encryption(e: &Encryption, out: &mut Vec<u8>) {
    out.push(TAG_ENCRYPTION);
    put_prefix(out, e.id());
    out.extend_from_slice(&e.encrypting_version().to_le_bytes());
    put_prefix(out, e.encrypted_id());
    out.extend_from_slice(&e.encrypted_version().to_le_bytes());
    let (nonce, ciphertext, tag) = e.wire_parts();
    out.extend_from_slice(nonce);
    out.extend_from_slice(ciphertext);
    out.extend_from_slice(tag);
}

fn decode_encryption_inner(r: &mut Reader<'_>, spec: &IdSpec) -> Result<Encryption, DecodeError> {
    expect_tag(r, TAG_ENCRYPTION)?;
    let enc_id = get_prefix(r, spec)?;
    let enc_ver = r.u64()?;
    let tgt_id = get_prefix(r, spec)?;
    let tgt_ver = r.u64()?;
    let nonce: [u8; NONCE_LEN] = r.take(NONCE_LEN)?.try_into().expect("nonce");
    let ciphertext: [u8; KEY_LEN] = r.take(KEY_LEN)?.try_into().expect("ciphertext");
    let tag: [u8; TAG_LEN] = r.take(TAG_LEN)?.try_into().expect("tag");
    Ok(Encryption::from_wire_parts(
        enc_id, enc_ver, tgt_id, tgt_ver, nonce, ciphertext, tag,
    ))
}

/// Decodes one encryption from a reader, leaving trailing bytes for the
/// caller (streaming variant of [`decode_encryption`]).
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_encryption_from(
    r: &mut Reader<'_>,
    spec: &IdSpec,
) -> Result<Encryption, DecodeError> {
    decode_encryption_inner(r, spec)
}

/// Decodes one encryption, requiring the whole input to be consumed.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_encryption(buf: &[u8], spec: &IdSpec) -> Result<Encryption, DecodeError> {
    let mut r = Reader::new(buf);
    let e = decode_encryption_inner(&mut r, spec)?;
    r.finish()?;
    Ok(e)
}

/// Encodes a whole rekey message (a sequence of encryptions).
pub fn encode_rekey_message(encryptions: &[Encryption]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + encryptions.len() * 80);
    out.push(TAG_REKEY_MESSAGE);
    out.extend_from_slice(&(encryptions.len() as u32).to_le_bytes());
    for e in encryptions {
        encode_encryption(e, &mut out);
    }
    out
}

/// Decodes a rekey message.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_rekey_message(buf: &[u8], spec: &IdSpec) -> Result<Vec<Encryption>, DecodeError> {
    let mut r = Reader::new(buf);
    expect_tag(&mut r, TAG_REKEY_MESSAGE)?;
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(decode_encryption_inner(&mut r, spec)?);
    }
    r.finish()?;
    Ok(out)
}

/// Encodes sealed data.
pub fn encode_sealed_data(d: &SealedData) -> Vec<u8> {
    let (key_id, key_version, nonce, ciphertext, tag) = d.wire_parts();
    let mut out = Vec::with_capacity(d.wire_size() + 1);
    out.push(TAG_SEALED_DATA);
    put_prefix(&mut out, key_id);
    out.extend_from_slice(&key_version.to_le_bytes());
    out.extend_from_slice(nonce);
    out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
    out.extend_from_slice(ciphertext);
    out.extend_from_slice(tag);
    out
}

/// Decodes sealed data.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_sealed_data(buf: &[u8], spec: &IdSpec) -> Result<SealedData, DecodeError> {
    let mut r = Reader::new(buf);
    expect_tag(&mut r, TAG_SEALED_DATA)?;
    let key_id = get_prefix(&mut r, spec)?;
    let key_version = r.u64()?;
    let nonce: [u8; NONCE_LEN] = r.take(NONCE_LEN)?.try_into().expect("nonce");
    let len = r.u32()? as usize;
    let ciphertext = r.take(len)?.to_vec();
    let tag: [u8; TAG_LEN] = r.take(TAG_LEN)?.try_into().expect("tag");
    r.finish()?;
    Ok(SealedData::from_wire_parts(
        key_id,
        key_version,
        nonce,
        ciphertext,
        tag,
    ))
}

/// Encodes a key (for the join-time unicast of path keys).
pub fn encode_key(k: &Key, out: &mut Vec<u8>) {
    put_prefix(out, k.id());
    out.extend_from_slice(&k.version().to_le_bytes());
    out.extend_from_slice(k.material().as_bytes());
}

/// Decodes a key from a reader, leaving trailing bytes for the caller
/// (streaming variant of [`decode_key`]).
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_key_from(r: &mut Reader<'_>, spec: &IdSpec) -> Result<Key, DecodeError> {
    let id = get_prefix(r, spec)?;
    let version = r.u64()?;
    let material: [u8; KEY_LEN] = r.take(KEY_LEN)?.try_into().expect("material");
    Ok(Key::new(id, version, KeyMaterial::from_bytes(material)))
}

/// Decodes a key.
///
/// # Errors
///
/// Any [`DecodeError`] on malformed input.
pub fn decode_key(buf: &[u8], spec: &IdSpec) -> Result<Key, DecodeError> {
    let mut r = Reader::new(buf);
    let key = decode_key_from(&mut r, spec)?;
    r.finish()?;
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixtures() -> (StdRng, IdSpec, Key, Key) {
        let mut rng = StdRng::seed_from_u64(55);
        let spec = IdSpec::new(4, 16).unwrap();
        let aux = Key::random(IdPrefix::new(&spec, vec![3, 1]).unwrap(), &mut rng);
        let group = Key::random(IdPrefix::root(), &mut rng);
        (rng, spec, aux, group)
    }

    #[test]
    fn encryption_round_trip() {
        let (mut rng, spec, aux, group) = fixtures();
        let e = Encryption::seal(&aux, &group.next_version(&mut rng), &mut rng);
        let mut buf = Vec::new();
        encode_encryption(&e, &mut buf);
        let back = decode_encryption(&buf, &spec).unwrap();
        assert_eq!(back, e);
        // The decoded wrap still opens.
        assert!(back.open(&aux).is_ok());
    }

    #[test]
    fn rekey_message_round_trip() {
        let (mut rng, spec, aux, group) = fixtures();
        let msg: Vec<Encryption> = (0..5)
            .map(|_| Encryption::seal(&aux, &group, &mut rng))
            .collect();
        let buf = encode_rekey_message(&msg);
        assert_eq!(decode_rekey_message(&buf, &spec).unwrap(), msg);
        assert_eq!(
            decode_rekey_message(&encode_rekey_message(&[]), &spec).unwrap(),
            vec![]
        );
    }

    #[test]
    fn sealed_data_round_trip() {
        let (mut rng, spec, _, group) = fixtures();
        let d = SealedData::seal(&group, b"hello group", &mut rng);
        let buf = encode_sealed_data(&d);
        let back = decode_sealed_data(&buf, &spec).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.open(&group).unwrap(), b"hello group");
    }

    #[test]
    fn key_round_trip() {
        let (_, spec, aux, _) = fixtures();
        let mut buf = Vec::new();
        encode_key(&aux, &mut buf);
        assert_eq!(decode_key(&buf, &spec).unwrap(), aux);
    }

    #[test]
    fn truncation_and_tags_are_rejected() {
        let (mut rng, spec, aux, group) = fixtures();
        let e = Encryption::seal(&aux, &group, &mut rng);
        let mut buf = Vec::new();
        encode_encryption(&e, &mut buf);
        assert_eq!(
            decode_encryption(&buf[..buf.len() - 1], &spec),
            Err(DecodeError::Truncated)
        );
        let mut wrong = buf.clone();
        wrong[0] = TAG_SEALED_DATA;
        assert!(matches!(
            decode_encryption(&wrong, &spec),
            Err(DecodeError::WrongTag { .. })
        ));
        let mut trailing = buf.clone();
        trailing.push(0);
        assert_eq!(
            decode_encryption(&trailing, &spec),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_ids_are_rejected() {
        let (mut rng, _, aux, group) = fixtures();
        // Encode under a 4×16 spec, decode under a 2×4 spec: the digit 3,1
        // prefix has an out-of-range digit... digit 3 < 4 but length fits;
        // use a spec where the base is too small instead.
        let tiny = IdSpec::new(4, 2).unwrap();
        let e = Encryption::seal(&aux, &group, &mut rng);
        let mut buf = Vec::new();
        encode_encryption(&e, &mut buf);
        assert!(matches!(
            decode_encryption(&buf, &tiny),
            Err(DecodeError::BadId(_))
        ));
    }

    #[test]
    fn wire_size_matches_encoding() {
        let (mut rng, _, _, group) = fixtures();
        let d = SealedData::seal(&group, &[0u8; 100], &mut rng);
        assert_eq!(encode_sealed_data(&d).len(), d.wire_size() + 1);
    }
}
