//! The steady-state seal loop allocates nothing: once an arena's slots
//! have been sealed into once, re-sealing them (the per-interval hot loop
//! of `ModifiedKeyTree::batch_rekey`) must not touch the heap. A counting
//! global allocator makes any regression — a `Vec` sneaking back into the
//! MAC input assembly, a derived `Clone` dropping the buffer-reusing
//! `clone_from` — an immediate test failure.
//!
//! Kept as a single `#[test]` so no sibling test can allocate concurrently
//! and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::SeedableRng;
use rekey_crypto::{Encryption, Key, NonceSeq};
use rekey_id::{IdPrefix, IdSpec};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_seal_loop_is_allocation_free() {
    const SLOTS: usize = 4096;
    let spec = IdSpec::PAPER;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA110C);

    // One keypair per slot, at u-node depth (the deepest IDs a real batch
    // wraps), plus a warmed slot pool — exactly the arena state after a
    // first interval.
    let keys: Vec<(Key, Key)> = (0..SLOTS)
        .map(|i| {
            let node = IdPrefix::root()
                .child((i % 16) as u16)
                .child((i / 16 % 16) as u16)
                .child((i / 256) as u16)
                .child((i % 7) as u16);
            let child = node.child((i % 13) as u16);
            debug_assert!(child.len() == spec.depth());
            (Key::random(node, &mut rng), Key::random(child, &mut rng))
        })
        .collect();
    let mut slots: Vec<Encryption> = (0..SLOTS).map(|_| Encryption::placeholder()).collect();
    let warm_seq = NonceSeq::from_rng(&mut rng);
    for (slot, (node, child)) in slots.iter_mut().zip(&keys) {
        slot.seal_into(child, node, warm_seq.nonce(0));
    }

    // Steady state: a fresh per-batch nonce seed, then re-seal every slot
    // — the exact loop body `seal_jobs` runs per interval.
    let seq = NonceSeq::from_rng(&mut rng);
    let before = allocations();
    for (i, (slot, (node, child))) in slots.iter_mut().zip(&keys).enumerate() {
        slot.seal_into(child, node, seq.nonce(i as u64));
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "re-sealing {SLOTS} warmed slots must not allocate"
    );

    // The loop did real work: every slot carries the new seed's nonces.
    assert!(slots
        .iter()
        .enumerate()
        .all(|(i, s)| *s.wire_parts().0 == seq.nonce(i as u64)));
}
