//! Property tests for the wire codec: every structure round-trips through
//! bytes, and the decoder never panics on arbitrary input.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_crypto::wire::{
    decode_encryption, decode_rekey_message, decode_sealed_data, encode_encryption,
    encode_rekey_message, encode_sealed_data,
};
use rekey_crypto::{Encryption, Key, SealedData};
use rekey_id::{IdPrefix, IdSpec};

fn spec() -> IdSpec {
    IdSpec::new(5, 256).unwrap()
}

fn key_from(digits: &[u16], version: u64, seed: u64) -> Key {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let prefix = IdPrefix::new(&spec(), digits.to_vec()).unwrap();
    let k = Key::random(prefix, &mut rng);
    let mut k = k;
    for _ in 0..version.min(4) {
        k = k.next_version(&mut rng);
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encryptions round-trip for arbitrary (valid) key identities.
    #[test]
    fn encryption_round_trips(
        enc_digits in vec(0u16..256, 0..5),
        tgt_digits in vec(0u16..256, 0..5),
        enc_ver in 0u64..4,
        tgt_ver in 0u64..4,
        seed in 0u64..1000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let wrap = key_from(&enc_digits, enc_ver, seed);
        let target = key_from(&tgt_digits, tgt_ver, seed ^ 1);
        let e = Encryption::seal(&wrap, &target, &mut rng);
        let mut buf = Vec::new();
        encode_encryption(&e, &mut buf);
        let back = decode_encryption(&buf, &spec()).unwrap();
        prop_assert_eq!(&back, &e);
        prop_assert_eq!(back.open(&wrap).unwrap(), target);
    }

    /// Rekey messages of any size round-trip.
    #[test]
    fn rekey_message_round_trips(sizes in vec(0u16..256, 0..20), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = key_from(&[], 0, seed);
        let msg: Vec<Encryption> = sizes
            .iter()
            .map(|&d| {
                let wrap = key_from(&[d], 0, seed.wrapping_add(u64::from(d)));
                Encryption::seal(&wrap, &group, &mut rng)
            })
            .collect();
        let buf = encode_rekey_message(&msg);
        prop_assert_eq!(decode_rekey_message(&buf, &spec()).unwrap(), msg);
    }

    /// Sealed data round-trips for arbitrary payloads.
    #[test]
    fn sealed_data_round_trips(payload in vec(any::<u8>(), 0..512), seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = key_from(&[], 2, seed);
        let sealed = SealedData::seal(&group, &payload, &mut rng);
        let buf = encode_sealed_data(&sealed);
        let back = decode_sealed_data(&buf, &spec()).unwrap();
        prop_assert_eq!(back.open(&group).unwrap(), payload);
    }

    /// The decoder is total: arbitrary bytes never panic, they error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..256)) {
        let s = spec();
        let _ = decode_encryption(&bytes, &s);
        let _ = decode_rekey_message(&bytes, &s);
        let _ = decode_sealed_data(&bytes, &s);
    }

    /// Any truncation of a valid encoding is rejected, never mis-decoded.
    #[test]
    fn truncations_are_rejected(cut in 0usize..100, seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let wrap = key_from(&[1, 2], 1, seed);
        let group = key_from(&[], 0, seed);
        let e = Encryption::seal(&wrap, &group, &mut rng);
        let mut buf = Vec::new();
        encode_encryption(&e, &mut buf);
        let cut = cut % buf.len();
        if cut < buf.len() {
            prop_assert!(decode_encryption(&buf[..cut], &spec()).is_err());
        }
    }
}
