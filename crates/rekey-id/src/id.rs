//! User IDs: strings of `D` digits of base `B`.

use std::fmt;

use crate::{IdPrefix, IdSpec};

/// Errors produced when constructing IDs or prefixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdError {
    /// The [`IdSpec`](crate::IdSpec) itself is degenerate.
    InvalidSpec {
        /// Requested number of digits.
        depth: usize,
        /// Requested digit base.
        base: u16,
    },
    /// A user ID must have exactly `expected` digits but `actual` were given.
    WrongLength {
        /// `IdSpec::depth()` of the target ID space.
        expected: usize,
        /// Number of digits supplied.
        actual: usize,
    },
    /// A prefix may have at most `max` digits but `actual` were given.
    PrefixTooLong {
        /// `IdSpec::depth()` of the target ID space.
        max: usize,
        /// Number of digits supplied.
        actual: usize,
    },
    /// A digit value was `>= base`.
    DigitOutOfRange {
        /// Index of the offending digit.
        index: usize,
        /// The offending value.
        digit: u16,
        /// The digit base `B`.
        base: u16,
    },
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IdError::InvalidSpec { depth, base } => {
                write!(f, "invalid ID spec: depth {depth}, base {base}")
            }
            IdError::WrongLength { expected, actual } => {
                write!(f, "user ID must have {expected} digits, got {actual}")
            }
            IdError::PrefixTooLong { max, actual } => {
                write!(f, "ID prefix may have at most {max} digits, got {actual}")
            }
            IdError::DigitOutOfRange { index, digit, base } => {
                write!(
                    f,
                    "digit {digit} at index {index} is out of range for base {base}"
                )
            }
        }
    }
}

impl std::error::Error for IdError {}

/// A user ID: exactly `D` digits of base `B` (paper §2.1).
///
/// Digits are counted from left to right; the leftmost digit is the 0th
/// digit, exactly as in the paper. The `Ord` implementation is
/// lexicographic, which coincides with the left-to-right order of leaves in
/// the ID tree.
///
/// ```
/// use rekey_id::{IdSpec, UserId};
/// let spec = IdSpec::new(3, 10)?;
/// let u = UserId::new(&spec, vec![2, 0, 1])?;
/// assert_eq!(u.digit(0), 2);
/// assert_eq!(u.prefix(2).digits(), &[2, 0]);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId {
    digits: Vec<u16>,
}

impl UserId {
    /// Creates a user ID from its digits.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::WrongLength`] if `digits.len() != spec.depth()`, or
    /// [`IdError::DigitOutOfRange`] if any digit is `>= spec.base()`.
    pub fn new(spec: &IdSpec, digits: Vec<u16>) -> Result<UserId, IdError> {
        if digits.len() != spec.depth() {
            return Err(IdError::WrongLength {
                expected: spec.depth(),
                actual: digits.len(),
            });
        }
        for (index, &digit) in digits.iter().enumerate() {
            if digit >= spec.base() {
                return Err(IdError::DigitOutOfRange {
                    index,
                    digit,
                    base: spec.base(),
                });
            }
        }
        Ok(UserId { digits })
    }

    /// Builds the `index`-th ID in lexicographic order, i.e. interprets
    /// `index` as a `depth`-digit base-`base` number. Useful for tests and
    /// workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `index >= spec.id_space()`.
    pub fn from_index(spec: &IdSpec, index: u64) -> UserId {
        assert!(index < spec.id_space(), "index {index} out of ID space");
        let mut digits = vec![0u16; spec.depth()];
        let mut rest = index;
        for slot in digits.iter_mut().rev() {
            *slot = (rest % u64::from(spec.base())) as u16;
            rest /= u64::from(spec.base());
        }
        UserId { digits }
    }

    /// The digits of this ID, leftmost (0th) first.
    pub fn digits(&self) -> &[u16] {
        &self.digits
    }

    /// The `i`-th digit (the paper's `u.ID[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= D`.
    pub fn digit(&self, i: usize) -> u16 {
        self.digits[i]
    }

    /// Number of digits `D`.
    pub fn depth(&self) -> usize {
        self.digits.len()
    }

    /// The first `len` digits as a prefix — the paper's `u.ID[0 : len-1]`.
    /// `prefix(0)` is the null prefix `[]`.
    ///
    /// # Panics
    ///
    /// Panics if `len > D`.
    pub fn prefix(&self, len: usize) -> IdPrefix {
        assert!(
            len <= self.digits.len(),
            "prefix length {len} exceeds ID depth"
        );
        IdPrefix::from_digits_unchecked(self.digits[..len].to_vec())
    }

    /// The full ID viewed as a (maximal) prefix — the leaf node of the ID
    /// tree whose ID equals this user ID.
    pub fn as_prefix(&self) -> IdPrefix {
        IdPrefix::from_digits_unchecked(self.digits.clone())
    }

    /// Length of the longest common prefix with `other`, in digits.
    ///
    /// ```
    /// use rekey_id::{IdSpec, UserId};
    /// let spec = IdSpec::new(4, 8)?;
    /// let a = UserId::new(&spec, vec![1, 2, 3, 4])?;
    /// let b = UserId::new(&spec, vec![1, 2, 7, 4])?;
    /// assert_eq!(a.common_prefix_len(&b), 2);
    /// # Ok::<(), rekey_id::IdError>(())
    /// ```
    pub fn common_prefix_len(&self, other: &UserId) -> usize {
        self.digits
            .iter()
            .zip(other.digits.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap()
    }

    #[test]
    fn new_validates_length_and_digits() {
        assert!(UserId::new(&spec(), vec![0, 1]).is_err());
        assert!(UserId::new(&spec(), vec![0, 1, 2, 3]).is_err());
        assert_eq!(
            UserId::new(&spec(), vec![0, 1, 4]),
            Err(IdError::DigitOutOfRange {
                index: 2,
                digit: 4,
                base: 4
            })
        );
        assert!(UserId::new(&spec(), vec![3, 3, 3]).is_ok());
    }

    #[test]
    fn from_index_round_trips_lexicographic_order() {
        let spec = spec();
        let all: Vec<UserId> = (0..spec.id_space())
            .map(|i| UserId::from_index(&spec, i))
            .collect();
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
        assert_eq!(all[0].digits(), &[0, 0, 0]);
        assert_eq!(all[63].digits(), &[3, 3, 3]);
        assert_eq!(all[7].digits(), &[0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of ID space")]
    fn from_index_panics_out_of_space() {
        let _ = UserId::from_index(&spec(), 64);
    }

    #[test]
    fn display_matches_paper_notation() {
        let u = UserId::new(&spec(), vec![2, 0, 1]).unwrap();
        assert_eq!(u.to_string(), "[2,0,1]");
    }

    #[test]
    fn common_prefix_len_is_symmetric() {
        let a = UserId::new(&spec(), vec![2, 0, 1]).unwrap();
        let b = UserId::new(&spec(), vec![2, 0, 3]).unwrap();
        assert_eq!(a.common_prefix_len(&b), 2);
        assert_eq!(b.common_prefix_len(&a), 2);
        assert_eq!(a.common_prefix_len(&a), 3);
    }

    #[test]
    fn error_display_is_informative() {
        let err = UserId::new(&spec(), vec![0, 9, 0]).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
