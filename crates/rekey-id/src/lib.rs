//! User IDs, ID prefixes and the conceptual *ID tree* of the T-mesh group
//! rekeying system (Zhang, Lam & Liu, ICDCS 2005, §2.1).
//!
//! Every user in a secure group is assigned a unique ID that is a string of
//! `D` digits of base `B` (the paper uses `D = 5`, `B = 256`). All user IDs
//! and their prefixes are organised into a conceptual tree, the **ID tree**
//! (Definition 1): the root is the null prefix `[]`, a node with ID `v`
//! exists at level `i` iff some user's ID has `v` as a prefix, and its parent
//! is the length-`i−1` prefix of `v`.
//!
//! The same identification scheme is reused throughout the system:
//!
//! * neighbor-table entries are indexed by `(i, j)`-ID subtrees
//!   ([`IdPrefix::child`] of a user's level-`i` prefix),
//! * keys in the modified key tree are identified by the ID of their ID-tree
//!   node, and
//! * encryptions are identified by the ID of the *encrypting* key, so that a
//!   user needs an encryption iff the encryption's ID is a prefix of the
//!   user's ID (Lemma 3).
//!
//! # Indexing convention
//!
//! The paper writes `u.ID[0 : i]` for the first `i + 1` digits of `u.ID`.
//! This crate uses Rust-style half-open lengths instead: `u.prefix(len)`
//! returns the first `len` digits, so the paper's `u.ID[0 : i]` is
//! `u.prefix(i + 1)` and the paper's "null string if `i < 0`" is
//! `u.prefix(0)`.
//!
//! # Example
//!
//! ```
//! use rekey_id::{IdSpec, UserId};
//!
//! let spec = IdSpec::new(5, 256)?;
//! let u = UserId::new(&spec, vec![0, 1, 2, 3, 4])?;
//! assert_eq!(u.digit(0), 0);
//! assert!(u.prefix(2).is_prefix_of_id(&u));
//! assert_eq!(u.to_string(), "[0,1,2,3,4]");
//! # Ok::<(), rekey_id::IdError>(())
//! ```

mod id;
mod prefix;
mod tree;

pub use id::{IdError, UserId};
pub use prefix::{subtree_cmp, IdPrefix};
pub use tree::{IdTree, IdTreeNode};

/// The shape of the ID space: `depth` digits (the paper's `D`) of base
/// `base` (the paper's `B`).
///
/// The paper's simulations use `D = 5` and `B = 256`; that configuration is
/// available as [`IdSpec::PAPER`].
///
/// ```
/// use rekey_id::IdSpec;
/// let spec = IdSpec::PAPER;
/// assert_eq!((spec.depth(), spec.base()), (5, 256));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdSpec {
    depth: usize,
    base: u16,
}

impl IdSpec {
    /// The configuration used in the paper's simulations: `D = 5`, `B = 256`.
    pub const PAPER: IdSpec = IdSpec {
        depth: 5,
        base: 256,
    };

    /// Creates a new ID-space specification.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::InvalidSpec`] if `depth == 0` or `base < 2`.
    pub fn new(depth: usize, base: u16) -> Result<IdSpec, IdError> {
        if depth == 0 || base < 2 {
            return Err(IdError::InvalidSpec { depth, base });
        }
        Ok(IdSpec { depth, base })
    }

    /// Number of digits `D` in every user ID.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Base `B` of each digit; digits range over `0..base`.
    pub fn base(&self) -> u16 {
        self.base
    }

    /// Total number of distinct user IDs, saturating at `u64::MAX`.
    ///
    /// ```
    /// use rekey_id::IdSpec;
    /// assert_eq!(IdSpec::new(3, 4)?.id_space(), 64);
    /// # Ok::<(), rekey_id::IdError>(())
    /// ```
    pub fn id_space(&self) -> u64 {
        let mut acc: u64 = 1;
        for _ in 0..self.depth {
            acc = acc.saturating_mul(u64::from(self.base));
        }
        acc
    }
}

impl Default for IdSpec {
    fn default() -> Self {
        IdSpec::PAPER
    }
}

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn paper_spec_is_5_by_256() {
        assert_eq!(IdSpec::PAPER.depth(), 5);
        assert_eq!(IdSpec::PAPER.base(), 256);
        assert_eq!(IdSpec::default(), IdSpec::PAPER);
    }

    #[test]
    fn rejects_degenerate_specs() {
        assert!(IdSpec::new(0, 4).is_err());
        assert!(IdSpec::new(3, 0).is_err());
        assert!(IdSpec::new(3, 1).is_err());
        assert!(IdSpec::new(1, 2).is_ok());
    }

    #[test]
    fn id_space_saturates() {
        assert_eq!(IdSpec::new(2, 16).unwrap().id_space(), 256);
        assert_eq!(IdSpec::new(64, 256).unwrap().id_space(), u64::MAX);
    }
}
