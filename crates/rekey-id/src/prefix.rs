//! ID prefixes: the node IDs of the conceptual ID tree.

use std::fmt;

use crate::{IdError, IdSpec, UserId};

/// The ID of a node in the ID tree: a string of `0..=D` digits.
///
/// * The empty prefix `[]` is the ID of the ID-tree root (and of the key
///   server, and of the group key in the modified key tree).
/// * A length-`l` prefix names a level-`l` ID subtree.
/// * A length-`D` prefix names a leaf, i.e. a user.
///
/// Per the paper, "an ID is a prefix of itself, and a null string is a prefix
/// of any ID".
///
/// ```
/// use rekey_id::{IdPrefix, IdSpec, UserId};
/// let spec = IdSpec::new(3, 10)?;
/// let u = UserId::new(&spec, vec![2, 0, 1])?;
/// let p = IdPrefix::new(&spec, vec![2, 0])?;
/// assert!(p.is_prefix_of_id(&u));
/// assert!(IdPrefix::root().is_prefix_of(&p));
/// assert_eq!(p.child(1).digits(), &[2, 0, 1]);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdPrefix {
    digits: Vec<u16>,
}

impl IdPrefix {
    /// The null prefix `[]`: ID of the ID-tree root, the key server, and the
    /// group key.
    pub fn root() -> IdPrefix {
        IdPrefix { digits: Vec::new() }
    }

    /// Creates a prefix from digits, validating against `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::PrefixTooLong`] if more than `D` digits are given,
    /// or [`IdError::DigitOutOfRange`] for digits `>= B`.
    pub fn new(spec: &IdSpec, digits: Vec<u16>) -> Result<IdPrefix, IdError> {
        if digits.len() > spec.depth() {
            return Err(IdError::PrefixTooLong { max: spec.depth(), actual: digits.len() });
        }
        for (index, &digit) in digits.iter().enumerate() {
            if digit >= spec.base() {
                return Err(IdError::DigitOutOfRange { index, digit, base: spec.base() });
            }
        }
        Ok(IdPrefix { digits })
    }

    pub(crate) fn from_digits_unchecked(digits: Vec<u16>) -> IdPrefix {
        IdPrefix { digits }
    }

    /// The digits of this prefix.
    pub fn digits(&self) -> &[u16] {
        &self.digits
    }

    /// Number of digits; equals the ID-tree level of the node this prefix
    /// names.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// `true` iff this is the null prefix `[]`.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The last digit, if any.
    pub fn last_digit(&self) -> Option<u16> {
        self.digits.last().copied()
    }

    /// The parent node's ID (one digit shorter), or `None` for the root.
    pub fn parent(&self) -> Option<IdPrefix> {
        if self.digits.is_empty() {
            None
        } else {
            Some(IdPrefix { digits: self.digits[..self.digits.len() - 1].to_vec() })
        }
    }

    /// The ID of the child obtained by appending `digit`.
    ///
    /// If this prefix is a user's level-`i` prefix, `child(j)` is the ID of
    /// the user's `(i, j)`-ID subtree (Definition 2).
    pub fn child(&self, digit: u16) -> IdPrefix {
        let mut digits = self.digits.clone();
        digits.push(digit);
        IdPrefix { digits }
    }

    /// The first `len` digits of this prefix.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn truncate(&self, len: usize) -> IdPrefix {
        assert!(len <= self.digits.len(), "truncate length exceeds prefix length");
        IdPrefix { digits: self.digits[..len].to_vec() }
    }

    /// `true` iff `self` is a prefix of `other` (including `self == other`).
    pub fn is_prefix_of(&self, other: &IdPrefix) -> bool {
        other.digits.len() >= self.digits.len()
            && other.digits[..self.digits.len()] == self.digits[..]
    }

    /// `true` iff `self` is a prefix of the user ID `id`.
    pub fn is_prefix_of_id(&self, id: &UserId) -> bool {
        id.digits().len() >= self.digits.len()
            && id.digits()[..self.digits.len()] == self.digits[..]
    }

    /// `true` iff one of `self`, `other` is a prefix of the other.
    ///
    /// This is exactly the condition of the `REKEY-MESSAGE-SPLIT` routine
    /// (Fig. 5) and Theorem 2: an encryption `e` is relevant to the subtree
    /// rooted at prefix `p` iff `e.id().is_related(p)`.
    pub fn is_related(&self, other: &IdPrefix) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Converts a full-length prefix back into a [`UserId`].
    ///
    /// Returns `None` if this prefix is shorter than `spec.depth()`.
    pub fn to_user_id(&self, spec: &IdSpec) -> Option<UserId> {
        if self.digits.len() == spec.depth() {
            UserId::new(spec, self.digits.clone()).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for IdPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<UserId> for IdPrefix {
    fn from(id: UserId) -> IdPrefix {
        IdPrefix { digits: id.digits().to_vec() }
    }
}

impl From<&UserId> for IdPrefix {
    fn from(id: &UserId) -> IdPrefix {
        IdPrefix { digits: id.digits().to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap()
    }

    #[test]
    fn root_is_empty_and_prefix_of_everything() {
        let root = IdPrefix::root();
        assert!(root.is_empty());
        assert_eq!(root.len(), 0);
        assert_eq!(root.to_string(), "[]");
        let p = IdPrefix::new(&spec(), vec![3, 2]).unwrap();
        assert!(root.is_prefix_of(&p));
        assert!(!p.is_prefix_of(&root));
        assert!(root.is_prefix_of(&root));
    }

    #[test]
    fn validation() {
        assert!(IdPrefix::new(&spec(), vec![0, 1, 2, 3]).is_err());
        assert!(IdPrefix::new(&spec(), vec![4]).is_err());
        assert!(IdPrefix::new(&spec(), vec![]).is_ok());
        assert!(IdPrefix::new(&spec(), vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn parent_child_round_trip() {
        let p = IdPrefix::new(&spec(), vec![1, 2]).unwrap();
        assert_eq!(p.child(3).parent(), Some(p.clone()));
        assert_eq!(p.parent().unwrap().digits(), &[1]);
        assert_eq!(IdPrefix::root().parent(), None);
        assert_eq!(p.last_digit(), Some(2));
        assert_eq!(IdPrefix::root().last_digit(), None);
    }

    #[test]
    fn prefix_relations() {
        let a = IdPrefix::new(&spec(), vec![1]).unwrap();
        let b = IdPrefix::new(&spec(), vec![1, 2]).unwrap();
        let c = IdPrefix::new(&spec(), vec![2]).unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_related(&b));
        assert!(b.is_related(&a));
        assert!(!a.is_related(&c));
        assert!(a.is_related(&a));
    }

    #[test]
    fn id_conversions() {
        let s = spec();
        let u = UserId::new(&s, vec![1, 2, 3]).unwrap();
        let p: IdPrefix = (&u).into();
        assert_eq!(p.to_user_id(&s), Some(u.clone()));
        assert_eq!(u.prefix(1).to_user_id(&s), None);
        assert!(u.prefix(0).is_prefix_of_id(&u));
        assert!(u.prefix(3).is_prefix_of_id(&u));
        assert!(!p.child(0).is_prefix_of_id(&u));
    }

    #[test]
    fn truncate_takes_leading_digits() {
        let p = IdPrefix::new(&spec(), vec![3, 1, 2]).unwrap();
        assert_eq!(p.truncate(0), IdPrefix::root());
        assert_eq!(p.truncate(2).digits(), &[3, 1]);
        assert_eq!(p.truncate(3), p);
    }
}
