//! ID prefixes: the node IDs of the conceptual ID tree.

use std::fmt;

use crate::{IdError, IdSpec, UserId};

/// The ID of a node in the ID tree: a string of `0..=D` digits.
///
/// * The empty prefix `[]` is the ID of the ID-tree root (and of the key
///   server, and of the group key in the modified key tree).
/// * A length-`l` prefix names a level-`l` ID subtree.
/// * A length-`D` prefix names a leaf, i.e. a user.
///
/// Per the paper, "an ID is a prefix of itself, and a null string is a prefix
/// of any ID".
///
/// ```
/// use rekey_id::{IdPrefix, IdSpec, UserId};
/// let spec = IdSpec::new(3, 10)?;
/// let u = UserId::new(&spec, vec![2, 0, 1])?;
/// let p = IdPrefix::new(&spec, vec![2, 0])?;
/// assert!(p.is_prefix_of_id(&u));
/// assert!(IdPrefix::root().is_prefix_of(&p));
/// assert_eq!(p.child(1).digits(), &[2, 0, 1]);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdPrefix {
    digits: Vec<u16>,
}

/// `Clone` is implemented by hand so that [`Clone::clone_from`] reuses the
/// destination's digit buffer instead of allocating a fresh one — the
/// property the allocation-free rekey seal loop
/// (`rekey_crypto::Encryption::seal_into`) relies on when overwriting
/// arena slots in place.
impl Clone for IdPrefix {
    fn clone(&self) -> IdPrefix {
        IdPrefix {
            digits: self.digits.clone(),
        }
    }

    fn clone_from(&mut self, source: &IdPrefix) {
        self.digits.clone_from(&source.digits);
    }
}

impl IdPrefix {
    /// The null prefix `[]`: ID of the ID-tree root, the key server, and the
    /// group key.
    pub fn root() -> IdPrefix {
        IdPrefix { digits: Vec::new() }
    }

    /// Creates a prefix from digits, validating against `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::PrefixTooLong`] if more than `D` digits are given,
    /// or [`IdError::DigitOutOfRange`] for digits `>= B`.
    pub fn new(spec: &IdSpec, digits: Vec<u16>) -> Result<IdPrefix, IdError> {
        if digits.len() > spec.depth() {
            return Err(IdError::PrefixTooLong {
                max: spec.depth(),
                actual: digits.len(),
            });
        }
        for (index, &digit) in digits.iter().enumerate() {
            if digit >= spec.base() {
                return Err(IdError::DigitOutOfRange {
                    index,
                    digit,
                    base: spec.base(),
                });
            }
        }
        Ok(IdPrefix { digits })
    }

    pub(crate) fn from_digits_unchecked(digits: Vec<u16>) -> IdPrefix {
        IdPrefix { digits }
    }

    /// The digits of this prefix.
    pub fn digits(&self) -> &[u16] {
        &self.digits
    }

    /// Number of digits; equals the ID-tree level of the node this prefix
    /// names.
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// `true` iff this is the null prefix `[]`.
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The last digit, if any.
    pub fn last_digit(&self) -> Option<u16> {
        self.digits.last().copied()
    }

    /// The parent node's ID (one digit shorter), or `None` for the root.
    pub fn parent(&self) -> Option<IdPrefix> {
        if self.digits.is_empty() {
            None
        } else {
            Some(IdPrefix {
                digits: self.digits[..self.digits.len() - 1].to_vec(),
            })
        }
    }

    /// The ID of the child obtained by appending `digit`.
    ///
    /// If this prefix is a user's level-`i` prefix, `child(j)` is the ID of
    /// the user's `(i, j)`-ID subtree (Definition 2).
    pub fn child(&self, digit: u16) -> IdPrefix {
        let mut digits = self.digits.clone();
        digits.push(digit);
        IdPrefix { digits }
    }

    /// The first `len` digits of this prefix.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn truncate(&self, len: usize) -> IdPrefix {
        assert!(
            len <= self.digits.len(),
            "truncate length exceeds prefix length"
        );
        IdPrefix {
            digits: self.digits[..len].to_vec(),
        }
    }

    /// `true` iff `self` is a prefix of `other` (including `self == other`).
    pub fn is_prefix_of(&self, other: &IdPrefix) -> bool {
        other.digits.len() >= self.digits.len()
            && other.digits[..self.digits.len()] == self.digits[..]
    }

    /// `true` iff `self` is a prefix of the user ID `id`.
    pub fn is_prefix_of_id(&self, id: &UserId) -> bool {
        id.digits().len() >= self.digits.len()
            && id.digits()[..self.digits.len()] == self.digits[..]
    }

    /// `true` iff one of `self`, `other` is a prefix of the other.
    ///
    /// This is exactly the condition of the `REKEY-MESSAGE-SPLIT` routine
    /// (Fig. 5) and Theorem 2: an encryption `e` is relevant to the subtree
    /// rooted at prefix `p` iff `e.id().is_related(p)`.
    pub fn is_related(&self, other: &IdPrefix) -> bool {
        self.is_prefix_of(other) || other.is_prefix_of(self)
    }

    /// Locates `digits` relative to this prefix's *descendant block* in
    /// lexicographic digit order.
    ///
    /// When ID strings are sorted lexicographically, the descendants of a
    /// prefix `p` (including `p` itself) form one contiguous run. This
    /// comparator drives binary search for that run:
    ///
    /// * `Less` — `digits` sorts before every descendant of `self`
    ///   (this includes every *proper ancestor* of `self`, since a shorter
    ///   prefix sorts before its extensions);
    /// * `Equal` — `self` is a prefix of `digits` (a descendant);
    /// * `Greater` — `digits` sorts after every descendant of `self`.
    ///
    /// Together with the ancestor chain from [`IdPrefix::ancestors`], this
    /// decomposes Theorem 2's relatedness predicate
    /// ([`IdPrefix::is_related`]) into one contiguous range plus at most
    /// `D` exact matches — the basis of the transport layer's prefix-range
    /// split index.
    ///
    /// ```
    /// use std::cmp::Ordering;
    /// use rekey_id::{IdPrefix, IdSpec};
    /// let spec = IdSpec::new(3, 10)?;
    /// let p = IdPrefix::new(&spec, vec![2, 0])?;
    /// assert_eq!(p.subtree_cmp(&[1, 9, 9]), Ordering::Less);
    /// assert_eq!(p.subtree_cmp(&[2]), Ordering::Less); // proper ancestor
    /// assert_eq!(p.subtree_cmp(&[2, 0]), Ordering::Equal);
    /// assert_eq!(p.subtree_cmp(&[2, 0, 7]), Ordering::Equal);
    /// assert_eq!(p.subtree_cmp(&[2, 1]), Ordering::Greater);
    /// # Ok::<(), rekey_id::IdError>(())
    /// ```
    pub fn subtree_cmp(&self, digits: &[u16]) -> std::cmp::Ordering {
        subtree_cmp(&self.digits, digits)
    }

    /// The proper ancestors of this prefix, root first: `[]`, the length-1
    /// prefix, …, up to (excluding) `self`.
    ///
    /// ```
    /// use rekey_id::{IdPrefix, IdSpec};
    /// let spec = IdSpec::new(3, 10)?;
    /// let p = IdPrefix::new(&spec, vec![2, 0])?;
    /// let chain: Vec<IdPrefix> = p.ancestors().collect();
    /// assert_eq!(chain.len(), 2);
    /// assert!(chain[0].is_empty());
    /// assert_eq!(chain[1].digits(), &[2]);
    /// # Ok::<(), rekey_id::IdError>(())
    /// ```
    pub fn ancestors(&self) -> impl Iterator<Item = IdPrefix> + '_ {
        (0..self.digits.len()).map(move |len| IdPrefix {
            digits: self.digits[..len].to_vec(),
        })
    }

    /// Converts a full-length prefix back into a [`UserId`].
    ///
    /// Returns `None` if this prefix is shorter than `spec.depth()`.
    pub fn to_user_id(&self, spec: &IdSpec) -> Option<UserId> {
        if self.digits.len() == spec.depth() {
            UserId::new(spec, self.digits.clone()).ok()
        } else {
            None
        }
    }
}

/// Slice-level form of [`IdPrefix::subtree_cmp`], for callers that index
/// raw digit strings without materialising an `IdPrefix` per comparison
/// (the transport layer's split index binary-searches with this).
pub fn subtree_cmp(prefix: &[u16], digits: &[u16]) -> std::cmp::Ordering {
    let shared = prefix.len().min(digits.len());
    match digits[..shared].cmp(&prefix[..shared]) {
        std::cmp::Ordering::Equal => {
            if digits.len() >= prefix.len() {
                std::cmp::Ordering::Equal
            } else {
                std::cmp::Ordering::Less
            }
        }
        unequal => unequal,
    }
}

impl fmt::Display for IdPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<UserId> for IdPrefix {
    fn from(id: UserId) -> IdPrefix {
        IdPrefix {
            digits: id.digits().to_vec(),
        }
    }
}

impl From<&UserId> for IdPrefix {
    fn from(id: &UserId) -> IdPrefix {
        IdPrefix {
            digits: id.digits().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap()
    }

    #[test]
    fn root_is_empty_and_prefix_of_everything() {
        let root = IdPrefix::root();
        assert!(root.is_empty());
        assert_eq!(root.len(), 0);
        assert_eq!(root.to_string(), "[]");
        let p = IdPrefix::new(&spec(), vec![3, 2]).unwrap();
        assert!(root.is_prefix_of(&p));
        assert!(!p.is_prefix_of(&root));
        assert!(root.is_prefix_of(&root));
    }

    #[test]
    fn validation() {
        assert!(IdPrefix::new(&spec(), vec![0, 1, 2, 3]).is_err());
        assert!(IdPrefix::new(&spec(), vec![4]).is_err());
        assert!(IdPrefix::new(&spec(), vec![]).is_ok());
        assert!(IdPrefix::new(&spec(), vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn parent_child_round_trip() {
        let p = IdPrefix::new(&spec(), vec![1, 2]).unwrap();
        assert_eq!(p.child(3).parent(), Some(p.clone()));
        assert_eq!(p.parent().unwrap().digits(), &[1]);
        assert_eq!(IdPrefix::root().parent(), None);
        assert_eq!(p.last_digit(), Some(2));
        assert_eq!(IdPrefix::root().last_digit(), None);
    }

    #[test]
    fn prefix_relations() {
        let a = IdPrefix::new(&spec(), vec![1]).unwrap();
        let b = IdPrefix::new(&spec(), vec![1, 2]).unwrap();
        let c = IdPrefix::new(&spec(), vec![2]).unwrap();
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_related(&b));
        assert!(b.is_related(&a));
        assert!(!a.is_related(&c));
        assert!(a.is_related(&a));
    }

    #[test]
    fn id_conversions() {
        let s = spec();
        let u = UserId::new(&s, vec![1, 2, 3]).unwrap();
        let p: IdPrefix = (&u).into();
        assert_eq!(p.to_user_id(&s), Some(u.clone()));
        assert_eq!(u.prefix(1).to_user_id(&s), None);
        assert!(u.prefix(0).is_prefix_of_id(&u));
        assert!(u.prefix(3).is_prefix_of_id(&u));
        assert!(!p.child(0).is_prefix_of_id(&u));
    }

    #[test]
    fn subtree_cmp_matches_is_related_partition() {
        use std::cmp::Ordering;
        let s = spec();
        // Exhaustive over all prefixes of a small spec: subtree_cmp(x) is
        // Equal iff self is a prefix of x; and sorting by digits makes the
        // Equal class contiguous.
        let mut all: Vec<IdPrefix> = Vec::new();
        for len in 0..=s.depth() {
            let mut stack = vec![Vec::new()];
            for _ in 0..len {
                let mut next = Vec::new();
                for d in &stack {
                    for digit in 0..s.base() {
                        let mut e = d.clone();
                        e.push(digit);
                        next.push(e);
                    }
                }
                stack = next;
            }
            all.extend(stack.into_iter().map(|d| IdPrefix::new(&s, d).unwrap()));
        }
        all.sort();
        for p in &all {
            let classes: Vec<Ordering> = all.iter().map(|x| p.subtree_cmp(x.digits())).collect();
            for (x, class) in all.iter().zip(&classes) {
                assert_eq!(*class == Ordering::Equal, p.is_prefix_of(x), "{p} vs {x}");
            }
            // Contiguity: no Less after an Equal, no Equal after a Greater.
            let run: Vec<Ordering> = classes.clone();
            let first_eq = run.iter().position(|&c| c == Ordering::Equal);
            let last_eq = run.iter().rposition(|&c| c == Ordering::Equal);
            if let (Some(lo), Some(hi)) = (first_eq, last_eq) {
                assert!(run[lo..=hi].iter().all(|&c| c == Ordering::Equal), "{p}");
                assert!(run[..lo].iter().all(|&c| c == Ordering::Less), "{p}");
                assert!(run[hi + 1..].iter().all(|&c| c == Ordering::Greater), "{p}");
            }
        }
    }

    #[test]
    fn ancestors_yield_proper_prefix_chain() {
        let p = IdPrefix::new(&spec(), vec![1, 2, 3]).unwrap();
        let chain: Vec<IdPrefix> = p.ancestors().collect();
        assert_eq!(chain.len(), 3);
        assert!(chain[0].is_empty());
        assert_eq!(chain[1].digits(), &[1]);
        assert_eq!(chain[2].digits(), &[1, 2]);
        assert!(chain.iter().all(|a| a.is_prefix_of(&p) && a != &p));
        assert_eq!(IdPrefix::root().ancestors().count(), 0);
    }

    #[test]
    fn truncate_takes_leading_digits() {
        let p = IdPrefix::new(&spec(), vec![3, 1, 2]).unwrap();
        assert_eq!(p.truncate(0), IdPrefix::root());
        assert_eq!(p.truncate(2).digits(), &[3, 1]);
        assert_eq!(p.truncate(3), p);
    }
}
