//! The conceptual ID tree (Definition 1) materialised as a data structure.
//!
//! The paper stresses that "an ID tree is not a data structure maintained by
//! the key server or any user. It is defined as a conceptual structure to
//! guide us in protocol design." This module materialises it anyway because
//! the *simulator* and the *modified key tree* both need to reason about it
//! globally; protocol code never holds an `IdTree`.

use std::collections::{BTreeMap, BTreeSet};

use crate::{IdPrefix, IdSpec, UserId};

/// A node of the ID tree: the set of member users of the subtree it roots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdTreeNode {
    id: IdPrefix,
    children: BTreeSet<u16>,
    user_count: usize,
}

impl IdTreeNode {
    /// The node's ID (a prefix; its length is the node's level).
    pub fn id(&self) -> &IdPrefix {
        &self.id
    }

    /// The digits of existing child nodes, in increasing order.
    pub fn child_digits(&self) -> impl Iterator<Item = u16> + '_ {
        self.children.iter().copied()
    }

    /// Number of existing children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// Number of users belonging to the subtree rooted at this node.
    pub fn user_count(&self) -> usize {
        self.user_count
    }
}

/// The ID tree induced by a set of user IDs (Definition 1).
///
/// ```
/// use rekey_id::{IdSpec, IdTree, UserId, IdPrefix};
/// let spec = IdSpec::new(2, 4)?;
/// let users = [
///     UserId::new(&spec, vec![0, 0])?,
///     UserId::new(&spec, vec![0, 1])?,
///     UserId::new(&spec, vec![2, 0])?,
/// ];
/// let tree = IdTree::from_users(&spec, users.iter().cloned());
/// assert_eq!(tree.user_count(), 3);
/// let zero = IdPrefix::new(&spec, vec![0])?;
/// assert_eq!(tree.node(&zero).unwrap().user_count(), 2);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IdTree {
    spec: IdSpec,
    nodes: BTreeMap<IdPrefix, IdTreeNode>,
}

impl IdTree {
    /// Builds the ID tree for a group of users.
    pub fn from_users<I>(spec: &IdSpec, users: I) -> IdTree
    where
        I: IntoIterator<Item = UserId>,
    {
        let mut tree = IdTree {
            spec: *spec,
            nodes: BTreeMap::new(),
        };
        for user in users {
            tree.insert(&user);
        }
        tree
    }

    /// An empty ID tree (no users, no nodes — not even a root: per
    /// Definition 1 a node exists only if some user ID has it as a prefix).
    pub fn new(spec: &IdSpec) -> IdTree {
        IdTree {
            spec: *spec,
            nodes: BTreeMap::new(),
        }
    }

    /// The ID-space specification this tree was built for.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// Inserts a user, creating any missing nodes on its root path.
    /// Returns `true` if the user was not already present.
    pub fn insert(&mut self, user: &UserId) -> bool {
        debug_assert_eq!(user.depth(), self.spec.depth());
        if self.nodes.contains_key(&user.as_prefix()) {
            return false;
        }
        for level in 0..=self.spec.depth() {
            let id = user.prefix(level);
            let node = self.nodes.entry(id.clone()).or_insert_with(|| IdTreeNode {
                id: id.clone(),
                children: BTreeSet::new(),
                user_count: 0,
            });
            node.user_count += 1;
            if level < self.spec.depth() {
                node.children.insert(user.digit(level));
            }
        }
        true
    }

    /// Removes a user, pruning nodes that lose all descendants.
    /// Returns `true` if the user was present.
    pub fn remove(&mut self, user: &UserId) -> bool {
        if !self.nodes.contains_key(&user.as_prefix()) {
            return false;
        }
        for level in (0..=self.spec.depth()).rev() {
            let id = user.prefix(level);
            let prune = {
                let node = self.nodes.get_mut(&id).expect("root path node must exist");
                node.user_count -= 1;
                node.user_count == 0
            };
            if prune {
                self.nodes.remove(&id);
                if let Some(parent) = id.parent() {
                    if let Some(parent_node) = self.nodes.get_mut(&parent) {
                        parent_node
                            .children
                            .remove(&id.last_digit().expect("non-root"));
                    }
                }
            }
        }
        true
    }

    /// Looks up the node with the given ID, if it exists.
    pub fn node(&self, id: &IdPrefix) -> Option<&IdTreeNode> {
        self.nodes.get(id)
    }

    /// `true` iff a user with this exact ID is in the group.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.nodes.contains_key(&user.as_prefix())
    }

    /// Total number of users in the group.
    pub fn user_count(&self) -> usize {
        self.nodes
            .get(&IdPrefix::root())
            .map_or(0, |n| n.user_count)
    }

    /// Total number of ID-tree nodes (all levels, including leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all nodes in lexicographic (pre-order-compatible) order.
    pub fn iter(&self) -> impl Iterator<Item = &IdTreeNode> {
        self.nodes.values()
    }

    /// Iterates over the IDs of all users in the subtree rooted at `id`.
    pub fn users_in_subtree<'a>(&'a self, id: &'a IdPrefix) -> impl Iterator<Item = UserId> + 'a {
        let depth = self.spec.depth();
        let spec = self.spec;
        self.nodes
            .range(id.clone()..)
            .take_while(move |(k, _)| id.is_prefix_of(k))
            .filter(move |(k, _)| k.len() == depth)
            .filter_map(move |(k, _)| k.to_user_id(&spec))
    }

    /// Iterates over all user IDs in the group, in lexicographic order.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.users_in_subtree_root()
    }

    fn users_in_subtree_root(&self) -> impl Iterator<Item = UserId> + '_ {
        let depth = self.spec.depth();
        let spec = self.spec;
        self.nodes
            .iter()
            .filter(move |(k, _)| k.len() == depth)
            .filter_map(move |(k, _)| k.to_user_id(&spec))
    }

    /// The users belonging to user `u`'s `(i, j)`-ID subtree (Definition 2):
    /// the level-`(i+1)` subtree whose root is `u.prefix(i).child(j)`.
    ///
    /// Per Definition 2 this is only defined for `0 <= i < D`; the returned
    /// set is empty if the subtree has no members. Note that `u` itself
    /// belongs to its `(i, u.ID[i])`-ID subtree.
    pub fn ij_subtree_users(&self, u: &UserId, i: usize, j: u16) -> Vec<UserId> {
        let root = u.prefix(i).child(j);
        self.users_in_subtree(&root).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    /// The five-user example of Fig. 1 (digits renumbered to fit base 4):
    /// users [0,0], [0,1], [2,0], [2,1], [2,2].
    fn fig1_tree() -> (IdSpec, IdTree) {
        let s = spec();
        let users = [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
            .iter()
            .map(|d| UserId::new(&s, d.to_vec()).unwrap());
        (s, IdTree::from_users(&s, users))
    }

    #[test]
    fn fig1_structure() {
        let (s, tree) = fig1_tree();
        assert_eq!(tree.user_count(), 5);
        // Root + [0] + [2] + 5 leaves.
        assert_eq!(tree.node_count(), 8);
        let root = tree.node(&IdPrefix::root()).unwrap();
        assert_eq!(root.child_digits().collect::<Vec<_>>(), vec![0, 2]);
        let two = tree.node(&IdPrefix::new(&s, vec![2]).unwrap()).unwrap();
        assert_eq!(two.user_count(), 3);
        assert_eq!(two.child_count(), 3);
    }

    #[test]
    fn fig1_ij_subtrees() {
        // In Fig. 1, users u3, u4, u5 belong to u1's (0,2)-ID subtree, and
        // u2 belongs to u1's (1,1)-ID subtree.
        let (s, tree) = fig1_tree();
        let u1 = UserId::new(&s, vec![0, 0]).unwrap();
        let sub = tree.ij_subtree_users(&u1, 0, 2);
        assert_eq!(sub.len(), 3);
        assert!(sub.iter().all(|w| w.digit(0) == 2));
        let sub = tree.ij_subtree_users(&u1, 1, 1);
        assert_eq!(sub, vec![UserId::new(&s, vec![0, 1]).unwrap()]);
        // u1 belongs to its own (0,0)-ID subtree.
        let sub = tree.ij_subtree_users(&u1, 0, 0);
        assert!(sub.contains(&u1));
        // Empty subtree.
        assert!(tree.ij_subtree_users(&u1, 0, 1).is_empty());
    }

    #[test]
    fn insert_is_idempotent() {
        let (s, mut tree) = fig1_tree();
        let u = UserId::new(&s, vec![0, 0]).unwrap();
        assert!(!tree.insert(&u));
        assert_eq!(tree.user_count(), 5);
        let fresh = UserId::new(&s, vec![3, 3]).unwrap();
        assert!(tree.insert(&fresh));
        assert_eq!(tree.user_count(), 6);
    }

    #[test]
    fn remove_prunes_empty_branches() {
        let (s, mut tree) = fig1_tree();
        let u2 = UserId::new(&s, vec![0, 1]).unwrap();
        let u1 = UserId::new(&s, vec![0, 0]).unwrap();
        assert!(tree.remove(&u2));
        assert!(tree.node(&IdPrefix::new(&s, vec![0]).unwrap()).is_some());
        assert!(tree.remove(&u1));
        // Level-1 node [0] must now be pruned.
        assert!(tree.node(&IdPrefix::new(&s, vec![0]).unwrap()).is_none());
        assert_eq!(tree.user_count(), 3);
        assert!(!tree.remove(&u1), "double remove must be a no-op");
    }

    #[test]
    fn remove_all_leaves_empty_tree() {
        let (s, mut tree) = fig1_tree();
        for d in [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]] {
            assert!(tree.remove(&UserId::new(&s, d.to_vec()).unwrap()));
        }
        assert_eq!(tree.node_count(), 0);
        assert_eq!(tree.user_count(), 0);
    }

    #[test]
    fn users_iterates_in_lexicographic_order() {
        let (_, tree) = fig1_tree();
        let users: Vec<String> = tree.users().map(|u| u.to_string()).collect();
        assert_eq!(users, vec!["[0,0]", "[0,1]", "[2,0]", "[2,1]", "[2,2]"]);
    }

    #[test]
    fn users_in_subtree_respects_bounds() {
        let (s, tree) = fig1_tree();
        // Subtree [2] contains exactly three users; notably the range scan
        // must not leak into sibling [3] territory.
        let p = IdPrefix::new(&s, vec![2]).unwrap();
        assert_eq!(tree.users_in_subtree(&p).count(), 3);
        let p3 = IdPrefix::new(&s, vec![3]).unwrap();
        assert_eq!(tree.users_in_subtree(&p3).count(), 0);
    }
}
