//! DVMRP-style IP multicast — the `P_m` baseline of §4.3 (Table 2).
//!
//! The paper's IP-multicast rekey protocol "is based on the DVMRP multicast
//! routing algorithm": the message travels a shortest-path tree rooted at
//! the source's router, and every tree link carries exactly one copy. With
//! symmetric link delays (as in our substrates) DVMRP's reverse-path tree
//! coincides with the forward shortest-path tree, which is what we build.
//!
//! ```
//! use rekey_net::{HostId, RouterGraph, RoutedNetwork, RouterId};
//! use rekey_ipmc::source_tree;
//!
//! let mut g = RouterGraph::new();
//! let r = g.add_routers(3);
//! g.add_link(r[0], r[1], 10);
//! g.add_link(r[1], r[2], 20);
//! let net = RoutedNetwork::new(g, vec![r[0], r[1], r[2]]);
//! let tree = source_tree(&net, HostId(0), &[HostId(1), HostId(2)]);
//! assert_eq!(tree.delay(0), Some(10));
//! assert_eq!(tree.delay(1), Some(30));
//! assert_eq!(tree.links().len(), 2); // shared path counted once
//! ```

use std::collections::BTreeSet;

use rekey_net::{shortest_paths, HostId, LinkId, LinkLoad, Micros, RoutedNetwork};

/// A shortest-path multicast tree from one source host to a receiver set.
#[derive(Debug, Clone)]
pub struct SourceTree {
    delays: Vec<Option<Micros>>,
    links: Vec<LinkId>,
}

impl SourceTree {
    /// One-way delay from the source to the `i`-th receiver.
    pub fn delay(&self, receiver_index: usize) -> Option<Micros> {
        self.delays[receiver_index]
    }

    /// All physical links of the tree (each carries exactly one copy).
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Per-link load when a message of `units` units (e.g. encryptions)
    /// traverses the tree: `units` on every tree link.
    pub fn link_load(&self, link_count: usize, units: u64) -> LinkLoad {
        let mut load = LinkLoad::new(link_count);
        for &l in &self.links {
            load.add(l, units);
        }
        load
    }
}

/// Builds the shortest-path source tree from `source` to `receivers` over a
/// routed network.
///
/// Receivers whose routers are unreachable get `delay = None` and are not
/// spanned (cannot happen on connected topologies).
pub fn source_tree(net: &RoutedNetwork, source: HostId, receivers: &[HostId]) -> SourceTree {
    let sp = shortest_paths(net.graph(), net.attachment(source));
    let mut links: BTreeSet<LinkId> = BTreeSet::new();
    let mut delays = Vec::with_capacity(receivers.len());
    for &r in receivers {
        let router = net.attachment(r);
        delays.push(sp.distance(router));
        if let Some(path) = sp.path_links(router) {
            links.extend(path);
        }
    }
    SourceTree {
        delays,
        links: links.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rekey_net::gtitm::{generate, GtItmParams};
    use rekey_net::Network;

    fn network(n: usize, seed: u64) -> RoutedNetwork {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = generate(&GtItmParams::small(), &mut rng);
        RoutedNetwork::random_attachment(topo.into_graph(), n, &mut rng)
    }

    #[test]
    fn delays_match_unicast_shortest_paths() {
        let net = network(20, 1);
        let receivers: Vec<HostId> = (1..20).map(HostId).collect();
        let tree = source_tree(&net, HostId(0), &receivers);
        for (i, &r) in receivers.iter().enumerate() {
            assert_eq!(tree.delay(i), Some(net.one_way(HostId(0), r)));
        }
    }

    #[test]
    fn tree_links_form_a_subtree() {
        let net = network(30, 2);
        let receivers: Vec<HostId> = (1..30).map(HostId).collect();
        let tree = source_tree(&net, HostId(0), &receivers);
        // A tree on a connected graph has at most (routers - 1) links; and
        // every link appears once even when shared by many receivers.
        assert!(tree.links().len() < net.graph().router_count());
        let unique: BTreeSet<LinkId> = tree.links().iter().copied().collect();
        assert_eq!(unique.len(), tree.links().len());
    }

    #[test]
    fn link_load_is_units_per_tree_link() {
        let net = network(10, 3);
        let receivers: Vec<HostId> = (1..10).map(HostId).collect();
        let tree = source_tree(&net, HostId(0), &receivers);
        let load = tree.link_load(net.graph().link_count(), 37);
        assert_eq!(
            load.max(),
            37,
            "every tree link carries the full message once"
        );
        assert_eq!(load.total(), 37 * tree.links().len() as u64);
    }

    #[test]
    fn colocated_receiver_has_zero_delay_and_no_links() {
        let mut g = rekey_net::RouterGraph::new();
        let r = g.add_routers(2);
        g.add_link(r[0], r[1], 10);
        let net = RoutedNetwork::new(g, vec![r[0], r[0]]);
        let tree = source_tree(&net, HostId(0), &[HostId(1)]);
        assert_eq!(tree.delay(0), Some(0));
        assert!(tree.links().is_empty());
    }
}
