//! The caller-held [`RekeyArena`] and the borrowed [`RekeyBatch`] view —
//! the zero-copy surface of one batch-rekey interval.
//!
//! A [`ModifiedKeyTree::batch_rekey`] no longer returns owned `Vec`s: it
//! seals every encryption of the interval directly into slots of an arena
//! the *caller* owns and reuses across intervals, then hands back a
//! [`RekeyBatch`] that borrows the arena. Steady-state interval work
//! therefore performs **zero heap allocations in the seal loop** — once
//! the pools have grown to the working set, each interval overwrites the
//! same slots in place (see [`Encryption::seal_into`]).
//!
//! Callers that need to *keep* the encryptions past the interval (e.g.
//! the runtime's NACK-recovery history) call
//! [`RekeyBatch::take_encryptions`], which moves the pool out without
//! copying; the arena simply regrows on the next interval.
//!
//! [`ModifiedKeyTree::batch_rekey`]: crate::ModifiedKeyTree::batch_rekey
//! [`Encryption::seal_into`]: rekey_crypto::Encryption::seal_into

use std::fmt;

use rekey_crypto::Encryption;
use rekey_id::IdPrefix;

/// One pending key wrap of an interval: the new key of tree slot `node`
/// sealed under the (possibly also new) key of its child slot `child`.
/// Jobs are flattened in emit order so their index doubles as the
/// deterministic nonce slot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SealJob {
    pub(crate) node: u32,
    pub(crate) child: u32,
}

/// Reusable scratch owned by the caller of
/// [`batch_rekey`](crate::ModifiedKeyTree::batch_rekey): slot pools for
/// the interval's encryptions and updated IDs plus the flattened seal-job
/// list.
///
/// Create one per driver (server loop, bench, test) and pass `&mut` to
/// every `batch_rekey` call; the returned [`RekeyBatch`] borrows it. Slots
/// are overwritten in place each interval, so a warm arena makes the seal
/// loop allocation-free.
#[derive(Debug, Default)]
pub struct RekeyArena {
    /// Encryption slot pool; `[..sealed]` is the current batch.
    pub(crate) encryptions: Vec<Encryption>,
    pub(crate) sealed: usize,
    /// Updated-ID slot pool; `[..updated_len]` is the current batch.
    pub(crate) updated: Vec<IdPrefix>,
    pub(crate) updated_len: usize,
    /// Flattened seal jobs of the current batch, in emit order.
    pub(crate) jobs: Vec<SealJob>,
    /// Wall-clock nanoseconds the seal phase of the last batch took.
    pub(crate) seal_nanos: u64,
}

/// Cloning a value that embeds an arena (e.g. a server checkpoint) must
/// not duplicate a 64k-slot scratch pool, and the scratch never affects
/// outputs — so a clone is simply a fresh, empty arena.
impl Clone for RekeyArena {
    fn clone(&self) -> RekeyArena {
        RekeyArena::new()
    }
}

impl RekeyArena {
    /// Creates an empty arena; pools grow on first use.
    pub fn new() -> RekeyArena {
        RekeyArena::default()
    }

    /// Creates an arena with `encryptions` slots pre-grown, for drivers
    /// that know their interval size up front.
    pub fn with_capacity(encryptions: usize) -> RekeyArena {
        let mut arena = RekeyArena::new();
        arena.ensure_slots(encryptions);
        arena.sealed = 0;
        arena
    }

    /// Number of encryption slots currently pooled (grown high-water).
    pub fn capacity(&self) -> usize {
        self.encryptions.len()
    }

    /// Starts a new batch: empties the logical views without shrinking or
    /// freeing any pool.
    pub(crate) fn reset(&mut self) {
        self.sealed = 0;
        self.updated_len = 0;
        self.jobs.clear();
        self.seal_nanos = 0;
    }

    /// Grows the encryption pool to at least `n` slots and marks `[..n]`
    /// as the current batch. Existing slots are reused as-is (they will be
    /// overwritten by `seal_into`).
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        if self.encryptions.len() < n {
            self.encryptions.resize_with(n, Encryption::placeholder);
        }
        self.sealed = n;
    }

    /// Appends `id` to the updated list, reusing a pooled slot's digit
    /// buffer when one is available.
    pub(crate) fn push_updated(&mut self, id: &IdPrefix) {
        if self.updated_len < self.updated.len() {
            self.updated[self.updated_len].clone_from(id);
        } else {
            self.updated.push(id.clone());
        }
        self.updated_len += 1;
    }
}

/// The result of one batch-rekey interval, borrowing the caller's
/// [`RekeyArena`] — the accessor-based replacement for the old
/// `RekeyOutcome` with its bare `pub` `Vec` fields.
#[non_exhaustive]
pub struct RekeyBatch<'a> {
    arena: &'a mut RekeyArena,
}

impl<'a> RekeyBatch<'a> {
    pub(crate) fn new(arena: &'a mut RekeyArena) -> RekeyBatch<'a> {
        RekeyBatch { arena }
    }

    /// The paper's *rekey cost*: "the number of encryptions contained in a
    /// rekey message" (§4.2). This is the single source the
    /// `tree_encryptions` counter is derived from.
    pub fn cost(&self) -> usize {
        self.arena.sealed
    }

    /// `true` iff the interval changed nothing.
    pub fn is_empty(&self) -> bool {
        self.arena.sealed == 0 && self.arena.updated_len == 0
    }

    /// The rekey message: all generated encryptions, ordered by decreasing
    /// encrypting-key ID length so receivers can unwrap in a single pass.
    pub fn encryptions(&self) -> &[Encryption] {
        &self.arena.encryptions[..self.arena.sealed]
    }

    /// IDs of the k-nodes whose keys were changed, in ascending ID order.
    pub fn updated(&self) -> &[IdPrefix] {
        &self.arena.updated[..self.arena.updated_len]
    }

    /// Wall-clock nanoseconds the seal phase (key wrapping only, after key
    /// derivation) of this batch took — the quantity `bench_crypto`
    /// sweeps.
    pub fn seal_nanos(&self) -> u64 {
        self.arena.seal_nanos
    }

    /// Moves the sealed encryptions out of the arena without copying, for
    /// callers that must own them past the interval (message history,
    /// retransmission buffers). The arena's pool regrows on the next
    /// batch.
    pub fn take_encryptions(&mut self) -> Vec<Encryption> {
        let mut pool = std::mem::take(&mut self.arena.encryptions);
        pool.truncate(self.arena.sealed);
        self.arena.sealed = 0;
        pool
    }

    /// Moves the updated IDs out of the arena without copying; see
    /// [`RekeyBatch::take_encryptions`].
    pub fn take_updated(&mut self) -> Vec<IdPrefix> {
        let mut pool = std::mem::take(&mut self.arena.updated);
        pool.truncate(self.arena.updated_len);
        self.arena.updated_len = 0;
        pool
    }
}

impl fmt::Debug for RekeyBatch<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RekeyBatch")
            .field("cost", &self.cost())
            .field("updated", &self.updated())
            .finish_non_exhaustive()
    }
}

/// Batches are equal when their visible contents (encryptions and updated
/// IDs) are — the byte-identity relation the determinism tests assert.
impl PartialEq for RekeyBatch<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.encryptions() == other.encryptions() && self.updated() == other.updated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_clone_is_fresh() {
        let arena = RekeyArena::with_capacity(8);
        assert_eq!(arena.capacity(), 8);
        let copy = arena.clone();
        assert_eq!(copy.capacity(), 0, "clones start empty");
    }

    #[test]
    fn take_encryptions_resets_the_view() {
        let mut arena = RekeyArena::new();
        arena.ensure_slots(3);
        let mut batch = RekeyBatch::new(&mut arena);
        assert_eq!(batch.cost(), 3);
        let owned = batch.take_encryptions();
        assert_eq!(owned.len(), 3);
        assert_eq!(batch.cost(), 0);
        assert!(batch.encryptions().is_empty());
    }

    #[test]
    fn updated_slots_are_reused() {
        let mut arena = RekeyArena::new();
        let spec = rekey_id::IdSpec::new(2, 4).unwrap();
        let id = IdPrefix::new(&spec, vec![1]).unwrap();
        arena.push_updated(&id);
        arena.reset();
        assert_eq!(arena.updated.len(), 1, "pool survives reset");
        arena.push_updated(&IdPrefix::root());
        assert_eq!(arena.updated_len, 1);
        assert!(arena.updated[0].is_empty(), "slot overwritten in place");
    }
}
