//! The cluster rekeying heuristic (§4.2 and Appendix B).
//!
//! All users belonging to the same level-`(D−1)` ID subtree form a *bottom
//! cluster*; the member with the earliest joining time is its **leader**.
//! Only leaders have u-nodes in the (modified) key tree, so "a non-leader
//! user's join or leave does not incur group rekeying" — it only costs the
//! leader one pairwise-encrypted unicast of the group key per rekey
//! interval. A leader's join (first member of a new cluster) or leave
//! triggers ordinary group rekeying; on a leader's leave the
//! earliest-joined surviving member takes over.

use std::collections::BTreeMap;

use rand::Rng;
use rekey_id::{IdPrefix, IdSpec, UserId};

use crate::batch::{RekeyArena, RekeyBatch};
use crate::modified::{KeyTreeError, ModifiedKeyTree};

/// One bottom cluster: its members in joining order (the leader is the
/// front).
#[derive(Debug, Clone, Default)]
struct Cluster {
    /// `(join_seq, user)` pairs, kept sorted by `join_seq`.
    members: Vec<(u64, UserId)>,
}

impl Cluster {
    fn leader(&self) -> Option<&UserId> {
        self.members.first().map(|(_, u)| u)
    }

    fn contains(&self, user: &UserId) -> bool {
        self.members.iter().any(|(_, u)| u == user)
    }
}

/// The outcome of one rekey interval under the cluster heuristic,
/// borrowing the caller's [`RekeyArena`] like the [`RekeyBatch`] it wraps.
#[non_exhaustive]
#[derive(Debug, PartialEq)]
pub struct ClusterRekeyBatch<'a> {
    rekey: RekeyBatch<'a>,
    leader_unicasts: u64,
}

impl<'a> ClusterRekeyBatch<'a> {
    /// Rekey cost of the multicast message (the Fig. 12(c) metric; leader
    /// unicasts are *not* part of the rekey message).
    pub fn cost(&self) -> usize {
        self.rekey.cost()
    }

    /// The multicast rekey message produced by the (leader-only) key tree.
    pub fn rekey(&self) -> &RekeyBatch<'a> {
        &self.rekey
    }

    /// Unwraps into the underlying key-tree batch.
    pub fn into_rekey(self) -> RekeyBatch<'a> {
        self.rekey
    }

    /// Number of pairwise-encrypted group-key unicasts the leaders perform
    /// to refresh their non-leader members after this interval (0 when the
    /// group key did not change).
    pub fn leader_unicasts(&self) -> u64 {
        self.leader_unicasts
    }
}

/// A modified key tree operated under the cluster rekeying heuristic.
///
/// ```
/// use rand::SeedableRng;
/// use rekey_id::{IdSpec, UserId};
/// use rekey_keytree::{ClusteredKeyTree, RekeyArena};
///
/// let spec = IdSpec::new(3, 4)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut tree = ClusteredKeyTree::new(&spec);
/// let mut arena = RekeyArena::new();
/// let leader = UserId::new(&spec, vec![1, 2, 0])?;
/// let follower = UserId::new(&spec, vec![1, 2, 3])?; // same bottom cluster
/// tree.batch_rekey(&[leader.clone()], &[], &mut rng, &mut arena).unwrap();
/// let out = tree.batch_rekey(&[follower], &[], &mut rng, &mut arena).unwrap();
/// // A non-leader join incurs no group rekeying at all.
/// assert_eq!(out.cost(), 0);
/// assert!(tree.is_leader(&leader));
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClusteredKeyTree {
    spec: IdSpec,
    tree: ModifiedKeyTree,
    clusters: BTreeMap<IdPrefix, Cluster>,
    join_seq: u64,
}

impl ClusteredKeyTree {
    /// Creates an empty clustered tree.
    pub fn new(spec: &IdSpec) -> ClusteredKeyTree {
        ClusteredKeyTree {
            spec: *spec,
            tree: ModifiedKeyTree::new(spec),
            clusters: BTreeMap::new(),
            join_seq: 0,
        }
    }

    /// The underlying (leader-only) key tree.
    pub fn tree(&self) -> &ModifiedKeyTree {
        &self.tree
    }

    /// Total number of users across all clusters.
    pub fn user_count(&self) -> usize {
        self.clusters.values().map(|c| c.members.len()).sum()
    }

    /// `true` iff `user` is in the group.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.cluster_id(user)
            .map(|c| self.clusters[&c].contains(user))
            .unwrap_or(false)
    }

    /// The cluster (level-`(D−1)` subtree) ID `user` belongs to, if that
    /// cluster exists.
    fn cluster_id(&self, user: &UserId) -> Option<IdPrefix> {
        let id = user.prefix(self.spec.depth() - 1);
        self.clusters.contains_key(&id).then_some(id)
    }

    /// The leader of `user`'s cluster, if the cluster exists.
    pub fn leader_of(&self, user: &UserId) -> Option<&UserId> {
        let id = user.prefix(self.spec.depth() - 1);
        self.clusters.get(&id).and_then(|c| c.leader())
    }

    /// `true` iff `user` currently leads its cluster.
    pub fn is_leader(&self, user: &UserId) -> bool {
        self.leader_of(user) == Some(user)
    }

    /// Processes one rekey interval of `joins` and `leaves` under the
    /// heuristic. Leadership is recomputed per cluster (earliest-joined
    /// surviving member); only the net change of the *leader set* reaches
    /// the key tree.
    ///
    /// # Errors
    ///
    /// Rejects joins of current members, leaves of non-members and
    /// duplicate requests, leaving the state unchanged.
    pub fn batch_rekey<'a, R: Rng + ?Sized>(
        &mut self,
        joins: &[UserId],
        leaves: &[UserId],
        rng: &mut R,
        arena: &'a mut RekeyArena,
    ) -> Result<ClusterRekeyBatch<'a>, KeyTreeError> {
        // Validate against current membership. A join may reuse the ID of a
        // user leaving in the same batch (the slot is vacated first).
        let mut joining = std::collections::BTreeSet::new();
        for u in joins {
            if !joining.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
        }
        let mut left = std::collections::BTreeSet::new();
        for u in leaves {
            if !left.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
            if !self.contains_user(u) {
                return Err(KeyTreeError::NotMember(u.clone()));
            }
        }
        for u in &joining {
            if self.contains_user(u) && !left.contains(u) {
                return Err(KeyTreeError::AlreadyMember(u.clone()));
            }
        }

        let old_leaders: std::collections::BTreeSet<UserId> = self
            .clusters
            .values()
            .filter_map(|c| c.leader().cloned())
            .collect();

        // Apply membership changes: leaves first so a reused ID lands in a
        // vacated slot.
        for u in leaves {
            let id = u.prefix(self.spec.depth() - 1);
            let cluster = self.clusters.get_mut(&id).expect("validated membership");
            cluster.members.retain(|(_, m)| m != u);
            if cluster.members.is_empty() {
                self.clusters.remove(&id);
            }
        }
        for u in joins {
            let id = u.prefix(self.spec.depth() - 1);
            let cluster = self.clusters.entry(id).or_default();
            cluster.members.push((self.join_seq, u.clone()));
            self.join_seq += 1;
        }

        let new_leaders: std::collections::BTreeSet<UserId> = self
            .clusters
            .values()
            .filter_map(|c| c.leader().cloned())
            .collect();

        // A leader ID present on both sides still churns when the *person*
        // left and a new user re-acquired the ID in this batch.
        let tree_joins: Vec<UserId> = new_leaders
            .iter()
            .filter(|u| !old_leaders.contains(*u) || left.contains(*u))
            .cloned()
            .collect();
        let tree_leaves: Vec<UserId> = old_leaders
            .iter()
            .filter(|u| !new_leaders.contains(*u) || left.contains(*u))
            .cloned()
            .collect();
        let rekey = self
            .tree
            .batch_rekey(&tree_joins, &tree_leaves, rng, arena)
            .expect("leader churn derived from validated membership");

        // After a group-key change every leader refreshes its non-leader
        // members over pairwise keys.
        let leader_unicasts = if rekey.cost() > 0 {
            self.clusters
                .values()
                .map(|c| (c.members.len() - 1) as u64)
                .sum()
        } else {
            0
        };
        Ok(ClusterRekeyBatch {
            rekey,
            leader_unicasts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap() // clusters are level-2 subtrees
    }

    fn uid(d: [u16; 3]) -> UserId {
        UserId::new(&spec(), d.to_vec()).unwrap()
    }

    #[test]
    fn first_member_becomes_leader_and_rekeys() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        let out = ct
            .batch_rekey(&[uid([0, 0, 0])], &[], &mut rng, &mut arena)
            .unwrap();
        assert!(ct.is_leader(&uid([0, 0, 0])));
        assert_eq!(ct.tree().user_count(), 1);
        // Group-oriented rekeying wraps each new path key under its single
        // child's key: D encryptions for a first join.
        assert_eq!(out.cost(), 3);
        assert_eq!(out.leader_unicasts(), 0);
    }

    #[test]
    fn non_leader_churn_is_free() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(&[uid([0, 0, 0]), uid([2, 1, 0])], &[], &mut rng, &mut arena)
            .unwrap();
        // Same cluster as [0,0,0]:
        let out = ct
            .batch_rekey(&[uid([0, 0, 1]), uid([0, 0, 2])], &[], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(out.cost(), 0, "non-leader joins incur no group rekeying");
        assert_eq!(ct.user_count(), 4);
        assert_eq!(ct.tree().user_count(), 2, "only leaders have u-nodes");
        let out = ct
            .batch_rekey(&[], &[uid([0, 0, 2])], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(out.cost(), 0, "non-leader leaves incur no group rekeying");
        assert_eq!(out.leader_unicasts(), 0);
    }

    #[test]
    fn leader_leave_hands_over_and_rekeys() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(
            &[uid([0, 0, 0]), uid([0, 0, 1]), uid([2, 0, 0])],
            &[],
            &mut rng,
            &mut arena,
        )
        .unwrap();
        assert!(ct.is_leader(&uid([0, 0, 0])));
        let out = ct
            .batch_rekey(&[], &[uid([0, 0, 0])], &mut rng, &mut arena)
            .unwrap();
        // Earliest-joined survivor takes over.
        assert!(ct.is_leader(&uid([0, 0, 1])));
        assert!(out.cost() > 0, "leader leave incurs group rekeying");
        assert_eq!(ct.tree().user_count(), 2);
        // One non-leader-free cluster and one singleton: 0 unicasts… both
        // clusters are singletons now.
        assert_eq!(out.leader_unicasts(), 0);
    }

    #[test]
    fn leader_unicasts_counted_per_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(
            &[
                uid([0, 0, 0]),
                uid([0, 0, 1]),
                uid([0, 0, 2]),
                uid([2, 0, 0]),
            ],
            &[],
            &mut rng,
            &mut arena,
        )
        .unwrap();
        // Leader of [2,0] leaves: group key changes; leader of [0,0] must
        // refresh its 2 non-leader members.
        let out = ct
            .batch_rekey(&[], &[uid([2, 0, 0])], &mut rng, &mut arena)
            .unwrap();
        assert!(out.cost() > 0);
        assert_eq!(out.leader_unicasts(), 2);
    }

    #[test]
    fn cluster_emptying_removes_tree_leaf() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(
            &[uid([0, 0, 0]), uid([0, 0, 1]), uid([3, 3, 3])],
            &[],
            &mut rng,
            &mut arena,
        )
        .unwrap();
        let out = ct
            .batch_rekey(&[], &[uid([0, 0, 0]), uid([0, 0, 1])], &mut rng, &mut arena)
            .unwrap();
        assert!(out.cost() > 0);
        assert_eq!(ct.tree().user_count(), 1);
        assert_eq!(ct.user_count(), 1);
        assert!(!ct.contains_user(&uid([0, 0, 0])));
    }

    #[test]
    fn validation_mirrors_key_tree() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(&[uid([0, 0, 0])], &[], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(
            ct.batch_rekey(&[uid([0, 0, 0])], &[], &mut rng, &mut arena),
            Err(KeyTreeError::AlreadyMember(uid([0, 0, 0])))
        );
        assert_eq!(
            ct.batch_rekey(&[], &[uid([1, 1, 1])], &mut rng, &mut arena),
            Err(KeyTreeError::NotMember(uid([1, 1, 1])))
        );
    }

    /// Leader join + leader leave of the *same cluster* in one batch must
    /// net out correctly (the new member takes over the cluster leaf).
    #[test]
    fn same_batch_handover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut arena = RekeyArena::new();
        let mut ct = ClusteredKeyTree::new(&spec());
        ct.batch_rekey(&[uid([0, 0, 0]), uid([1, 0, 0])], &[], &mut rng, &mut arena)
            .unwrap();
        let out = ct
            .batch_rekey(&[uid([0, 0, 3])], &[uid([0, 0, 0])], &mut rng, &mut arena)
            .unwrap();
        assert!(ct.is_leader(&uid([0, 0, 3])));
        assert!(out.cost() > 0);
        assert_eq!(ct.tree().user_count(), 2);
    }
}
