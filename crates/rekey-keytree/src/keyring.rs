//! A user's key ring: the keys it holds and how it consumes rekey messages.

use std::borrow::Borrow;
use std::collections::HashMap;

use rekey_crypto::{Encryption, Key};
use rekey_id::{IdPrefix, IdSpec, UserId};

/// The keys a user holds: its individual key plus the keys of the k-nodes
/// on the path from its u-node to the root (§2.4).
///
/// A key ring makes rekeying end-to-end verifiable: [`KeyRing::absorb`]
/// actually *decrypts* the encryptions a user receives, so tests can assert
/// that after a rekey interval every user holds exactly the server's current
/// keys.
#[derive(Debug, Clone)]
pub struct KeyRing {
    user: UserId,
    keys: HashMap<IdPrefix, Key>,
}

impl KeyRing {
    /// Creates a key ring for `user` from the key set the server sends at
    /// join time (the path keys, in any order). Accepts owned keys or a
    /// borrowing iterator (e.g. straight from
    /// `ModifiedKeyTree::user_path_keys`); borrowed keys are cloned here,
    /// at the one place ownership is actually needed.
    ///
    /// # Panics
    ///
    /// Panics if any key's ID is not a prefix of `user`'s ID — a user never
    /// holds off-path keys.
    pub fn new<I>(user: UserId, path_keys: I) -> KeyRing
    where
        I: IntoIterator,
        I::Item: Borrow<Key>,
    {
        let mut keys = HashMap::new();
        for key in path_keys {
            let key = key.borrow();
            assert!(
                key.id().is_prefix_of_id(&user),
                "key {} is off the path of user {}",
                key.id(),
                user
            );
            keys.insert(key.id().clone(), key.clone());
        }
        KeyRing { user, keys }
    }

    /// The owner of this ring.
    pub fn user(&self) -> &UserId {
        &self.user
    }

    /// The current group key, if held.
    pub fn group_key(&self) -> Option<&Key> {
        self.keys.get(&IdPrefix::root())
    }

    /// The held key with this ID, if any.
    pub fn key(&self, id: &IdPrefix) -> Option<&Key> {
        self.keys.get(id)
    }

    /// Number of held keys (normally `D + 1`).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the ring holds no keys.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Lemma 3: this user needs encryption `e` iff `e`'s ID is a prefix of
    /// the user's ID.
    pub fn needs(&self, e: &Encryption) -> bool {
        e.id().is_prefix_of_id(&self.user)
    }

    /// Consumes a rekey message: unwraps every needed encryption and
    /// installs the carried keys. Returns the number of keys installed.
    ///
    /// Encryptions may arrive in any order; the method iterates to a fixed
    /// point so that chains (individual → aux → … → group key) resolve even
    /// if shallow wraps appear first.
    ///
    /// Takes any re-iterable borrowing iterator (a slice, a `Vec`, or an
    /// index-based view over a shared encryption buffer), so callers never
    /// have to clone `Encryption`s into a contiguous buffer first.
    pub fn absorb<'a, I>(&mut self, encryptions: I) -> usize
    where
        I: IntoIterator<Item = &'a Encryption>,
        I::IntoIter: Clone,
    {
        let encryptions = encryptions.into_iter();
        let mut installed = 0;
        loop {
            let mut progress = false;
            for e in encryptions.clone() {
                if !self.needs(e) {
                    continue;
                }
                let Some(wrap_key) = self.keys.get(e.id()) else {
                    continue;
                };
                if wrap_key.version() != e.encrypting_version() {
                    continue;
                }
                // Skip if we already hold this exact key version.
                if self
                    .keys
                    .get(e.encrypted_id())
                    .is_some_and(|k| k.version() >= e.encrypted_version())
                {
                    continue;
                }
                let new_key = e
                    .open(wrap_key)
                    .expect("ID and version matched, unwrap must work");
                self.keys.insert(new_key.id().clone(), new_key);
                installed += 1;
                progress = true;
            }
            if !progress {
                return installed;
            }
        }
    }

    /// Checks that this ring holds exactly the path keys of the server-side
    /// tree (same IDs, versions and material). Takes owned keys or a
    /// borrowing iterator. Used heavily in tests.
    pub fn matches_path<I>(&self, spec: &IdSpec, server_path: I) -> bool
    where
        I: IntoIterator,
        I::Item: Borrow<Key>,
    {
        let mut len = 0usize;
        for k in server_path {
            let k = k.borrow();
            len += 1;
            if self.keys.get(k.id()) != Some(k) {
                return false;
            }
        }
        self.keys.len() == len && len == spec.depth() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::RekeyArena;
    use crate::modified::ModifiedKeyTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    fn uid(digits: [u16; 2]) -> UserId {
        UserId::new(&spec(), digits.to_vec()).unwrap()
    }

    fn group() -> (StdRng, ModifiedKeyTree, Vec<UserId>) {
        let mut rng = StdRng::seed_from_u64(33);
        let users: Vec<UserId> = [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
            .iter()
            .map(|d| uid(*d))
            .collect();
        let mut tree = ModifiedKeyTree::new(&spec());
        let mut arena = RekeyArena::new();
        tree.batch_rekey(&users, &[], &mut rng, &mut arena).unwrap();
        (rng, tree, users)
    }

    #[test]
    fn absorb_installs_exactly_the_needed_keys() {
        let (mut rng, mut tree, users) = group();
        let mut arena = RekeyArena::new();
        let mut ring = KeyRing::new(users[0].clone(), tree.user_path_keys(&users[0]));
        assert!(ring.matches_path(&spec(), tree.user_path_keys(&users[0])));

        // u5 = [2,2] leaves; user [0,0] needs only {new group}_{k[0]}.
        let out = tree
            .batch_rekey(&[], &[users[4].clone()], &mut rng, &mut arena)
            .unwrap();
        let needed: Vec<_> = out.encryptions().iter().filter(|e| ring.needs(e)).collect();
        assert_eq!(needed.len(), 1);
        let installed = ring.absorb(out.encryptions());
        assert_eq!(installed, 1);
        assert!(ring.matches_path(&spec(), tree.user_path_keys(&users[0])));
        assert_eq!(ring.group_key(), tree.group_key());
    }

    #[test]
    fn absorb_resolves_chains_in_any_order() {
        let (mut rng, mut tree, users) = group();
        let mut arena = RekeyArena::new();
        let mut ring = KeyRing::new(users[2].clone(), tree.user_path_keys(&users[2]));
        let out = tree
            .batch_rekey(&[], &[users[4].clone()], &mut rng, &mut arena)
            .unwrap();
        // User [2,0] needs the new aux key [2] (via its individual key) and
        // then the new group key (via the new aux key).
        let mut reversed = out.encryptions().to_vec();
        reversed.reverse(); // shallow wraps first: forces the fixed-point loop
        let installed = ring.absorb(&reversed);
        assert_eq!(installed, 2);
        assert!(ring.matches_path(&spec(), tree.user_path_keys(&users[2])));
    }

    #[test]
    fn departed_user_cannot_recover_new_group_key() {
        let (mut rng, mut tree, users) = group();
        let mut arena = RekeyArena::new();
        let mut departed_ring = KeyRing::new(users[4].clone(), tree.user_path_keys(&users[4]));
        let old_group = departed_ring.group_key().unwrap().clone();
        let out = tree
            .batch_rekey(&[], &[users[4].clone()], &mut rng, &mut arena)
            .unwrap();
        let installed = departed_ring.absorb(out.encryptions());
        assert_eq!(
            installed, 0,
            "forward secrecy: departed user learns nothing"
        );
        assert_eq!(departed_ring.group_key(), Some(&old_group));
        assert_ne!(tree.group_key(), Some(&old_group));
    }

    #[test]
    fn joining_user_cannot_read_past_messages() {
        let (mut rng, mut tree, _) = group();
        let old_group = tree.group_key().unwrap().clone();
        let mut arena = RekeyArena::new();
        tree.batch_rekey(&[uid([3, 0])], &[], &mut rng, &mut arena)
            .unwrap();
        let ring = KeyRing::new(uid([3, 0]), tree.user_path_keys(&uid([3, 0])));
        // Backward secrecy: the new user's group key differs from the old one.
        assert_ne!(ring.group_key(), Some(&old_group));
        assert_eq!(ring.group_key(), tree.group_key());
    }

    #[test]
    #[should_panic(expected = "off the path")]
    fn rejects_off_path_keys() {
        let (_, tree, users) = group();
        let _ = KeyRing::new(uid([3, 3]), tree.user_path_keys(&users[0]));
    }

    #[test]
    fn stale_wrap_versions_are_ignored() {
        let (mut rng, mut tree, users) = group();
        // Two arenas: both interval results are held at once.
        let mut arena1 = RekeyArena::new();
        let mut arena2 = RekeyArena::new();
        let mut ring = KeyRing::new(users[0].clone(), tree.user_path_keys(&users[0]));
        let out1 = tree
            .batch_rekey(&[], &[users[4].clone()], &mut rng, &mut arena1)
            .unwrap();
        let out2 = tree
            .batch_rekey(&[], &[users[3].clone()], &mut rng, &mut arena2)
            .unwrap();
        // Apply the *second* interval first: wraps under keys the ring does
        // not yet have versions for must not panic, just not install.
        ring.absorb(out2.encryptions());
        ring.absorb(out1.encryptions());
        ring.absorb(out2.encryptions());
        assert!(ring.matches_path(&spec(), tree.user_path_keys(&users[0])));
    }
}
