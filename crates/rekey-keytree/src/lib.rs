//! Key trees and batch rekeying for secure group communication (Zhang, Lam
//! & Liu, ICDCS 2005, §2.4, §4.2, Appendix B).
//!
//! Three key-management strategies are implemented:
//!
//! * [`ModifiedKeyTree`] — the paper's contribution: a key tree whose
//!   structure matches the ID tree exactly (fixed height `D`, horizontal
//!   growth), enabling prefix-based identification of every key and
//!   encryption and hence stateless rekey message splitting;
//! * [`OriginalKeyTree`] — the Wong–Gouda–Lam degree-4 tree with the batch
//!   rekeying algorithm of \[32\], the paper's baseline;
//! * [`ClusteredKeyTree`] — the modified tree under the cluster rekeying
//!   heuristic (bottom clusters with leaders, Appendix B), which makes the
//!   modified tree's rekey cost drop below the original tree's when few
//!   users leave (Fig. 12(c)).
//!
//! [`KeyRing`] is the user-side counterpart: it consumes rekey messages by
//! actually decrypting the ChaCha20 key wraps, so the whole pipeline is
//! verified end to end in tests.
//!
//! ```
//! use rand::SeedableRng;
//! use rekey_id::{IdSpec, UserId};
//! use rekey_keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
//!
//! let spec = IdSpec::new(3, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(5);
//! let mut tree = ModifiedKeyTree::new(&spec);
//! // The caller owns the (reusable) arena every interval seals into.
//! let mut arena = RekeyArena::new();
//! let a = UserId::new(&spec, vec![0, 1, 2])?;
//! let b = UserId::new(&spec, vec![0, 3, 3])?;
//! tree.batch_rekey(&[a.clone(), b.clone()], &[], &mut rng, &mut arena).unwrap();
//!
//! // User a joins with its path keys, then b leaves; a decrypts the rekey
//! // message and ends up holding exactly the server's current keys.
//! let mut ring_a = KeyRing::new(a.clone(), tree.user_path_keys(&a));
//! let out = tree.batch_rekey(&[], &[b], &mut rng, &mut arena).unwrap();
//! ring_a.absorb(out.encryptions());
//! assert_eq!(ring_a.group_key(), tree.group_key());
//! # Ok::<(), rekey_id::IdError>(())
//! ```

mod batch;
mod cluster;
mod keyring;
mod modified;
mod original;
mod reference;

pub use batch::{RekeyArena, RekeyBatch};
pub use cluster::{ClusterRekeyBatch, ClusteredKeyTree};
pub use keyring::KeyRing;
pub use modified::{KeyTreeError, ModifiedKeyTree, NodeHandle, PathKeys, TreeMetrics};
pub use original::{NodeIdx, OrigEncryption, OrigRekeyOutcome, OriginalKeyTree};
pub use reference::ReferenceKeyTree;
