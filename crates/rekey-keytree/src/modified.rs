//! The modified key tree (§2.4): fixed height `D`, structure matching the
//! ID tree exactly, growing horizontally as users join.
//!
//! Storage is an arena: nodes live in struct-of-arrays slot vectors
//! addressed by integer [`NodeHandle`]s, with parent/child links as slot
//! indices and a free list recycling pruned slots. Looking a node up by
//! ID walks at most `D` child tables instead of comparing full
//! `IdPrefix` keys through a `BTreeMap`, and every per-encryption
//! bookkeeping step is O(1) — the regime the Wong–Gouda–Lam batch cost
//! model assumes. The old map-keyed implementation is retained as
//! [`ReferenceKeyTree`](crate::ReferenceKeyTree) and the two are churned
//! in lockstep by property tests.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use rand::Rng;
use rekey_crypto::{Key, KeyMaterial, NonceSeq};
use rekey_id::{IdPrefix, IdSpec, IdTree, UserId};
use rekey_metrics::{Counter, Histogram, Registry};

use crate::batch::{RekeyArena, RekeyBatch, SealJob};

/// Errors produced by key-tree batch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyTreeError {
    /// A join request named a user that is already in the tree.
    AlreadyMember(UserId),
    /// A leave request named a user that is not in the tree.
    NotMember(UserId),
    /// The same user appears twice in one batch.
    DuplicateRequest(UserId),
}

impl fmt::Display for KeyTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyTreeError::AlreadyMember(u) => write!(f, "user {u} is already a member"),
            KeyTreeError::NotMember(u) => write!(f, "user {u} is not a member"),
            KeyTreeError::DuplicateRequest(u) => write!(f, "user {u} appears twice in the batch"),
        }
    }
}

impl std::error::Error for KeyTreeError {}

/// Seal jobs below this count are not worth spawning worker threads for:
/// at ~1 µs per ChaCha20+SipHash key wrap, a thousand wraps barely cover
/// the cost of a thread spawn.
const PAR_THRESHOLD: usize = 1024;

/// A stable integer handle to a live node of a [`ModifiedKeyTree`].
///
/// Handles are arena slot indices: `Copy`, 4 bytes, hashable, and valid
/// until the node they name is pruned by a [`batch_rekey`] — after which
/// the slot may be recycled for a different node, so holding handles
/// across batches is only sound for nodes known to still exist (resolve
/// again via [`node_handle`] when unsure). Handle values are
/// deterministic for a deterministic operation sequence.
///
/// [`batch_rekey`]: ModifiedKeyTree::batch_rekey
/// [`node_handle`]: ModifiedKeyTree::node_handle
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeHandle(u32);

impl NodeHandle {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

const NIL: u32 = u32::MAX;

/// A key for a node being (re)created: version 0 for a first-time ID, or
/// one past the retired version when a node with this ID was pruned
/// before, so a `(node ID, version)` pair is never reused across
/// incarnations. A retired-version resume bumps `tombstone_hits`.
fn fresh_key<R: Rng + ?Sized>(
    retired: &BTreeMap<IdPrefix, u64>,
    id: IdPrefix,
    rng: &mut R,
    tombstone_hits: &mut u64,
) -> Key {
    match retired.get(&id) {
        Some(&v) => {
            *tombstone_hits += 1;
            Key::new(id, v + 1, KeyMaterial::random(rng))
        }
        None => Key::random(id, rng),
    }
}

/// Metric handles for a [`ModifiedKeyTree`], registered in a shared
/// [`Registry`]. Cloning shares the underlying stores, so a tree cloned
/// for a checkpoint (and the tree later restored from it) keeps reporting
/// into the same series.
#[derive(Debug, Clone)]
pub struct TreeMetrics {
    /// Distribution of batch sizes (`joins + leaves`) per rekey interval.
    pub batch_size: Histogram,
    /// Total encryptions generated across all rekey intervals.
    pub encryptions: Counter,
    /// Node (re)creations that resumed a retired version counter — each
    /// hit is an ID-reuse event the tombstone map defended against.
    pub tombstone_hits: Counter,
}

impl TreeMetrics {
    /// Registers the tree's metrics (`tree_batch_size`,
    /// `tree_encryptions`, `tree_tombstone_hits`) in `registry`.
    pub fn in_registry(registry: &Registry) -> TreeMetrics {
        TreeMetrics {
            batch_size: registry.histogram("tree_batch_size"),
            encryptions: registry.counter("tree_encryptions"),
            tombstone_hits: registry.counter("tree_tombstone_hits"),
        }
    }
}

/// The modified key tree.
///
/// * Nodes are identified by ID prefixes; a node of ID length `D` is a
///   **u-node** holding a user's individual key, shorter IDs are
///   **k-nodes** holding the group key (root) or auxiliary keys.
/// * "The key server makes the structure of the key tree match exactly that
///   of the ID tree" — [`ModifiedKeyTree::matches_id_tree`] checks this
///   invariant and the test suite enforces it under random churn.
///
/// Batch rekeying follows §2.4: per interval, joined u-nodes are added
/// (creating missing k-nodes), departed u-nodes removed (pruning empty
/// k-nodes), every k-node on an affected path gets a fresh key, and one
/// encryption is generated per (changed k-node, child) pair.
///
/// Nodes are addressed by integer [`NodeHandle`]s; ID-prefix resolution
/// ([`node_handle`], [`user_handle`]) is meant for the boundary where
/// wire-format IDs enter, with handle-based accessors ([`key_at`],
/// [`children_of`], [`parent_of`]) doing the traversal work after.
///
/// ```
/// use rand::SeedableRng;
/// use rekey_id::{IdSpec, UserId};
/// use rekey_keytree::{ModifiedKeyTree, RekeyArena};
///
/// let spec = IdSpec::new(2, 4)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut tree = ModifiedKeyTree::new(&spec);
/// let mut arena = RekeyArena::new();
/// let a = UserId::new(&spec, vec![0, 0])?;
/// let b = UserId::new(&spec, vec![2, 1])?;
/// tree.batch_rekey(&[a.clone(), b], &[], &mut rng, &mut arena).unwrap();
/// // `a` holds its individual key, the aux key of subtree [0] and the
/// // group key.
/// assert_eq!(tree.user_path_keys(&a).count(), 3);
/// // The same path, walked by handle.
/// let leaf = tree.user_handle(&a).unwrap();
/// assert_eq!(tree.key_at(leaf).id(), &a.as_prefix());
/// let root = tree.parent_of(tree.parent_of(leaf).unwrap()).unwrap();
/// assert_eq!(Some(tree.key_at(root)), tree.group_key());
/// # Ok::<(), rekey_id::IdError>(())
/// ```
///
/// [`node_handle`]: ModifiedKeyTree::node_handle
/// [`user_handle`]: ModifiedKeyTree::user_handle
/// [`key_at`]: ModifiedKeyTree::key_at
/// [`children_of`]: ModifiedKeyTree::children_of
/// [`parent_of`]: ModifiedKeyTree::parent_of
#[derive(Debug, Clone)]
pub struct ModifiedKeyTree {
    spec: IdSpec,
    /// Slot state, struct-of-arrays. `keys[s]` doubles as the node's ID
    /// store (a `Key` carries its `IdPrefix`); freed slots keep a stale
    /// key and are guarded by `live`.
    keys: Vec<Key>,
    parents: Vec<u32>,
    /// Child links per slot, sorted by digit.
    children: Vec<Vec<(u16, u32)>>,
    live: Vec<bool>,
    /// Batch stamp per slot: "touched this batch" marks, reset on alloc.
    stamp: Vec<u32>,
    free: Vec<u32>,
    batch: u32,
    root: u32,
    live_count: usize,
    user_count: usize,
    /// Last key version of every node ever pruned. A node recreated at an
    /// ID that was used before resumes its version counter past the
    /// retired value instead of restarting at 0, so a `(node ID, version)`
    /// pair never names two different key materials over the tree's
    /// lifetime. Without this, a receiver holding keys from a pruned
    /// incarnation (e.g. a departed member that has not yet learned of its
    /// departure) could see a same-ID same-version encryption it cannot
    /// open — or worse, silently skip a key it actually needs.
    retired: BTreeMap<IdPrefix, u64>,
    /// Metric handles, if the owner opted in (see
    /// [`ModifiedKeyTree::set_metrics`]). Cloned with the tree so a
    /// checkpoint copy reports into the same series.
    metrics: Option<TreeMetrics>,
    /// Worker threads for the seal phase; 1 = serial (the default),
    /// 0 = one per available core. Output bytes are identical at any
    /// setting.
    seal_threads: usize,
}

impl ModifiedKeyTree {
    /// Creates an empty tree (no users, no group key yet).
    pub fn new(spec: &IdSpec) -> ModifiedKeyTree {
        ModifiedKeyTree {
            spec: *spec,
            keys: Vec::new(),
            parents: Vec::new(),
            children: Vec::new(),
            live: Vec::new(),
            stamp: Vec::new(),
            free: Vec::new(),
            batch: 0,
            root: NIL,
            live_count: 0,
            user_count: 0,
            retired: BTreeMap::new(),
            metrics: None,
            seal_threads: 1,
        }
    }

    /// Attaches metric handles: every subsequent [`batch_rekey`] records
    /// its batch size, encryption count, and tombstone hits through them.
    ///
    /// [`batch_rekey`]: ModifiedKeyTree::batch_rekey
    pub fn set_metrics(&mut self, metrics: TreeMetrics) {
        self.metrics = Some(metrics);
    }

    /// Sets the number of worker threads the seal phase of
    /// [`batch_rekey`] fans out to: `1` (the default) seals serially,
    /// `0` uses one thread per available core, any other value is taken
    /// literally. Nonces are derived per job slot (see [`NonceSeq`]), so
    /// identical seeds produce **byte-identical** batches at any thread
    /// count; small batches (< ~1k seals) stay serial regardless.
    ///
    /// [`batch_rekey`]: ModifiedKeyTree::batch_rekey
    pub fn set_seal_threads(&mut self, threads: usize) {
        self.seal_threads = threads;
    }

    /// The configured seal-thread count (see
    /// [`ModifiedKeyTree::set_seal_threads`]).
    pub fn seal_threads(&self) -> usize {
        self.seal_threads
    }

    /// Resolves the configured thread count against the job count: auto
    /// (`0`) becomes the core count, and a batch never uses more threads
    /// than it has jobs, nor any parallelism below [`PAR_THRESHOLD`].
    fn effective_seal_threads(&self, jobs: usize) -> usize {
        if jobs < PAR_THRESHOLD {
            return 1;
        }
        let configured = match self.seal_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        configured.max(1).min(jobs)
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    // ------------------------------------------------------------------
    // Slot plumbing.

    fn alloc(&mut self, key: Key, parent: u32) -> u32 {
        self.live_count += 1;
        if let Some(slot) = self.free.pop() {
            let s = slot as usize;
            self.keys[s] = key;
            self.parents[s] = parent;
            self.children[s].clear();
            self.live[s] = true;
            self.stamp[s] = 0;
            slot
        } else {
            let slot = self.keys.len() as u32;
            self.keys.push(key);
            self.parents.push(parent);
            self.children.push(Vec::new());
            self.live.push(true);
            self.stamp.push(0);
            slot
        }
    }

    fn release(&mut self, slot: u32) {
        let s = slot as usize;
        debug_assert!(self.live[s]);
        self.live[s] = false;
        self.live_count -= 1;
        self.free.push(slot);
    }

    fn child_slot(&self, slot: u32, digit: u16) -> Option<u32> {
        let kids = &self.children[slot as usize];
        kids.binary_search_by_key(&digit, |&(d, _)| d)
            .ok()
            .map(|i| kids[i].1)
    }

    fn link_child(&mut self, slot: u32, digit: u16, child: u32) {
        let kids = &mut self.children[slot as usize];
        match kids.binary_search_by_key(&digit, |&(d, _)| d) {
            Ok(i) => kids[i].1 = child,
            Err(i) => kids.insert(i, (digit, child)),
        }
    }

    fn unlink_child(&mut self, slot: u32, digit: u16) {
        let kids = &mut self.children[slot as usize];
        if let Ok(i) = kids.binary_search_by_key(&digit, |&(d, _)| d) {
            kids.remove(i);
        }
    }

    /// Walks the digit path from the root; `None` unless every node on the
    /// way exists.
    fn lookup(&self, digits: &[u16]) -> Option<u32> {
        if self.root == NIL {
            return None;
        }
        let mut slot = self.root;
        for &d in digits {
            slot = self.child_slot(slot, d)?;
        }
        Some(slot)
    }

    // ------------------------------------------------------------------
    // Handle API.

    /// The handle of the root (group-key) node, if the group is non-empty.
    pub fn root_handle(&self) -> Option<NodeHandle> {
        (self.root != NIL).then_some(NodeHandle(self.root))
    }

    /// Resolves an ID prefix to the handle of the node holding that ID.
    ///
    /// This is the prefix↔handle boundary: call it once where an ID
    /// enters (a wire message, a user-facing API), then traverse by
    /// handle.
    pub fn node_handle(&self, id: &IdPrefix) -> Option<NodeHandle> {
        self.lookup(id.digits()).map(NodeHandle)
    }

    /// Resolves a user ID to the handle of its u-node.
    pub fn user_handle(&self, user: &UserId) -> Option<NodeHandle> {
        self.lookup(user.digits()).map(NodeHandle)
    }

    /// The key stored at `handle`.
    ///
    /// # Panics
    ///
    /// Panics if the handle's node has been pruned (stale handle).
    pub fn key_at(&self, handle: NodeHandle) -> &Key {
        assert!(
            self.live[handle.index()],
            "stale NodeHandle {handle}: node was pruned"
        );
        &self.keys[handle.index()]
    }

    /// The parent of `handle`'s node; `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn parent_of(&self, handle: NodeHandle) -> Option<NodeHandle> {
        assert!(
            self.live[handle.index()],
            "stale NodeHandle {handle}: node was pruned"
        );
        let p = self.parents[handle.index()];
        (p != NIL).then_some(NodeHandle(p))
    }

    /// The children of `handle`'s node in digit order, as
    /// `(digit, handle)` pairs. Empty for u-nodes.
    ///
    /// # Panics
    ///
    /// Panics if the handle is stale.
    pub fn children_of(
        &self,
        handle: NodeHandle,
    ) -> impl ExactSizeIterator<Item = (u16, NodeHandle)> + Clone + '_ {
        assert!(
            self.live[handle.index()],
            "stale NodeHandle {handle}: node was pruned"
        );
        self.children[handle.index()]
            .iter()
            .map(|&(d, s)| (d, NodeHandle(s)))
    }

    /// The keys on the path from `handle`'s node up to the root, starting
    /// at the node itself.
    pub fn path_keys_at(&self, handle: NodeHandle) -> PathKeys<'_> {
        assert!(
            self.live[handle.index()],
            "stale NodeHandle {handle}: node was pruned"
        );
        PathKeys {
            tree: self,
            cur: handle.0,
            remaining: self.keys[handle.index()].id().len() + 1,
        }
    }

    // ------------------------------------------------------------------
    // ID-keyed accessors (facade-boundary conveniences).

    /// The current group key, if the group is non-empty.
    pub fn group_key(&self) -> Option<&Key> {
        (self.root != NIL).then(|| &self.keys[self.root as usize])
    }

    /// `true` iff `user` has a u-node in the tree.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.lookup(user.digits()).is_some()
    }

    /// Number of users (u-nodes). O(1).
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Total number of nodes (k-nodes and u-nodes). O(1).
    pub fn node_count(&self) -> usize {
        self.live_count
    }

    /// The keys on the path from `user`'s u-node to the root, u-node
    /// first, as a borrowing iterator — no clones, no allocation. This is
    /// exactly the key set a user holds (§2.4); empty if the user is not
    /// a member. Collect with `.cloned()` where owned keys are needed.
    pub fn user_path_keys(&self, user: &UserId) -> PathKeys<'_> {
        match self.lookup(user.digits()) {
            Some(slot) => PathKeys {
                tree: self,
                cur: slot,
                remaining: self.spec.depth() + 1,
            },
            None => PathKeys {
                tree: self,
                cur: NIL,
                remaining: 0,
            },
        }
    }

    /// Checks the structural invariant: the key tree's node set equals the
    /// ID tree's node set for the current membership.
    pub fn matches_id_tree(&self, tree: &IdTree) -> bool {
        if self.live_count != tree.node_count() {
            return false;
        }
        (0..self.keys.len()).filter(|&s| self.live[s]).all(|s| {
            tree.node(self.keys[s].id()).is_some_and(|t| {
                self.children[s]
                    .iter()
                    .map(|&(d, _)| d)
                    .eq(t.child_digits())
            })
        })
    }

    /// Validates a batch: no duplicates within joins or within leaves,
    /// joins absent (unless the same ID leaves in this batch — the slot is
    /// vacated first), leaves present.
    fn validate_batch(&self, joins: &[UserId], leaves: &[UserId]) -> Result<(), KeyTreeError> {
        let mut seen = BTreeSet::new();
        for u in joins {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
        }
        let joining = seen;
        let mut seen = BTreeSet::new();
        for u in leaves {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
            if !self.contains_user(u) {
                return Err(KeyTreeError::NotMember(u.clone()));
            }
        }
        for u in &joining {
            if self.contains_user(u) && !seen.contains(u) {
                return Err(KeyTreeError::AlreadyMember(u.clone()));
            }
        }
        Ok(())
    }

    /// Marks a slot as changed this batch; records it once in `touched`.
    fn mark_changed(&mut self, slot: u32, touched: &mut Vec<u32>) {
        let s = slot as usize;
        if self.stamp[s] != self.batch {
            self.stamp[s] = self.batch;
            touched.push(slot);
        }
    }

    /// Processes one rekey interval: `joins` and `leaves` as a batch
    /// (§2.4). Seals the rekey message into `arena` and returns a
    /// [`RekeyBatch`] view borrowing it.
    ///
    /// The interval pipeline is fused and allocation-free at steady state:
    /// new node keys are derived sequentially (order-dependent), all
    /// pending key wraps are flattened into one job list, and the jobs are
    /// sealed — serially or data-parallel, see
    /// [`ModifiedKeyTree::set_seal_threads`] — directly into the arena's
    /// reused slots with per-slot deterministic nonces.
    ///
    /// Joining users receive their initial key set via unicast
    /// ([`ModifiedKeyTree::user_path_keys`] after this call), exactly as in
    /// §3.1: "the key server sends u … all the keys on the path from u's
    /// corresponding u-node to the root".
    ///
    /// # Errors
    ///
    /// Rejects batches with duplicate users, joins of current members, or
    /// leaves of non-members; the tree is left unchanged on error.
    pub fn batch_rekey<'a, R: Rng + ?Sized>(
        &mut self,
        joins: &[UserId],
        leaves: &[UserId],
        rng: &mut R,
        arena: &'a mut RekeyArena,
    ) -> Result<RekeyBatch<'a>, KeyTreeError> {
        self.validate_batch(joins, leaves)?;
        arena.reset();
        let depth = self.spec.depth();
        let mut tombstone_hits = 0u64;
        // Slots touched this batch; pruned ones are filtered at the end.
        let mut touched: Vec<u32> = Vec::new();
        self.batch = self.batch.wrapping_add(1);
        if self.batch == 0 {
            // Wrapped: stale stamps could alias; clear them all (rare).
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.batch = 1;
        }

        // "For each leaving user u, the key server deletes from the key tree
        // the u-node with ID u.ID. At each level i … the k-node whose ID
        // equals u.ID[0 : i−1] is deleted if the k-node does not have any
        // descendants."
        let mut chain: Vec<u32> = Vec::with_capacity(depth + 1);
        for u in leaves {
            // Resolve the whole ancestor chain in one walk: chain[l] is the
            // node at u.prefix(l).
            chain.clear();
            let mut slot = self.root;
            chain.push(slot);
            for &d in u.digits() {
                slot = self
                    .child_slot(slot, d)
                    .expect("ancestors of an unprocessed leaf always exist");
                chain.push(slot);
            }
            let leaf = chain[depth];
            self.retired
                .insert(u.as_prefix(), self.keys[leaf as usize].version());
            self.release(leaf);
            self.user_count -= 1;
            // Whether the node one level below was pruned (starts true: the
            // u-node was just removed).
            let mut child_gone = true;
            for level in (0..depth).rev() {
                let node = chain[level];
                if child_gone {
                    self.unlink_child(node, u.digit(level));
                }
                if self.children[node as usize].is_empty() {
                    self.retired.insert(
                        self.keys[node as usize].id().clone(),
                        self.keys[node as usize].version(),
                    );
                    self.release(node);
                    child_gone = true;
                } else {
                    self.mark_changed(node, &mut touched);
                    child_gone = false;
                }
            }
            if child_gone {
                // The root itself was pruned: the tree is now empty.
                self.root = NIL;
            }
        }

        // "For each joining user u, the key server adds into the key tree a
        // u-node with ID u.ID. At each level i … a k-node with ID
        // u.ID[0 : i−1] is added if such a k-node does not exist."
        for u in joins {
            // Existing ancestors are a prefix of the path (the tree is
            // prefix-closed): find how deep they go.
            chain.clear();
            if self.root != NIL {
                let mut slot = self.root;
                chain.push(slot);
                for &d in &u.digits()[..depth.saturating_sub(1)] {
                    match self.child_slot(slot, d) {
                        Some(next) => {
                            slot = next;
                            chain.push(slot);
                        }
                        None => break,
                    }
                }
            }
            let existing = chain.len(); // levels 0..existing are present
            let leaf_key = fresh_key(&self.retired, u.as_prefix(), rng, &mut tombstone_hits);
            let leaf = self.alloc(leaf_key, NIL);
            self.user_count += 1;
            // Create missing k-nodes deep→shallow (matching the reference
            // tree's RNG draw order), wiring each to the child made just
            // before it.
            let mut below = leaf;
            for level in (existing..depth).rev() {
                let key = fresh_key(&self.retired, u.prefix(level), rng, &mut tombstone_hits);
                let node = self.alloc(key, NIL);
                self.link_child(node, u.digit(level), below);
                self.parents[below as usize] = node;
                self.mark_changed(node, &mut touched);
                below = node;
            }
            if existing == 0 {
                self.root = below;
            } else {
                // Attach the new chain (or just the leaf) to the deepest
                // existing ancestor, then mark the existing path changed.
                let deepest = chain[existing - 1];
                self.link_child(deepest, u.digit(existing - 1), below);
                self.parents[below as usize] = deepest;
                for &node in &chain {
                    self.mark_changed(node, &mut touched);
                }
            }
        }

        // "At the beginning of the next rekey interval, the key server
        // updates all the keys on the path from each newly joined or
        // departed u-node to the root, and then generates encryptions."
        //
        // Prune-then-reuse can leave duplicate or dead entries in
        // `touched`: keep live slots once, in ascending ID order (the
        // reference tree's BTreeSet iteration order, which fixes the RNG
        // draw sequence).
        let mut changed: Vec<u32> = touched
            .into_iter()
            .filter(|&s| self.live[s as usize] && self.stamp[s as usize] == self.batch)
            .collect();
        changed.sort_unstable();
        changed.dedup();
        changed.sort_by(|&a, &b| self.keys[a as usize].id().cmp(self.keys[b as usize].id()));
        for &s in &changed {
            self.keys[s as usize].refresh(rng);
        }

        // One seal job per (changed k-node, child): the child's (possibly
        // new) key wraps the changed node's new key. Deeper encrypting keys
        // first so receivers can unwrap in one pass (stable sort keeps the
        // ascending-ID order within a depth). Flattening the jobs fixes
        // each one's slot index — its position in the rekey message AND
        // its deterministic nonce slot.
        let mut emit = changed.clone();
        emit.sort_by_key(|&s| std::cmp::Reverse(self.keys[s as usize].id().len()));
        for &s in &emit {
            for &(_, child) in &self.children[s as usize] {
                arena.jobs.push(SealJob { node: s, child });
            }
        }
        for &s in &changed {
            arena.push_updated(self.keys[s as usize].id());
        }

        // The per-batch nonce seed is drawn once, AFTER every key draw, so
        // the serial reference oracle consumes the RNG identically. A batch
        // with nothing to seal draws nothing at all: empty beacon intervals
        // must not perturb the key-material stream (replica failover relies
        // on this — see `tests/failover_soak.rs`).
        let started = Instant::now();
        let cost = arena.jobs.len();
        let seq = if cost == 0 {
            NonceSeq::from_seed([0; 32])
        } else {
            NonceSeq::from_rng(rng)
        };
        arena.ensure_slots(cost);
        self.seal_jobs(arena, seq, cost);
        arena.seal_nanos = started.elapsed().as_nanos() as u64;

        let batch = RekeyBatch::new(arena);
        if let Some(m) = &self.metrics {
            m.batch_size.record((joins.len() + leaves.len()) as u64);
            // Derived from the batch view itself — the counter and
            // `RekeyBatch::cost()` share one source and cannot diverge.
            m.encryptions.add(batch.cost() as u64);
            m.tombstone_hits.add(tombstone_hits);
        }
        Ok(batch)
    }

    /// Runs the interval's flattened seal jobs, writing each
    /// `Encryption` into its arena slot: serially, or chunked across
    /// scoped worker threads when the batch is large enough. Nonces come
    /// from the job's slot index, so the split is invisible in the output.
    fn seal_jobs(&self, arena: &mut RekeyArena, seq: NonceSeq, cost: usize) {
        let threads = self.effective_seal_threads(cost);
        let keys = &self.keys[..];
        let jobs = &arena.jobs[..cost];
        let slots = &mut arena.encryptions[..cost];
        let seal_chunk = |jobs: &[SealJob], slots: &mut [rekey_crypto::Encryption], base: usize| {
            for (off, (job, slot)) in jobs.iter().zip(slots.iter_mut()).enumerate() {
                slot.seal_into(
                    &keys[job.child as usize],
                    &keys[job.node as usize],
                    seq.nonce((base + off) as u64),
                );
            }
        };
        if threads <= 1 {
            seal_chunk(jobs, slots, 0);
        } else {
            let per = cost.div_ceil(threads);
            std::thread::scope(|scope| {
                for (ci, (job_chunk, slot_chunk)) in
                    jobs.chunks(per).zip(slots.chunks_mut(per)).enumerate()
                {
                    let seal_chunk = &seal_chunk;
                    scope.spawn(move || seal_chunk(job_chunk, slot_chunk, ci * per));
                }
            });
        }
    }
}

/// Borrowing iterator over the keys on a node→root path, deepest first.
/// Returned by [`ModifiedKeyTree::user_path_keys`] and
/// [`ModifiedKeyTree::path_keys_at`].
#[derive(Debug, Clone)]
pub struct PathKeys<'a> {
    tree: &'a ModifiedKeyTree,
    cur: u32,
    remaining: usize,
}

impl<'a> Iterator for PathKeys<'a> {
    type Item = &'a Key;

    fn next(&mut self) -> Option<&'a Key> {
        if self.cur == NIL {
            return None;
        }
        let s = self.cur as usize;
        self.cur = self.tree.parents[s];
        self.remaining -= 1;
        Some(&self.tree.keys[s])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PathKeys<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    fn uid(digits: [u16; 2]) -> UserId {
        UserId::new(&spec(), digits.to_vec()).unwrap()
    }

    fn key_of<'t>(tree: &'t ModifiedKeyTree, id: &IdPrefix) -> Option<&'t Key> {
        tree.node_handle(id).map(|h| tree.key_at(h))
    }

    /// Builds the Fig. 1 / Fig. 4 example group.
    fn fig4_tree(rng: &mut StdRng) -> ModifiedKeyTree {
        let mut tree = ModifiedKeyTree::new(&spec());
        let mut arena = RekeyArena::new();
        let joins: Vec<UserId> = [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
            .iter()
            .map(|d| uid(*d))
            .collect();
        tree.batch_rekey(&joins, &[], rng, &mut arena).unwrap();
        tree
    }

    #[test]
    fn structure_matches_id_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = fig4_tree(&mut rng);
        let id_tree = IdTree::from_users(
            &spec(),
            [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
                .iter()
                .map(|d| uid(*d)),
        );
        assert!(tree.matches_id_tree(&id_tree));
        assert_eq!(tree.user_count(), 5);
        assert_eq!(tree.node_count(), 8);
    }

    /// The paper's worked example: u5 = [2,2] leaves; the server changes
    /// k1-5 → k1-4 and k345 → k34 and generates exactly four encryptions:
    /// {k1-4}k12, {k1-4}k34, {k34}k3, {k34}k4.
    #[test]
    fn fig4_single_leave_generates_four_encryptions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let out = tree
            .batch_rekey(&[], &[uid([2, 2])], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(out.cost(), 4);
        let mut ids: Vec<String> = out
            .encryptions()
            .iter()
            .map(|e| e.id().to_string())
            .collect();
        ids.sort();
        assert_eq!(ids, vec!["[0]", "[2,0]", "[2,1]", "[2]"]);
        // Updated nodes: the root and [2].
        let updated: Vec<String> = out.updated().iter().map(|p| p.to_string()).collect();
        assert_eq!(updated, vec!["[]", "[2]"]);
        assert!(!tree.contains_user(&uid([2, 2])));
    }

    #[test]
    fn users_hold_path_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = fig4_tree(&mut rng);
        let keys: Vec<&Key> = tree.user_path_keys(&uid([2, 2])).collect();
        assert_eq!(keys.len(), 3); // individual, aux [2], group
        assert_eq!(keys[0].id().to_string(), "[2,2]");
        assert_eq!(keys[1].id().to_string(), "[2]");
        assert!(keys[2].id().is_empty());
        assert_eq!(tree.user_path_keys(&uid([3, 3])).count(), 0);
        // The iterator is exact-size and restartable (Clone).
        let it = tree.user_path_keys(&uid([2, 2]));
        assert_eq!(it.len(), 3);
        assert_eq!(it.clone().count(), it.count());
    }

    #[test]
    fn handle_navigation_matches_ids() {
        let mut rng = StdRng::seed_from_u64(12);
        let tree = fig4_tree(&mut rng);
        let leaf = tree.user_handle(&uid([2, 1])).unwrap();
        assert_eq!(tree.key_at(leaf).id().to_string(), "[2,1]");
        let aux = tree.parent_of(leaf).unwrap();
        assert_eq!(tree.key_at(aux).id().to_string(), "[2]");
        let digits: Vec<u16> = tree.children_of(aux).map(|(d, _)| d).collect();
        assert_eq!(digits, vec![0, 1, 2]);
        let root = tree.parent_of(aux).unwrap();
        assert_eq!(Some(root), tree.root_handle());
        assert_eq!(tree.parent_of(root), None);
        // node_handle resolves interior prefixes too.
        let sub = IdPrefix::new(&spec(), vec![2]).unwrap();
        assert_eq!(tree.node_handle(&sub), Some(aux));
        // path_keys_at from an interior node.
        let path: Vec<&Key> = tree.path_keys_at(aux).collect();
        assert_eq!(path.len(), 2);
    }

    #[test]
    #[should_panic(expected = "stale NodeHandle")]
    fn stale_handles_are_rejected() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let leaf = tree.user_handle(&uid([2, 2])).unwrap();
        tree.batch_rekey(&[], &[uid([2, 2])], &mut rng, &mut arena)
            .unwrap();
        let _ = tree.key_at(leaf);
    }

    #[test]
    fn pure_join_rekeys_join_path_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let old_group_version = tree.group_key().unwrap().version();
        let out = tree
            .batch_rekey(&[uid([0, 2])], &[], &mut rng, &mut arena)
            .unwrap();
        // Updated: root and [0]. Encryptions: root under [0] and [2];
        // [0]-key under [0,0], [0,1], [0,2] ⇒ 5 total.
        assert_eq!(out.cost(), 5);
        assert_eq!(tree.group_key().unwrap().version(), old_group_version + 1);
        assert!(tree.contains_user(&uid([0, 2])));
    }

    #[test]
    fn leave_that_empties_subtree_prunes_nodes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let out = tree
            .batch_rekey(&[], &[uid([0, 0]), uid([0, 1])], &mut rng, &mut arena)
            .unwrap();
        // Subtree [0] disappears entirely; only the root is updated, with a
        // single child [2] left ⇒ exactly one encryption.
        assert_eq!(out.cost(), 1);
        assert_eq!(out.encryptions()[0].id().to_string(), "[2]");
        assert!(key_of(&tree, &IdPrefix::new(&spec(), vec![0]).unwrap()).is_none());
        let id_tree = IdTree::from_users(&spec(), [[2, 0], [2, 1], [2, 2]].iter().map(|d| uid(*d)));
        assert!(tree.matches_id_tree(&id_tree));
    }

    /// A pruned node recreated at the same ID resumes its version counter
    /// past the retired value: a `(node ID, version)` pair must never name
    /// two different key materials over the tree's lifetime, or a receiver
    /// holding keys from the pruned incarnation (a departed member that
    /// has not yet learned of its departure) would be handed an encryption
    /// it believes it can open but cannot.
    #[test]
    fn recreated_nodes_resume_retired_versions() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let aux = IdPrefix::new(&spec(), vec![0]).unwrap();
        // Rekey a few intervals so [0]'s version advances past creation.
        tree.batch_rekey(&[], &[uid([0, 1])], &mut rng, &mut arena)
            .unwrap();
        tree.batch_rekey(&[uid([0, 1])], &[], &mut rng, &mut arena)
            .unwrap();
        let before = key_of(&tree, &aux).unwrap().clone();
        assert!(before.version() >= 2);

        // Empty the subtree (pruning [0]), then recreate it; same for the
        // leaf [0,0] — same-ID u-node incarnations must not collide either.
        tree.batch_rekey(&[], &[uid([0, 0]), uid([0, 1])], &mut rng, &mut arena)
            .unwrap();
        assert!(key_of(&tree, &aux).is_none());
        tree.batch_rekey(&[uid([0, 0])], &[], &mut rng, &mut arena)
            .unwrap();

        let after = key_of(&tree, &aux).unwrap();
        assert!(
            after.version() > before.version(),
            "recreated [0] must continue past version {} (got {})",
            before.version(),
            after.version()
        );
        assert_ne!(after.material(), before.material());
        let leaf = key_of(&tree, &uid([0, 0]).as_prefix()).unwrap();
        assert!(leaf.version() > 0, "recreated u-node resumes versions too");
    }

    #[test]
    fn batch_validation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        assert_eq!(
            tree.batch_rekey(&[uid([0, 0])], &[], &mut rng, &mut arena),
            Err(KeyTreeError::AlreadyMember(uid([0, 0])))
        );
        assert_eq!(
            tree.batch_rekey(&[], &[uid([3, 3])], &mut rng, &mut arena),
            Err(KeyTreeError::NotMember(uid([3, 3])))
        );
        assert_eq!(
            tree.batch_rekey(&[uid([3, 3])], &[uid([3, 3])], &mut rng, &mut arena),
            Err(KeyTreeError::NotMember(uid([3, 3])))
        );
        assert_eq!(
            tree.batch_rekey(&[uid([3, 3]), uid([3, 3])], &[], &mut rng, &mut arena),
            Err(KeyTreeError::DuplicateRequest(uid([3, 3])))
        );
        // Tree unchanged after errors.
        assert_eq!(tree.user_count(), 5);
    }

    /// A joining user may be assigned the exact ID of a user leaving in the
    /// same interval: the slot is vacated first and all its path keys still
    /// change (forward secrecy for the leaver).
    #[test]
    fn id_reuse_within_one_batch() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let old_individual = key_of(&tree, &uid([2, 2]).as_prefix()).unwrap().clone();
        let old_group = tree.group_key().unwrap().clone();
        let out = tree
            .batch_rekey(&[uid([2, 2])], &[uid([2, 2])], &mut rng, &mut arena)
            .unwrap();
        assert!(out.cost() > 0);
        assert!(tree.contains_user(&uid([2, 2])));
        assert_eq!(tree.user_count(), 5);
        assert_ne!(
            key_of(&tree, &uid([2, 2]).as_prefix()).unwrap(),
            &old_individual
        );
        assert_ne!(tree.group_key().unwrap(), &old_group);
    }

    #[test]
    fn empty_batch_is_a_noop_message() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let out = tree.batch_rekey(&[], &[], &mut rng, &mut arena).unwrap();
        assert_eq!(out.cost(), 0);
        assert!(out.updated().is_empty());
    }

    #[test]
    fn last_user_leaving_empties_tree() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut arena = RekeyArena::new();
        let mut tree = ModifiedKeyTree::new(&spec());
        tree.batch_rekey(&[uid([1, 1])], &[], &mut rng, &mut arena)
            .unwrap();
        assert!(tree.group_key().is_some());
        let out = tree
            .batch_rekey(&[], &[uid([1, 1])], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(out.cost(), 0);
        assert_eq!(tree.node_count(), 0);
        assert!(tree.group_key().is_none());
        assert_eq!(tree.root_handle(), None);
        // And the tree is reusable afterwards.
        tree.batch_rekey(&[uid([2, 2])], &[], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(tree.user_count(), 1);
        assert!(tree.group_key().is_some());
    }

    #[test]
    fn metrics_record_batches_encryptions_and_tombstones() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut arena = RekeyArena::new();
        let registry = rekey_metrics::Registry::new();
        let mut tree = ModifiedKeyTree::new(&spec());
        tree.set_metrics(TreeMetrics::in_registry(&registry));

        let joins: Vec<UserId> = [[0, 0], [0, 1]].iter().map(|d| uid(*d)).collect();
        tree.batch_rekey(&joins, &[], &mut rng, &mut arena).unwrap();
        // Prune the [0] subtree, then recreate one leaf: the leaf, the aux
        // node [0], and the root all resume retired versions.
        tree.batch_rekey(&[], &joins, &mut rng, &mut arena).unwrap();
        let out = tree
            .batch_rekey(&[uid([0, 0])], &[], &mut rng, &mut arena)
            .unwrap();

        let snap = registry.snapshot();
        let sizes = &snap.histograms["tree_batch_size"];
        assert_eq!(sizes.count, 3);
        assert_eq!(sizes.max, 2);
        assert!(snap.counters["tree_encryptions"] >= out.cost() as u64);
        assert_eq!(snap.counters["tree_tombstone_hits"], 3);

        // A checkpoint clone shares the series rather than forking it.
        let mut checkpoint = tree.clone();
        checkpoint
            .batch_rekey(&[uid([1, 1])], &[], &mut rng, &mut arena)
            .unwrap();
        assert_eq!(registry.snapshot().histograms["tree_batch_size"].count, 4);
    }

    #[test]
    fn encryptions_ordered_deep_to_shallow() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let out = tree
            .batch_rekey(&[], &[uid([2, 2])], &mut rng, &mut arena)
            .unwrap();
        let lens: Vec<usize> = out.encryptions().iter().map(|e| e.id().len()).collect();
        let mut sorted = lens.clone();
        sorted.sort_by_key(|&l| std::cmp::Reverse(l));
        assert_eq!(lens, sorted);
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut arena = RekeyArena::new();
        let mut tree = fig4_tree(&mut rng);
        let cap_before = tree.keys.len();
        // Churn the same subtree repeatedly: capacity must not grow.
        for _ in 0..16 {
            tree.batch_rekey(&[], &[uid([2, 2])], &mut rng, &mut arena)
                .unwrap();
            tree.batch_rekey(&[uid([2, 2])], &[], &mut rng, &mut arena)
                .unwrap();
        }
        assert_eq!(tree.keys.len(), cap_before, "free list must recycle slots");
        assert_eq!(tree.user_count(), 5);
    }

    #[test]
    fn handle_based_lookup_resolves_id_tree_nodes() {
        let mut rng = StdRng::seed_from_u64(15);
        let tree = fig4_tree(&mut rng);
        // An interior k-node resolves to the key its path holders share.
        let aux = IdPrefix::new(&spec(), vec![2]).unwrap();
        let handle = tree.node_handle(&aux).expect("subtree 2 is populated");
        let key = tree.key_at(handle);
        assert_eq!(key.id(), &aux);
        assert!(tree
            .user_path_keys(&uid([2, 2]))
            .any(|k| std::ptr::eq(k, key)));
        // The root handle reads back the group key; absent IDs miss.
        let root = tree.node_handle(&IdPrefix::root()).expect("non-empty tree");
        assert_eq!(Some(tree.key_at(root)), tree.group_key());
        let absent = IdPrefix::new(&spec(), vec![1]).unwrap();
        assert!(tree.node_handle(&absent).is_none(), "subtree 1 is empty");
    }
}
