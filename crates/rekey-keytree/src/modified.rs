//! The modified key tree (§2.4): fixed height `D`, structure matching the
//! ID tree exactly, growing horizontally as users join.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use rand::Rng;
use rekey_crypto::{Encryption, Key, KeyMaterial};
use rekey_id::{IdPrefix, IdSpec, IdTree, UserId};
use rekey_metrics::{Counter, Histogram, Registry};

/// Errors produced by key-tree batch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyTreeError {
    /// A join request named a user that is already in the tree.
    AlreadyMember(UserId),
    /// A leave request named a user that is not in the tree.
    NotMember(UserId),
    /// The same user appears twice in one batch.
    DuplicateRequest(UserId),
}

impl fmt::Display for KeyTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyTreeError::AlreadyMember(u) => write!(f, "user {u} is already a member"),
            KeyTreeError::NotMember(u) => write!(f, "user {u} is not a member"),
            KeyTreeError::DuplicateRequest(u) => write!(f, "user {u} appears twice in the batch"),
        }
    }
}

impl std::error::Error for KeyTreeError {}

/// The result of one batch rekey interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RekeyOutcome {
    /// The rekey message: all generated encryptions, ordered by decreasing
    /// encrypting-key ID length so receivers can unwrap in a single pass.
    pub encryptions: Vec<Encryption>,
    /// IDs of the k-nodes whose keys were changed.
    pub updated: Vec<IdPrefix>,
}

impl RekeyOutcome {
    /// The paper's *rekey cost*: "the number of encryptions contained in a
    /// rekey message" (§4.2).
    pub fn cost(&self) -> usize {
        self.encryptions.len()
    }
}

#[derive(Debug, Clone)]
struct TreeNode {
    key: Key,
    /// Child digits; empty for u-nodes (full-length IDs).
    children: BTreeSet<u16>,
}

/// A key for a node being (re)created: version 0 for a first-time ID, or
/// one past the retired version when a node with this ID was pruned
/// before, so a `(node ID, version)` pair is never reused across
/// incarnations. A retired-version resume bumps `tombstone_hits`.
fn fresh_key<R: Rng + ?Sized>(
    retired: &BTreeMap<IdPrefix, u64>,
    id: IdPrefix,
    rng: &mut R,
    tombstone_hits: &mut u64,
) -> Key {
    match retired.get(&id) {
        Some(&v) => {
            *tombstone_hits += 1;
            Key::new(id, v + 1, KeyMaterial::random(rng))
        }
        None => Key::random(id, rng),
    }
}

/// Metric handles for a [`ModifiedKeyTree`], registered in a shared
/// [`Registry`]. Cloning shares the underlying stores, so a tree cloned
/// for a checkpoint (and the tree later restored from it) keeps reporting
/// into the same series.
#[derive(Debug, Clone)]
pub struct TreeMetrics {
    /// Distribution of batch sizes (`joins + leaves`) per rekey interval.
    pub batch_size: Histogram,
    /// Total encryptions generated across all rekey intervals.
    pub encryptions: Counter,
    /// Node (re)creations that resumed a retired version counter — each
    /// hit is an ID-reuse event the tombstone map defended against.
    pub tombstone_hits: Counter,
}

impl TreeMetrics {
    /// Registers the tree's metrics (`tree_batch_size`,
    /// `tree_encryptions`, `tree_tombstone_hits`) in `registry`.
    pub fn in_registry(registry: &Registry) -> TreeMetrics {
        TreeMetrics {
            batch_size: registry.histogram("tree_batch_size"),
            encryptions: registry.counter("tree_encryptions"),
            tombstone_hits: registry.counter("tree_tombstone_hits"),
        }
    }
}

/// The modified key tree.
///
/// * Nodes are identified by ID prefixes; a node of ID length `D` is a
///   **u-node** holding a user's individual key, shorter IDs are
///   **k-nodes** holding the group key (root) or auxiliary keys.
/// * "The key server makes the structure of the key tree match exactly that
///   of the ID tree" — [`ModifiedKeyTree::matches_id_tree`] checks this
///   invariant and the test suite enforces it under random churn.
///
/// Batch rekeying follows §2.4: per interval, joined u-nodes are added
/// (creating missing k-nodes), departed u-nodes removed (pruning empty
/// k-nodes), every k-node on an affected path gets a fresh key, and one
/// encryption is generated per (changed k-node, child) pair.
///
/// ```
/// use rand::SeedableRng;
/// use rekey_id::{IdSpec, UserId};
/// use rekey_keytree::ModifiedKeyTree;
///
/// let spec = IdSpec::new(2, 4)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut tree = ModifiedKeyTree::new(&spec);
/// let a = UserId::new(&spec, vec![0, 0])?;
/// let b = UserId::new(&spec, vec![2, 1])?;
/// tree.batch_rekey(&[a.clone(), b], &[], &mut rng).unwrap();
/// // `a` holds its individual key, the aux key of subtree [0] and the
/// // group key.
/// assert_eq!(tree.user_path_keys(&a).len(), 3);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModifiedKeyTree {
    spec: IdSpec,
    nodes: BTreeMap<IdPrefix, TreeNode>,
    /// Last key version of every node ever pruned. A node recreated at an
    /// ID that was used before resumes its version counter past the
    /// retired value instead of restarting at 0, so a `(node ID, version)`
    /// pair never names two different key materials over the tree's
    /// lifetime. Without this, a receiver holding keys from a pruned
    /// incarnation (e.g. a departed member that has not yet learned of its
    /// departure) could see a same-ID same-version encryption it cannot
    /// open — or worse, silently skip a key it actually needs.
    retired: BTreeMap<IdPrefix, u64>,
    /// Metric handles, if the owner opted in (see
    /// [`ModifiedKeyTree::set_metrics`]). Cloned with the tree so a
    /// checkpoint copy reports into the same series.
    metrics: Option<TreeMetrics>,
}

impl ModifiedKeyTree {
    /// Creates an empty tree (no users, no group key yet).
    pub fn new(spec: &IdSpec) -> ModifiedKeyTree {
        ModifiedKeyTree {
            spec: *spec,
            nodes: BTreeMap::new(),
            retired: BTreeMap::new(),
            metrics: None,
        }
    }

    /// Attaches metric handles: every subsequent [`batch_rekey`] records
    /// its batch size, encryption count, and tombstone hits through them.
    ///
    /// [`batch_rekey`]: ModifiedKeyTree::batch_rekey
    pub fn set_metrics(&mut self, metrics: TreeMetrics) {
        self.metrics = Some(metrics);
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// The current group key, if the group is non-empty.
    pub fn group_key(&self) -> Option<&Key> {
        self.key(&IdPrefix::root())
    }

    /// The key stored at ID-tree node `id`, if present.
    pub fn key(&self, id: &IdPrefix) -> Option<&Key> {
        self.nodes.get(id).map(|n| &n.key)
    }

    /// `true` iff `user` has a u-node in the tree.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.nodes.contains_key(&user.as_prefix())
    }

    /// Number of users (u-nodes).
    pub fn user_count(&self) -> usize {
        let depth = self.spec.depth();
        self.nodes.keys().filter(|p| p.len() == depth).count()
    }

    /// Total number of nodes (k-nodes and u-nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All keys on the path from `user`'s u-node to the root, u-node first.
    /// This is exactly the key set a user holds (§2.4); empty if the user is
    /// not a member.
    pub fn user_path_keys(&self, user: &UserId) -> Vec<Key> {
        if !self.contains_user(user) {
            return Vec::new();
        }
        (0..=self.spec.depth())
            .rev()
            .map(|l| self.nodes[&user.prefix(l)].key.clone())
            .collect()
    }

    /// Checks the structural invariant: the key tree's node set equals the
    /// ID tree's node set for the current membership.
    pub fn matches_id_tree(&self, tree: &IdTree) -> bool {
        if self.nodes.len() != tree.node_count() {
            return false;
        }
        self.nodes.iter().all(|(id, node)| {
            tree.node(id)
                .is_some_and(|t| node.children.iter().copied().eq(t.child_digits()))
        })
    }

    /// Validates a batch: no duplicates within joins or within leaves,
    /// joins absent (unless the same ID leaves in this batch — the slot is
    /// vacated first), leaves present.
    fn validate_batch(&self, joins: &[UserId], leaves: &[UserId]) -> Result<(), KeyTreeError> {
        let mut seen = BTreeSet::new();
        for u in joins {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
        }
        let joining = seen;
        let mut seen = BTreeSet::new();
        for u in leaves {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
            if !self.contains_user(u) {
                return Err(KeyTreeError::NotMember(u.clone()));
            }
        }
        for u in &joining {
            if self.contains_user(u) && !seen.contains(u) {
                return Err(KeyTreeError::AlreadyMember(u.clone()));
            }
        }
        Ok(())
    }

    /// Processes one rekey interval: `joins` and `leaves` as a batch
    /// (§2.4). Returns the rekey message.
    ///
    /// Joining users receive their initial key set via unicast
    /// ([`ModifiedKeyTree::user_path_keys`] after this call), exactly as in
    /// §3.1: "the key server sends u … all the keys on the path from u's
    /// corresponding u-node to the root".
    ///
    /// # Errors
    ///
    /// Rejects batches with duplicate users, joins of current members, or
    /// leaves of non-members; the tree is left unchanged on error.
    pub fn batch_rekey<R: Rng + ?Sized>(
        &mut self,
        joins: &[UserId],
        leaves: &[UserId],
        rng: &mut R,
    ) -> Result<RekeyOutcome, KeyTreeError> {
        self.validate_batch(joins, leaves)?;
        let depth = self.spec.depth();
        let mut changed: BTreeSet<IdPrefix> = BTreeSet::new();
        let mut tombstone_hits = 0u64;

        // "For each leaving user u, the key server deletes from the key tree
        // the u-node with ID u.ID. At each level i … the k-node whose ID
        // equals u.ID[0 : i−1] is deleted if the k-node does not have any
        // descendants."
        for u in leaves {
            if let Some(node) = self.nodes.remove(&u.as_prefix()) {
                self.retired.insert(u.as_prefix(), node.key.version());
            }
            for level in (0..depth).rev() {
                let id = u.prefix(level);
                let child_digit = u.digit(level);
                if !self.nodes.contains_key(&id.child(child_digit)) {
                    self.nodes
                        .get_mut(&id)
                        .expect("ancestors of an unprocessed leaf always exist")
                        .children
                        .remove(&child_digit);
                }
                if self.nodes[&id].children.is_empty() {
                    let node = self.nodes.remove(&id).expect("node was just inspected");
                    self.retired.insert(id.clone(), node.key.version());
                    changed.remove(&id);
                } else {
                    changed.insert(id);
                }
            }
        }

        // "For each joining user u, the key server adds into the key tree a
        // u-node with ID u.ID. At each level i … a k-node with ID
        // u.ID[0 : i−1] is added if such a k-node does not exist."
        for u in joins {
            let leaf_key = fresh_key(&self.retired, u.as_prefix(), rng, &mut tombstone_hits);
            self.nodes.insert(
                u.as_prefix(),
                TreeNode {
                    key: leaf_key,
                    children: BTreeSet::new(),
                },
            );
            for level in (0..depth).rev() {
                let id = u.prefix(level);
                let node = match self.nodes.entry(id.clone()) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => e.insert(TreeNode {
                        key: fresh_key(&self.retired, id.clone(), rng, &mut tombstone_hits),
                        children: BTreeSet::new(),
                    }),
                };
                node.children.insert(u.digit(level));
                changed.insert(id);
            }
        }

        // "At the beginning of the next rekey interval, the key server
        // updates all the keys on the path from each newly joined or
        // departed u-node to the root, and then generates encryptions."
        for id in &changed {
            let node = self.nodes.get_mut(id).expect("changed node must exist");
            node.key = node.key.next_version(rng);
        }

        // One encryption per (changed k-node, child): the child's (possibly
        // new) key wraps the changed node's new key.
        let mut encryptions = Vec::new();
        // Deeper encrypting keys first so receivers can unwrap in one pass.
        let mut changed_sorted: Vec<&IdPrefix> = changed.iter().collect();
        changed_sorted.sort_by_key(|id| std::cmp::Reverse(id.len()));
        for id in changed_sorted {
            let node = &self.nodes[id];
            let new_key = node.key.clone();
            for &digit in &node.children {
                let child = &self.nodes[&id.child(digit)];
                encryptions.push(Encryption::seal(&child.key, &new_key, rng));
            }
        }
        if let Some(m) = &self.metrics {
            m.batch_size.record((joins.len() + leaves.len()) as u64);
            m.encryptions.add(encryptions.len() as u64);
            m.tombstone_hits.add(tombstone_hits);
        }
        Ok(RekeyOutcome {
            encryptions,
            updated: changed.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> IdSpec {
        IdSpec::new(2, 4).unwrap()
    }

    fn uid(digits: [u16; 2]) -> UserId {
        UserId::new(&spec(), digits.to_vec()).unwrap()
    }

    /// Builds the Fig. 1 / Fig. 4 example group.
    fn fig4_tree(rng: &mut StdRng) -> ModifiedKeyTree {
        let mut tree = ModifiedKeyTree::new(&spec());
        let joins: Vec<UserId> = [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
            .iter()
            .map(|d| uid(*d))
            .collect();
        tree.batch_rekey(&joins, &[], rng).unwrap();
        tree
    }

    #[test]
    fn structure_matches_id_tree() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = fig4_tree(&mut rng);
        let id_tree = IdTree::from_users(
            &spec(),
            [[0, 0], [0, 1], [2, 0], [2, 1], [2, 2]]
                .iter()
                .map(|d| uid(*d)),
        );
        assert!(tree.matches_id_tree(&id_tree));
        assert_eq!(tree.user_count(), 5);
        assert_eq!(tree.node_count(), 8);
    }

    /// The paper's worked example: u5 = [2,2] leaves; the server changes
    /// k1-5 → k1-4 and k345 → k34 and generates exactly four encryptions:
    /// {k1-4}k12, {k1-4}k34, {k34}k3, {k34}k4.
    #[test]
    fn fig4_single_leave_generates_four_encryptions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tree = fig4_tree(&mut rng);
        let out = tree.batch_rekey(&[], &[uid([2, 2])], &mut rng).unwrap();
        assert_eq!(out.cost(), 4);
        let mut ids: Vec<String> = out.encryptions.iter().map(|e| e.id().to_string()).collect();
        ids.sort();
        assert_eq!(ids, vec!["[0]", "[2,0]", "[2,1]", "[2]"]);
        // Updated nodes: the root and [2].
        let updated: Vec<String> = out.updated.iter().map(|p| p.to_string()).collect();
        assert_eq!(updated, vec!["[]", "[2]"]);
        assert!(!tree.contains_user(&uid([2, 2])));
    }

    #[test]
    fn users_hold_path_keys() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = fig4_tree(&mut rng);
        let keys = tree.user_path_keys(&uid([2, 2]));
        assert_eq!(keys.len(), 3); // individual, aux [2], group
        assert_eq!(keys[0].id().to_string(), "[2,2]");
        assert_eq!(keys[1].id().to_string(), "[2]");
        assert!(keys[2].id().is_empty());
        assert!(tree.user_path_keys(&uid([3, 3])).is_empty());
    }

    #[test]
    fn pure_join_rekeys_join_path_only() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut tree = fig4_tree(&mut rng);
        let old_group_version = tree.group_key().unwrap().version();
        let out = tree.batch_rekey(&[uid([0, 2])], &[], &mut rng).unwrap();
        // Updated: root and [0]. Encryptions: root under [0] and [2];
        // [0]-key under [0,0], [0,1], [0,2] ⇒ 5 total.
        assert_eq!(out.cost(), 5);
        assert_eq!(tree.group_key().unwrap().version(), old_group_version + 1);
        assert!(tree.contains_user(&uid([0, 2])));
    }

    #[test]
    fn leave_that_empties_subtree_prunes_nodes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut tree = fig4_tree(&mut rng);
        let out = tree
            .batch_rekey(&[], &[uid([0, 0]), uid([0, 1])], &mut rng)
            .unwrap();
        // Subtree [0] disappears entirely; only the root is updated, with a
        // single child [2] left ⇒ exactly one encryption.
        assert_eq!(out.cost(), 1);
        assert_eq!(out.encryptions[0].id().to_string(), "[2]");
        assert!(tree
            .key(&IdPrefix::new(&spec(), vec![0]).unwrap())
            .is_none());
        let id_tree = IdTree::from_users(&spec(), [[2, 0], [2, 1], [2, 2]].iter().map(|d| uid(*d)));
        assert!(tree.matches_id_tree(&id_tree));
    }

    /// A pruned node recreated at the same ID resumes its version counter
    /// past the retired value: a `(node ID, version)` pair must never name
    /// two different key materials over the tree's lifetime, or a receiver
    /// holding keys from the pruned incarnation (a departed member that
    /// has not yet learned of its departure) would be handed an encryption
    /// it believes it can open but cannot.
    #[test]
    fn recreated_nodes_resume_retired_versions() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tree = fig4_tree(&mut rng);
        let aux = IdPrefix::new(&spec(), vec![0]).unwrap();
        // Rekey a few intervals so [0]'s version advances past creation.
        tree.batch_rekey(&[], &[uid([0, 1])], &mut rng).unwrap();
        tree.batch_rekey(&[uid([0, 1])], &[], &mut rng).unwrap();
        let before = tree.key(&aux).unwrap().clone();
        assert!(before.version() >= 2);

        // Empty the subtree (pruning [0]), then recreate it; same for the
        // leaf [0,0] — same-ID u-node incarnations must not collide either.
        tree.batch_rekey(&[], &[uid([0, 0]), uid([0, 1])], &mut rng)
            .unwrap();
        assert!(tree.key(&aux).is_none());
        tree.batch_rekey(&[uid([0, 0])], &[], &mut rng).unwrap();

        let after = tree.key(&aux).unwrap();
        assert!(
            after.version() > before.version(),
            "recreated [0] must continue past version {} (got {})",
            before.version(),
            after.version()
        );
        assert_ne!(after.material(), before.material());
        let leaf = tree.key(&uid([0, 0]).as_prefix()).unwrap();
        assert!(leaf.version() > 0, "recreated u-node resumes versions too");
    }

    #[test]
    fn batch_validation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut tree = fig4_tree(&mut rng);
        assert_eq!(
            tree.batch_rekey(&[uid([0, 0])], &[], &mut rng),
            Err(KeyTreeError::AlreadyMember(uid([0, 0])))
        );
        assert_eq!(
            tree.batch_rekey(&[], &[uid([3, 3])], &mut rng),
            Err(KeyTreeError::NotMember(uid([3, 3])))
        );
        assert_eq!(
            tree.batch_rekey(&[uid([3, 3])], &[uid([3, 3])], &mut rng),
            Err(KeyTreeError::NotMember(uid([3, 3])))
        );
        assert_eq!(
            tree.batch_rekey(&[uid([3, 3]), uid([3, 3])], &[], &mut rng),
            Err(KeyTreeError::DuplicateRequest(uid([3, 3])))
        );
        // Tree unchanged after errors.
        assert_eq!(tree.user_count(), 5);
    }

    /// A joining user may be assigned the exact ID of a user leaving in the
    /// same interval: the slot is vacated first and all its path keys still
    /// change (forward secrecy for the leaver).
    #[test]
    fn id_reuse_within_one_batch() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut tree = fig4_tree(&mut rng);
        let old_individual = tree.key(&uid([2, 2]).as_prefix()).unwrap().clone();
        let old_group = tree.group_key().unwrap().clone();
        let out = tree
            .batch_rekey(&[uid([2, 2])], &[uid([2, 2])], &mut rng)
            .unwrap();
        assert!(out.cost() > 0);
        assert!(tree.contains_user(&uid([2, 2])));
        assert_eq!(tree.user_count(), 5);
        assert_ne!(tree.key(&uid([2, 2]).as_prefix()).unwrap(), &old_individual);
        assert_ne!(tree.group_key().unwrap(), &old_group);
    }

    #[test]
    fn empty_batch_is_a_noop_message() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut tree = fig4_tree(&mut rng);
        let out = tree.batch_rekey(&[], &[], &mut rng).unwrap();
        assert_eq!(out.cost(), 0);
        assert!(out.updated.is_empty());
    }

    #[test]
    fn last_user_leaving_empties_tree() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut tree = ModifiedKeyTree::new(&spec());
        tree.batch_rekey(&[uid([1, 1])], &[], &mut rng).unwrap();
        assert!(tree.group_key().is_some());
        let out = tree.batch_rekey(&[], &[uid([1, 1])], &mut rng).unwrap();
        assert_eq!(out.cost(), 0);
        assert_eq!(tree.node_count(), 0);
        assert!(tree.group_key().is_none());
    }

    #[test]
    fn metrics_record_batches_encryptions_and_tombstones() {
        let mut rng = StdRng::seed_from_u64(11);
        let registry = rekey_metrics::Registry::new();
        let mut tree = ModifiedKeyTree::new(&spec());
        tree.set_metrics(TreeMetrics::in_registry(&registry));

        let joins: Vec<UserId> = [[0, 0], [0, 1]].iter().map(|d| uid(*d)).collect();
        tree.batch_rekey(&joins, &[], &mut rng).unwrap();
        // Prune the [0] subtree, then recreate one leaf: the leaf, the aux
        // node [0], and the root all resume retired versions.
        tree.batch_rekey(&[], &joins, &mut rng).unwrap();
        let out = tree.batch_rekey(&[uid([0, 0])], &[], &mut rng).unwrap();

        let snap = registry.snapshot();
        let sizes = &snap.histograms["tree_batch_size"];
        assert_eq!(sizes.count, 3);
        assert_eq!(sizes.max, 2);
        assert!(snap.counters["tree_encryptions"] >= out.cost() as u64);
        assert_eq!(snap.counters["tree_tombstone_hits"], 3);

        // A checkpoint clone shares the series rather than forking it.
        let mut checkpoint = tree.clone();
        checkpoint
            .batch_rekey(&[uid([1, 1])], &[], &mut rng)
            .unwrap();
        assert_eq!(registry.snapshot().histograms["tree_batch_size"].count, 4);
    }

    #[test]
    fn encryptions_ordered_deep_to_shallow() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut tree = fig4_tree(&mut rng);
        let out = tree.batch_rekey(&[], &[uid([2, 2])], &mut rng).unwrap();
        let lens: Vec<usize> = out.encryptions.iter().map(|e| e.id().len()).collect();
        let mut sorted = lens.clone();
        sorted.sort_by_key(|&l| std::cmp::Reverse(l));
        assert_eq!(lens, sorted);
    }
}
