//! The original Wong–Gouda–Lam key tree [28] with the batch rekeying
//! algorithm of \[32\] — the baseline key tree of §4.2 and §4.3.
//!
//! Unlike the modified tree, the original tree has a fixed degree (4 is
//! optimal per \[28\] and used by the paper) and grows **vertically**; u-node
//! positions carry no ID structure, so "a joining u-node can take the
//! position of a departed u-node" (§4.2), which is exactly why its batch
//! rekey cost is lower than the modified tree's for mixed join/leave
//! batches (Fig. 12(b)).
//!
//! Keys here are abstract `(node, version)` pairs: the original tree's keys
//! have no stable IDs ("the IDs of a user's required keys keep changing",
//! §2.6), so the prefix-based `Encryption` type does not apply. What the
//! experiments need is the *rekey cost* (Fig. 12) and the per-user need
//! sets (Fig. 13), both of which [`OrigRekeyOutcome`] provides.

use std::collections::{HashMap, HashSet};

use rekey_id::UserId;

/// Stable identifier of a node slot in an [`OriginalKeyTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeIdx(pub usize);

#[derive(Debug, Clone)]
struct ONode {
    parent: Option<usize>,
    children: Vec<usize>,
    user: Option<UserId>,
    in_use: bool,
    version: u64,
}

/// One abstract encryption in the original tree's rekey message: the new
/// key of `target` wrapped under the (possibly new) key of `encrypting`.
/// A user needs it iff `encrypting` lies on the user's leaf-to-root path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrigEncryption {
    /// Node whose key encrypts (a child of `target`).
    pub encrypting: NodeIdx,
    /// Node whose new key is carried (an updated internal node).
    pub target: NodeIdx,
}

/// The result of one batch rekey interval on the original tree.
#[derive(Debug, Clone)]
pub struct OrigRekeyOutcome {
    /// All generated encryptions.
    pub encryptions: Vec<OrigEncryption>,
    /// Internal nodes whose keys changed.
    pub updated: Vec<NodeIdx>,
}

impl OrigRekeyOutcome {
    /// Rekey cost: encryptions in the message.
    pub fn cost(&self) -> usize {
        self.encryptions.len()
    }
}

/// A fixed-degree key tree with batch rekeying.
///
/// ```
/// use rekey_id::{IdSpec, UserId};
/// use rekey_keytree::OriginalKeyTree;
///
/// let spec = IdSpec::new(3, 4)?;
/// let users: Vec<UserId> = (0..16).map(|i| UserId::from_index(&spec, i)).collect();
/// let mut tree = OriginalKeyTree::balanced(4, &users);
/// // One leave in a full 16-leaf degree-4 tree updates two internal nodes:
/// // the parent (3 children left) and the root (4 children) ⇒ 7 encryptions.
/// let out = tree.batch_rekey(&[], &users[..1]);
/// assert_eq!(out.cost(), 3 + 4);
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OriginalKeyTree {
    degree: usize,
    nodes: Vec<ONode>,
    free: Vec<usize>,
    root: Option<usize>,
    users: HashMap<UserId, usize>,
}

impl OriginalKeyTree {
    /// Creates an empty tree of the given degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new(degree: usize) -> OriginalKeyTree {
        assert!(degree >= 2, "key tree degree must be at least 2");
        OriginalKeyTree {
            degree,
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            users: HashMap::new(),
        }
    }

    /// Builds a full, balanced tree over `users` (the paper's initial
    /// condition in §4.2: "we assume that the original key tree is full and
    /// balanced").
    ///
    /// # Panics
    ///
    /// Panics if `users` contains duplicates.
    pub fn balanced(degree: usize, users: &[UserId]) -> OriginalKeyTree {
        let mut tree = OriginalKeyTree::new(degree);
        if users.is_empty() {
            return tree;
        }
        let mut level: Vec<usize> = users.iter().map(|u| tree.alloc_leaf(u.clone())).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(degree));
            for chunk in level.chunks(degree) {
                let parent = tree.alloc_internal();
                for &child in chunk {
                    tree.attach(parent, child);
                }
                next.push(parent);
            }
            level = next;
        }
        tree.root = Some(level[0]);
        tree
    }

    fn alloc(&mut self, node: ONode) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn alloc_leaf(&mut self, user: UserId) -> usize {
        let idx = self.alloc(ONode {
            parent: None,
            children: Vec::new(),
            user: Some(user.clone()),
            in_use: true,
            version: 0,
        });
        let prev = self.users.insert(user, idx);
        assert!(prev.is_none(), "duplicate user in key tree");
        idx
    }

    fn alloc_internal(&mut self) -> usize {
        self.alloc(ONode {
            parent: None,
            children: Vec::new(),
            user: None,
            in_use: true,
            version: 0,
        })
    }

    fn attach(&mut self, parent: usize, child: usize) {
        debug_assert!(self.nodes[parent].children.len() < self.degree);
        self.nodes[parent].children.push(child);
        self.nodes[child].parent = Some(parent);
    }

    fn release(&mut self, idx: usize) {
        if let Some(user) = self.nodes[idx].user.take() {
            self.users.remove(&user);
        }
        self.nodes[idx].in_use = false;
        self.nodes[idx].children.clear();
        self.nodes[idx].parent = None;
        self.free.push(idx);
    }

    /// The tree degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of users (leaves).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// `true` iff `user` is in the tree.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.users.contains_key(user)
    }

    /// Height of the tree: edges on the longest root-to-leaf path.
    pub fn height(&self) -> usize {
        fn depth_of(nodes: &[ONode], idx: usize) -> usize {
            nodes[idx]
                .children
                .iter()
                .map(|&c| 1 + depth_of(nodes, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map_or(0, |r| depth_of(&self.nodes, r))
    }

    /// Node indices on `user`'s leaf-to-root path (leaf first) — the keys
    /// the user holds.
    pub fn user_path(&self, user: &UserId) -> Vec<NodeIdx> {
        let Some(&leaf) = self.users.get(user) else {
            return Vec::new();
        };
        let mut path = vec![NodeIdx(leaf)];
        let mut cursor = leaf;
        while let Some(p) = self.nodes[cursor].parent {
            path.push(NodeIdx(p));
            cursor = p;
        }
        path
    }

    /// Depth (root distance) of the node holding `user`, if present.
    pub fn user_depth(&self, user: &UserId) -> Option<usize> {
        let path = self.user_path(user);
        if path.is_empty() {
            None
        } else {
            Some(path.len() - 1)
        }
    }

    fn node_depth(&self, mut idx: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.nodes[idx].parent {
            d += 1;
            idx = p;
        }
        d
    }

    /// The shallowest attach point for a new leaf: an internal node with
    /// spare capacity, or the shallowest leaf (which will be split).
    fn find_attach_point(&self) -> Option<usize> {
        // BFS from the root; first internal node with < degree children
        // wins; otherwise the first leaf encountered (shallowest).
        let root = self.root?;
        let mut queue = std::collections::VecDeque::from([root]);
        let mut first_leaf = None;
        while let Some(idx) = queue.pop_front() {
            let node = &self.nodes[idx];
            if node.user.is_some() {
                if first_leaf.is_none() {
                    first_leaf = Some(idx);
                }
                continue;
            }
            if node.children.len() < self.degree {
                return Some(idx);
            }
            queue.extend(node.children.iter().copied());
        }
        first_leaf
    }

    /// Processes one batch of `joins` and `leaves` per the algorithm of
    /// \[32\]: joining u-nodes first take the positions of departed u-nodes;
    /// surplus joins attach at the shallowest spots (splitting a leaf when
    /// needed); surplus departures are pruned, splicing out single-child
    /// internals. Every internal node on an affected path gets a new key
    /// and produces one encryption per child.
    ///
    /// # Panics
    ///
    /// Panics if a join names a current member, a leave names a non-member,
    /// or a user appears twice in the batch.
    pub fn batch_rekey(&mut self, joins: &[UserId], leaves: &[UserId]) -> OrigRekeyOutcome {
        let mut join_set = HashSet::new();
        for u in joins {
            assert!(
                join_set.insert(u.clone()),
                "user {u} appears twice in the batch"
            );
        }
        let mut leave_set = HashSet::new();
        for u in leaves {
            assert!(
                leave_set.insert(u.clone()),
                "user {u} appears twice in the batch"
            );
            assert!(self.contains_user(u), "leave of non-member {u}");
        }
        for u in joins {
            assert!(
                !self.contains_user(u) || leave_set.contains(u),
                "join of current member {u}"
            );
        }

        let mut changed_parents: HashSet<usize> = HashSet::new();

        // A join that reuses the ID of a same-batch leave takes over that
        // exact slot: a fresh individual key in place, path rekeyed.
        let overlap: HashSet<UserId> = join_set.intersection(&leave_set).cloned().collect();
        for u in &overlap {
            let leaf = self.users[u];
            self.nodes[leaf].version += 1;
            changed_parents.insert(self.nodes[leaf].parent.unwrap_or(leaf));
        }
        let joins: Vec<UserId> = joins
            .iter()
            .filter(|u| !overlap.contains(u))
            .cloned()
            .collect();
        let leaves: Vec<UserId> = leaves
            .iter()
            .filter(|u| !overlap.contains(u))
            .cloned()
            .collect();
        let (joins, leaves) = (&joins[..], &leaves[..]);

        let mut departed: Vec<usize> = leaves.iter().map(|u| self.users[u]).collect();
        // Replace departed leaves closest to the root first (cheapest).
        departed.sort_by_key(|&idx| self.node_depth(idx));
        let mut joins_iter = joins.iter();

        // Phase 1: joins replace departed u-nodes in place.
        let replaced = departed.len().min(joins.len());
        for &leaf in departed.iter().take(replaced) {
            let user = joins_iter.next().expect("counted").clone();
            let old = self.nodes[leaf]
                .user
                .take()
                .expect("departed node is a leaf");
            self.users.remove(&old);
            self.nodes[leaf].user = Some(user.clone());
            self.nodes[leaf].version += 1; // fresh individual key
            self.users.insert(user, leaf);
            if let Some(p) = self.nodes[leaf].parent {
                changed_parents.insert(p);
            } else {
                changed_parents.insert(leaf);
            }
        }

        // Phase 2: surplus joins attach at the shallowest spots.
        for user in joins_iter {
            let leaf = self.alloc_leaf(user.clone());
            match self.find_attach_point() {
                None => {
                    // Empty tree: the new leaf becomes the root.
                    self.root = Some(leaf);
                }
                Some(spot) if self.nodes[spot].user.is_some() => {
                    // Split the leaf: it becomes an internal node with the
                    // old user and the new user as children.
                    let old_user = self.nodes[spot].user.take().expect("leaf");
                    let moved = self.alloc(ONode {
                        parent: Some(spot),
                        children: Vec::new(),
                        user: Some(old_user.clone()),
                        in_use: true,
                        version: 0,
                    });
                    self.users.insert(old_user, moved);
                    self.nodes[spot].children.push(moved);
                    self.attach(spot, leaf);
                    changed_parents.insert(spot);
                }
                Some(spot) => {
                    self.attach(spot, leaf);
                    changed_parents.insert(spot);
                }
            }
        }

        // Phase 3: surplus departures are pruned.
        for &leaf in departed.iter().skip(replaced) {
            let user = self.nodes[leaf]
                .user
                .clone()
                .expect("departed node is a leaf");
            let parent = self.nodes[leaf].parent;
            self.release(leaf);
            self.users.remove(&user);
            match parent {
                None => {
                    self.root = None;
                }
                Some(p) => {
                    self.nodes[p].children.retain(|&c| c != leaf);
                    self.compact(p, &mut changed_parents);
                }
            }
        }

        // Mark all ancestors of changed positions.
        let mut updated: HashSet<usize> = HashSet::new();
        for &start in &changed_parents {
            if !self.nodes[start].in_use {
                continue;
            }
            let mut cursor = Some(start);
            while let Some(idx) = cursor {
                if !updated.insert(idx) {
                    break;
                }
                cursor = self.nodes[idx].parent;
            }
        }
        // Only internal nodes carry group/auxiliary keys that need
        // redistribution; a leaf in `updated` (single-user tree) drops out.
        updated.retain(|&idx| self.nodes[idx].user.is_none());

        let mut updated: Vec<usize> = updated.into_iter().collect();
        // Deterministic order: by depth descending, then index.
        updated.sort_by_key(|&idx| (std::cmp::Reverse(self.node_depth(idx)), idx));
        let mut encryptions = Vec::new();
        for &idx in &updated {
            self.nodes[idx].version += 1;
            for &child in &self.nodes[idx].children {
                encryptions.push(OrigEncryption {
                    encrypting: NodeIdx(child),
                    target: NodeIdx(idx),
                });
            }
        }
        OrigRekeyOutcome {
            encryptions,
            updated: updated.into_iter().map(NodeIdx).collect(),
        }
    }

    /// Splices out `idx` if it has exactly one child; removes it if empty.
    fn compact(&mut self, idx: usize, changed: &mut HashSet<usize>) {
        match self.nodes[idx].children.len() {
            0 => {
                let parent = self.nodes[idx].parent;
                self.release(idx);
                changed.remove(&idx);
                match parent {
                    None => self.root = None,
                    Some(p) => {
                        self.nodes[p].children.retain(|&c| c != idx);
                        self.compact(p, changed);
                    }
                }
            }
            1 => {
                let child = self.nodes[idx].children[0];
                let parent = self.nodes[idx].parent;
                self.nodes[child].parent = parent;
                match parent {
                    None => {
                        self.root = Some(child);
                        changed.remove(&idx);
                        self.release(idx);
                        // The promoted child's subtree keys are unchanged,
                        // but the departed sibling knew the old parent key,
                        // which no longer exists — nothing to rekey here.
                    }
                    Some(p) => {
                        for c in self.nodes[p].children.iter_mut() {
                            if *c == idx {
                                *c = child;
                            }
                        }
                        changed.remove(&idx);
                        self.release(idx);
                        changed.insert(p);
                    }
                }
            }
            _ => {
                changed.insert(idx);
            }
        }
    }

    /// Checks structural invariants (parent/child symmetry, degree bound,
    /// user index accuracy). Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, n) in self.nodes.iter().enumerate() {
            if !n.in_use {
                continue;
            }
            if n.children.len() > self.degree {
                return Err(format!("node {i} exceeds degree"));
            }
            if n.user.is_some() && !n.children.is_empty() {
                return Err(format!("leaf {i} has children"));
            }
            for &c in &n.children {
                if self.nodes[c].parent != Some(i) {
                    return Err(format!("child {c} of {i} has wrong parent"));
                }
            }
        }
        for (u, &idx) in &self.users {
            if self.nodes[idx].user.as_ref() != Some(u) {
                return Err(format!("user index stale for {u}"));
            }
        }
        if let Some(r) = self.root {
            if self.nodes[r].parent.is_some() {
                return Err("root has a parent".into());
            }
            // Every in-use node must be reachable from the root.
            let mut seen = HashSet::new();
            let mut stack = vec![r];
            while let Some(idx) = stack.pop() {
                seen.insert(idx);
                stack.extend(self.nodes[idx].children.iter().copied());
            }
            let live = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.in_use)
                .count();
            if seen.len() != live {
                return Err(format!("{} live nodes, {} reachable", live, seen.len()));
            }
        } else if self.nodes.iter().any(|n| n.in_use) {
            return Err("no root but live nodes exist".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;

    fn users(n: usize) -> Vec<UserId> {
        let spec = IdSpec::new(5, 256).unwrap();
        (0..n as u64)
            .map(|i| UserId::from_index(&spec, i))
            .collect()
    }

    #[test]
    fn balanced_tree_shape() {
        let us = users(64);
        let tree = OriginalKeyTree::balanced(4, &us);
        assert_eq!(tree.user_count(), 64);
        assert_eq!(tree.height(), 3); // 4^3 = 64
        tree.check_invariants().unwrap();
        for u in &us {
            assert_eq!(tree.user_path(u).len(), 4);
        }
    }

    /// A single leave in a full balanced degree-d tree of N users updates
    /// log_d(N) keys and generates d·log_d(N) encryptions (minus the pruned
    /// leaf slot): with N = 64, d = 4, the leaving leaf's parent drops to 3
    /// children, so cost = 3 + 4 + 4 = 11.
    #[test]
    fn single_leave_cost_is_d_log_n() {
        let us = users(64);
        let mut tree = OriginalKeyTree::balanced(4, &us);
        let out = tree.batch_rekey(&[], &us[63..64]);
        assert_eq!(out.cost(), 3 + 4 + 4);
        assert_eq!(out.updated.len(), 3);
        tree.check_invariants().unwrap();
    }

    /// A join replacing a departed leaf touches only that path: cost is
    /// d·log_d(N) with all nodes at full degree.
    #[test]
    fn join_replaces_departed_leaf() {
        let us = users(64);
        let extra = users(65)[64].clone();
        let mut tree = OriginalKeyTree::balanced(4, &us);
        let out = tree.batch_rekey(std::slice::from_ref(&extra), &us[10..11]);
        assert_eq!(out.cost(), 4 + 4 + 4);
        assert!(tree.contains_user(&extra));
        assert!(!tree.contains_user(&us[10]));
        assert_eq!(tree.user_count(), 64);
        assert_eq!(tree.height(), 3, "replacement must not grow the tree");
        tree.check_invariants().unwrap();
    }

    #[test]
    fn surplus_join_splits_a_leaf_when_full() {
        let us = users(16);
        let extra = users(17)[16].clone();
        let mut tree = OriginalKeyTree::balanced(4, &us);
        let out = tree.batch_rekey(std::slice::from_ref(&extra), &[]);
        assert_eq!(tree.user_count(), 17);
        assert!(out.cost() > 0);
        assert_eq!(tree.user_depth(&extra), Some(3));
        tree.check_invariants().unwrap();
    }

    #[test]
    fn surplus_leaves_prune_and_splice() {
        let us = users(16);
        let mut tree = OriginalKeyTree::balanced(4, &us);
        // Remove three of the four users under one parent: parent splices.
        let out = tree.batch_rekey(&[], &us[0..3]);
        assert_eq!(tree.user_count(), 13);
        assert!(out.cost() > 0);
        tree.check_invariants().unwrap();
        // The surviving sibling moved up one level.
        assert_eq!(tree.user_depth(&us[3]), Some(1));
    }

    #[test]
    fn empty_then_refill() {
        let us = users(4);
        let mut tree = OriginalKeyTree::balanced(4, &us);
        tree.batch_rekey(&[], &us);
        assert_eq!(tree.user_count(), 0);
        tree.check_invariants().unwrap();
        let more = users(6)[4..6].to_vec();
        tree.batch_rekey(&more, &[]);
        assert_eq!(tree.user_count(), 2);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn mixed_batch_cost_below_sequential() {
        let us = users(256);
        let joins: Vec<UserId> = users(320)[256..].to_vec();
        let mut batch_tree = OriginalKeyTree::balanced(4, &us);
        let batch_cost = batch_tree.batch_rekey(&joins, &us[0..64]).cost();
        let mut seq_tree = OriginalKeyTree::balanced(4, &us);
        let mut seq_cost = 0;
        for (j, l) in joins.iter().zip(us[0..64].iter()) {
            seq_cost += seq_tree
                .batch_rekey(std::slice::from_ref(j), std::slice::from_ref(l))
                .cost();
        }
        assert!(
            batch_cost < seq_cost,
            "batching must aggregate path updates: {batch_cost} !< {seq_cost}"
        );
        batch_tree.check_invariants().unwrap();
    }

    #[test]
    fn encryption_need_follows_paths() {
        let us = users(64);
        let mut tree = OriginalKeyTree::balanced(4, &us);
        let out = tree.batch_rekey(&[], &us[0..1]);
        // A surviving user needs an encryption iff its encrypting node is on
        // the user's path.
        let path: HashSet<usize> = tree.user_path(&us[1]).into_iter().map(|n| n.0).collect();
        let needed: Vec<&OrigEncryption> = out
            .encryptions
            .iter()
            .filter(|e| path.contains(&e.encrypting.0))
            .collect();
        // Exactly one per updated ancestor of u1 that is on u1's path side.
        assert!(!needed.is_empty());
        assert!(needed.len() <= tree.user_path(&us[1]).len());
    }
}
