//! The pre-arena, `BTreeMap`-backed modified key tree, retained verbatim
//! as a **reference oracle** for the handle-based [`ModifiedKeyTree`].
//!
//! [`ReferenceKeyTree`] is the original ID-keyed implementation of §2.4:
//! every node lookup walks a `BTreeMap<IdPrefix, _>` keyed by full digit
//! strings. It is algorithmically identical to the arena tree — including
//! RNG draw order, so identically seeded batches produce *byte-identical*
//! outcomes — but pays an O(D log n) full-key comparison per access. The
//! equivalence property tests in `tests/arena_oracle.rs` churn both trees
//! in lockstep and compare everything: keys, encryptions, tombstone
//! resumes, structure.
//!
//! Do not use this type outside tests; it exists so the fast path always
//! has a slow, obviously-correct twin to answer to.
//!
//! [`ModifiedKeyTree`]: crate::ModifiedKeyTree

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;
use rekey_crypto::{Key, KeyMaterial, NonceSeq};
use rekey_id::{IdPrefix, IdSpec, IdTree, UserId};

use crate::batch::{RekeyArena, RekeyBatch};
use crate::modified::KeyTreeError;

#[derive(Debug, Clone)]
struct TreeNode {
    key: Key,
    /// Child digits; empty for u-nodes (full-length IDs).
    children: BTreeSet<u16>,
}

/// A key for a node being (re)created: version 0 for a first-time ID, or
/// one past the retired version when a node with this ID was pruned
/// before.
fn fresh_key<R: Rng + ?Sized>(retired: &BTreeMap<IdPrefix, u64>, id: IdPrefix, rng: &mut R) -> Key {
    match retired.get(&id) {
        Some(&v) => Key::new(id, v + 1, KeyMaterial::random(rng)),
        None => Key::random(id, rng),
    }
}

/// The ID-keyed reference implementation of the modified key tree — the
/// test oracle for [`ModifiedKeyTree`](crate::ModifiedKeyTree).
#[derive(Debug, Clone)]
pub struct ReferenceKeyTree {
    spec: IdSpec,
    nodes: BTreeMap<IdPrefix, TreeNode>,
    retired: BTreeMap<IdPrefix, u64>,
}

impl ReferenceKeyTree {
    /// Creates an empty tree.
    pub fn new(spec: &IdSpec) -> ReferenceKeyTree {
        ReferenceKeyTree {
            spec: *spec,
            nodes: BTreeMap::new(),
            retired: BTreeMap::new(),
        }
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// The current group key, if the group is non-empty.
    pub fn group_key(&self) -> Option<&Key> {
        self.key(&IdPrefix::root())
    }

    /// The key stored at ID-tree node `id`, if present.
    pub fn key(&self, id: &IdPrefix) -> Option<&Key> {
        self.nodes.get(id).map(|n| &n.key)
    }

    /// `true` iff `user` has a u-node in the tree.
    pub fn contains_user(&self, user: &UserId) -> bool {
        self.nodes.contains_key(&user.as_prefix())
    }

    /// Number of users (u-nodes).
    pub fn user_count(&self) -> usize {
        let depth = self.spec.depth();
        self.nodes.keys().filter(|p| p.len() == depth).count()
    }

    /// Total number of nodes (k-nodes and u-nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All keys on the path from `user`'s u-node to the root, u-node
    /// first; empty if the user is not a member.
    pub fn user_path_keys(&self, user: &UserId) -> Vec<Key> {
        if !self.contains_user(user) {
            return Vec::new();
        }
        (0..=self.spec.depth())
            .rev()
            .map(|l| self.nodes[&user.prefix(l)].key.clone())
            .collect()
    }

    /// Checks the structural invariant against the ID tree.
    pub fn matches_id_tree(&self, tree: &IdTree) -> bool {
        if self.nodes.len() != tree.node_count() {
            return false;
        }
        self.nodes.iter().all(|(id, node)| {
            tree.node(id)
                .is_some_and(|t| node.children.iter().copied().eq(t.child_digits()))
        })
    }

    fn validate_batch(&self, joins: &[UserId], leaves: &[UserId]) -> Result<(), KeyTreeError> {
        let mut seen = BTreeSet::new();
        for u in joins {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
        }
        let joining = seen;
        let mut seen = BTreeSet::new();
        for u in leaves {
            if !seen.insert(u.clone()) {
                return Err(KeyTreeError::DuplicateRequest(u.clone()));
            }
            if !self.contains_user(u) {
                return Err(KeyTreeError::NotMember(u.clone()));
            }
        }
        for u in &joining {
            if self.contains_user(u) && !seen.contains(u) {
                return Err(KeyTreeError::AlreadyMember(u.clone()));
            }
        }
        Ok(())
    }

    /// Processes one rekey interval exactly as
    /// [`ModifiedKeyTree::batch_rekey`](crate::ModifiedKeyTree::batch_rekey)
    /// does, drawing from `rng` in the same order, so identically seeded
    /// calls on both trees return identical outcomes.
    ///
    /// # Errors
    ///
    /// Rejects batches with duplicate users, joins of current members, or
    /// leaves of non-members; the tree is left unchanged on error.
    pub fn batch_rekey<'a, R: Rng + ?Sized>(
        &mut self,
        joins: &[UserId],
        leaves: &[UserId],
        rng: &mut R,
        arena: &'a mut RekeyArena,
    ) -> Result<RekeyBatch<'a>, KeyTreeError> {
        self.validate_batch(joins, leaves)?;
        arena.reset();
        let depth = self.spec.depth();
        let mut changed: BTreeSet<IdPrefix> = BTreeSet::new();

        for u in leaves {
            if let Some(node) = self.nodes.remove(&u.as_prefix()) {
                self.retired.insert(u.as_prefix(), node.key.version());
            }
            for level in (0..depth).rev() {
                let id = u.prefix(level);
                let child_digit = u.digit(level);
                if !self.nodes.contains_key(&id.child(child_digit)) {
                    self.nodes
                        .get_mut(&id)
                        .expect("ancestors of an unprocessed leaf always exist")
                        .children
                        .remove(&child_digit);
                }
                if self.nodes[&id].children.is_empty() {
                    let node = self.nodes.remove(&id).expect("node was just inspected");
                    self.retired.insert(id.clone(), node.key.version());
                    changed.remove(&id);
                } else {
                    changed.insert(id);
                }
            }
        }

        for u in joins {
            let leaf_key = fresh_key(&self.retired, u.as_prefix(), rng);
            self.nodes.insert(
                u.as_prefix(),
                TreeNode {
                    key: leaf_key,
                    children: BTreeSet::new(),
                },
            );
            for level in (0..depth).rev() {
                let id = u.prefix(level);
                let node = match self.nodes.entry(id.clone()) {
                    std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::btree_map::Entry::Vacant(e) => e.insert(TreeNode {
                        key: fresh_key(&self.retired, id.clone(), rng),
                        children: BTreeSet::new(),
                    }),
                };
                node.children.insert(u.digit(level));
                changed.insert(id);
            }
        }

        for id in &changed {
            let node = self.nodes.get_mut(id).expect("changed node must exist");
            node.key = node.key.next_version(rng);
        }

        // Emit in the same order as the fast tree: deep→shallow, ascending
        // ID within a depth. The per-batch nonce seed is drawn once, after
        // every key draw — identical RNG consumption to
        // `ModifiedKeyTree::batch_rekey`, so identically seeded calls
        // produce byte-identical batches.
        let mut changed_sorted: Vec<&IdPrefix> = changed.iter().collect();
        changed_sorted.sort_by_key(|id| std::cmp::Reverse(id.len()));
        let total: usize = changed_sorted
            .iter()
            .map(|id| self.nodes[*id].children.len())
            .sum();
        let seq = if total == 0 {
            NonceSeq::from_seed([0; 32])
        } else {
            NonceSeq::from_rng(rng)
        };
        arena.ensure_slots(total);
        let mut slot = 0usize;
        for id in changed_sorted {
            let node = &self.nodes[id];
            for &digit in &node.children {
                let child = &self.nodes[&id.child(digit)];
                arena.encryptions[slot].seal_into(&child.key, &node.key, seq.nonce(slot as u64));
                slot += 1;
            }
        }
        for id in &changed {
            arena.push_updated(id);
        }
        Ok(RekeyBatch::new(arena))
    }
}
