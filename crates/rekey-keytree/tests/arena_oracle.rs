//! Equivalence property tests: the arena-backed [`ModifiedKeyTree`]
//! against the retained `BTreeMap` reference oracle
//! ([`ReferenceKeyTree`]), churned in lockstep with identical RNG seeds.
//!
//! Both implementations draw from their RNG in the same order, so the
//! comparison is total: not just structure and versions but key material
//! and encryption ciphertexts must match byte for byte, across random
//! join/leave/crash schedules that exercise pruning, slot reuse, and the
//! tombstone version-resume path.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ModifiedKeyTree, ReferenceKeyTree, RekeyArena};

fn spec() -> IdSpec {
    // A deliberately small ID space (27 IDs) so churn recreates pruned
    // node IDs often, hammering the tombstone map on both sides.
    IdSpec::new(3, 3).unwrap()
}

/// One churn interval: joins, graceful leaves, and crashes. A crash is a
/// member removed without having announced anything — at the key-tree
/// level it rekeys exactly like a leave (the server prunes the u-node and
/// changes the path keys), which is precisely what both implementations
/// must agree on.
struct Interval {
    joins: Vec<UserId>,
    leaves: Vec<UserId>,
    crashes: Vec<UserId>,
}

/// Interprets a byte stream as a churn schedule: per interval up to 3
/// joins (absent IDs), 2 leaves and 2 crashes (present IDs).
fn schedule(bytes: &[u8]) -> Vec<Interval> {
    let s = spec();
    let mut present: std::collections::BTreeSet<u64> = Default::default();
    let mut intervals = Vec::new();
    for chunk in bytes.chunks(7) {
        let mut joins: std::collections::BTreeSet<u64> = Default::default();
        let mut gone: std::collections::BTreeSet<u64> = Default::default();
        let mut leaves = Vec::new();
        let mut crashes = Vec::new();
        for (i, &b) in chunk.iter().enumerate() {
            let idx = u64::from(b) % s.id_space();
            if i < 3 {
                if !present.contains(&idx) && joins.insert(idx) {
                    present.insert(idx);
                }
            } else if present.contains(&idx) && !joins.contains(&idx) && gone.insert(idx) {
                present.remove(&idx);
                if i < 5 {
                    leaves.push(idx);
                } else {
                    crashes.push(idx);
                }
            }
        }
        let to_ids = |v: Vec<u64>| -> Vec<UserId> {
            v.into_iter().map(|i| UserId::from_index(&s, i)).collect()
        };
        intervals.push(Interval {
            joins: joins
                .into_iter()
                .map(|i| UserId::from_index(&s, i))
                .collect(),
            leaves: to_ids(leaves),
            crashes: to_ids(crashes),
        });
    }
    intervals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full-outcome equivalence: same seed, same batches ⇒ identical
    /// rekey messages, identical keys, identical structure — including
    /// after prune/recreate cycles (tombstone version resumes).
    #[test]
    fn arena_matches_reference_oracle(bytes in vec(any::<u8>(), 0..140), seed in 0u64..1000) {
        let s = spec();
        let mut arena_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut arena = ModifiedKeyTree::new(&s);
        let mut oracle = ReferenceKeyTree::new(&s);
        let mut arena_scratch = RekeyArena::new();
        let mut oracle_scratch = RekeyArena::new();
        for iv in schedule(&bytes) {
            // Crashes reach the server as failure notices and enter the
            // same batch as ordinary leaves.
            let mut departed = iv.leaves.clone();
            departed.extend(iv.crashes.iter().cloned());
            let a = arena
                .batch_rekey(&iv.joins, &departed, &mut arena_rng, &mut arena_scratch)
                .unwrap();
            let o = oracle
                .batch_rekey(&iv.joins, &departed, &mut oracle_rng, &mut oracle_scratch)
                .unwrap();
            prop_assert_eq!(&a, &o, "outcomes diverged");
            prop_assert_eq!(arena.node_count(), oracle.node_count());
            prop_assert_eq!(arena.user_count(), oracle.user_count());
            prop_assert_eq!(arena.group_key(), oracle.group_key());
            // Every member's path keys agree (IDs, versions, material),
            // and every encryption names a key version the arena tree can
            // produce through its handle API.
            for u in (0..s.id_space()).map(|i| UserId::from_index(&s, i)) {
                prop_assert_eq!(arena.contains_user(&u), oracle.contains_user(&u));
                let via_arena: Vec<_> = arena.user_path_keys(&u).cloned().collect();
                prop_assert_eq!(via_arena, oracle.user_path_keys(&u));
                if let Some(h) = arena.user_handle(&u) {
                    prop_assert_eq!(
                        arena.path_keys_at(h).cloned().collect::<Vec<_>>(),
                        oracle.user_path_keys(&u)
                    );
                }
            }
        }
    }

    /// Error behavior matches too: invalid batches are rejected with the
    /// same error by both implementations, leaving both trees unchanged.
    #[test]
    fn arena_matches_reference_errors(bytes in vec(any::<u8>(), 7..70), seed in 0u64..200) {
        let s = spec();
        let mut arena_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut arena = ModifiedKeyTree::new(&s);
        let mut oracle = ReferenceKeyTree::new(&s);
        let mut arena_scratch = RekeyArena::new();
        let mut oracle_scratch = RekeyArena::new();
        for chunk in bytes.chunks(4) {
            // Build deliberately unvalidated batches straight from bytes:
            // duplicates, joins of members, leaves of strangers included.
            let ids: Vec<UserId> = chunk
                .iter()
                .map(|&b| UserId::from_index(&s, u64::from(b) % s.id_space()))
                .collect();
            let (joins, leaves) = ids.split_at(ids.len() / 2);
            let a = arena.batch_rekey(joins, leaves, &mut arena_rng, &mut arena_scratch);
            let o = oracle.batch_rekey(joins, leaves, &mut oracle_rng, &mut oracle_scratch);
            prop_assert_eq!(a.is_err(), o.is_err());
            if let (Err(ae), Err(oe)) = (&a, &o) {
                prop_assert_eq!(ae, oe);
            }
            prop_assert_eq!(arena.group_key(), oracle.group_key());
            prop_assert_eq!(arena.node_count(), oracle.node_count());
        }
    }
}

/// Deterministic spot check of the tombstone path: prune a whole subtree,
/// recreate the same IDs, and require both trees to resume versions past
/// the retired values in lockstep.
#[test]
fn tombstone_resume_in_lockstep() {
    let s = spec();
    let mut arena_rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut arena = ModifiedKeyTree::new(&s);
    let mut oracle = ReferenceKeyTree::new(&s);
    let mut arena_scratch = RekeyArena::new();
    let mut oracle_scratch = RekeyArena::new();
    let a0 = UserId::new(&s, vec![0, 0, 0]).unwrap();
    let a1 = UserId::new(&s, vec![0, 0, 1]).unwrap();
    let b = UserId::new(&s, vec![1, 0, 0]).unwrap();
    for (joins, leaves) in [
        (vec![a0.clone(), a1.clone(), b.clone()], vec![]),
        (vec![], vec![a0.clone(), a1.clone()]), // prunes subtree [0]
        (vec![a0.clone()], vec![]),             // recreates [0], [0,0], [0,0,0]
        (vec![], vec![a0.clone()]),
        (vec![a0.clone()], vec![]), // second resume of the same IDs
    ] {
        let a = arena
            .batch_rekey(&joins, &leaves, &mut arena_rng, &mut arena_scratch)
            .unwrap();
        let o = oracle
            .batch_rekey(&joins, &leaves, &mut oracle_rng, &mut oracle_scratch)
            .unwrap();
        assert_eq!(a, o);
    }
    let leaf = arena.user_handle(&a0).unwrap();
    assert!(
        arena.key_at(leaf).version() >= 2,
        "third incarnation of [0,0,0] must sit past two retirements, got v{}",
        arena.key_at(leaf).version()
    );
    assert_eq!(
        arena.key_at(leaf),
        oracle.key(&a0.as_prefix()).unwrap(),
        "resumed versions and material agree"
    );
}
