//! Property tests: the three key trees under arbitrary churn sequences.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdSpec, IdTree, UserId};
use rekey_keytree::{ClusteredKeyTree, KeyRing, ModifiedKeyTree, OriginalKeyTree, RekeyArena};

fn spec() -> IdSpec {
    IdSpec::new(3, 4).unwrap()
}

/// Interprets a byte stream as a churn schedule over a 64-ID universe:
/// each interval takes up to 4 joins (IDs not in the group) and up to 4
/// leaves (IDs in the group).
fn schedule(bytes: &[u8]) -> Vec<(Vec<UserId>, Vec<UserId>)> {
    let s = spec();
    let mut present: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut intervals = Vec::new();
    for chunk in bytes.chunks(8) {
        let mut joins: std::collections::BTreeSet<u64> = Default::default();
        let mut leaves: std::collections::BTreeSet<u64> = Default::default();
        for (i, &b) in chunk.iter().enumerate() {
            let idx = u64::from(b) % s.id_space();
            if i % 2 == 0 {
                // Join: only IDs that are absent and not already joining.
                if !present.contains(&idx) && joins.insert(idx) {
                    present.insert(idx);
                }
            } else {
                // Leave: only IDs present before this interval.
                if present.contains(&idx) && !joins.contains(&idx) && leaves.insert(idx) {
                    present.remove(&idx);
                }
            }
        }
        let to_ids = |set: std::collections::BTreeSet<u64>| -> Vec<UserId> {
            set.into_iter().map(|i| UserId::from_index(&s, i)).collect()
        };
        intervals.push((to_ids(joins), to_ids(leaves)));
    }
    intervals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The modified key tree's structure equals the ID tree of the current
    /// membership after every interval (the §2.4 invariant), and every
    /// member holds D+1 path keys.
    #[test]
    fn modified_tree_tracks_id_tree(bytes in vec(any::<u8>(), 0..96), seed in 0u64..1000) {
        let s = spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = ModifiedKeyTree::new(&s);
        let mut arena = RekeyArena::new();
        let mut members: std::collections::BTreeSet<UserId> = Default::default();
        for (joins, leaves) in schedule(&bytes) {
            tree.batch_rekey(&joins, &leaves, &mut rng, &mut arena).unwrap();
            // Leaves apply before joins (a join may reuse a leaver's ID).
            for l in leaves { members.remove(&l); }
            for j in joins { members.insert(j); }
            let id_tree = IdTree::from_users(&s, members.iter().cloned());
            prop_assert!(tree.matches_id_tree(&id_tree));
            prop_assert_eq!(tree.user_count(), members.len());
            for m in &members {
                prop_assert_eq!(tree.user_path_keys(m).count(), s.depth() + 1);
            }
        }
    }

    /// A tracked user's key ring, fed the full rekey message each interval,
    /// always converges to the server's path keys — across arbitrarily many
    /// intervals.
    #[test]
    fn keyring_follows_server_over_arbitrary_churn(
        bytes in vec(any::<u8>(), 8..96),
        seed in 0u64..1000,
    ) {
        let s = spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = ModifiedKeyTree::new(&s);
        // Pin one tracked member that never leaves.
        let tracked = UserId::from_index(&s, 63);
        let mut arena = RekeyArena::new();
        tree.batch_rekey(std::slice::from_ref(&tracked), &[], &mut rng, &mut arena).unwrap();
        let mut ring = KeyRing::new(tracked.clone(), tree.user_path_keys(&tracked));
        for (joins, leaves) in schedule(&bytes) {
            let joins: Vec<UserId> =
                joins.into_iter().filter(|u| *u != tracked && !tree.contains_user(u)).collect();
            let leaves: Vec<UserId> =
                leaves.into_iter().filter(|u| *u != tracked && tree.contains_user(u)).collect();
            let out = tree.batch_rekey(&joins, &leaves, &mut rng, &mut arena).unwrap();
            ring.absorb(out.encryptions());
            prop_assert!(ring.matches_path(&s, tree.user_path_keys(&tracked)));
        }
    }

    /// The original key tree keeps its structural invariants and exact
    /// membership under arbitrary churn.
    #[test]
    fn original_tree_invariants_under_churn(bytes in vec(any::<u8>(), 0..96)) {
        let mut tree = OriginalKeyTree::new(4);
        let mut members: std::collections::BTreeSet<UserId> = Default::default();
        for (joins, leaves) in schedule(&bytes) {
            tree.batch_rekey(&joins, &leaves);
            for l in leaves { members.remove(&l); }
            for j in joins { members.insert(j); }
            prop_assert_eq!(tree.user_count(), members.len());
            tree.check_invariants().map_err(TestCaseError::fail)?;
            for m in &members {
                prop_assert!(tree.contains_user(m));
                prop_assert!(!tree.user_path(m).is_empty());
            }
        }
    }

    /// The clustered tree: membership is exact, every cluster's leader is
    /// the earliest-joined member, and only leaders have u-nodes.
    #[test]
    fn clustered_tree_leader_invariants(bytes in vec(any::<u8>(), 0..96), seed in 0u64..1000) {
        let s = spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = ClusteredKeyTree::new(&s);
        let mut arena = RekeyArena::new();
        let mut members: std::collections::BTreeSet<UserId> = Default::default();
        for (joins, leaves) in schedule(&bytes) {
            tree.batch_rekey(&joins, &leaves, &mut rng, &mut arena).unwrap();
            for l in leaves { members.remove(&l); }
            for j in joins { members.insert(j); }
            prop_assert_eq!(tree.user_count(), members.len());
            let mut leaders = 0;
            for m in &members {
                prop_assert!(tree.contains_user(m));
                let leader = tree.leader_of(m).expect("cluster exists").clone();
                prop_assert!(members.contains(&leader));
                prop_assert!(tree.tree().contains_user(&leader), "leader has a u-node");
                if tree.is_leader(m) {
                    leaders += 1;
                }
            }
            prop_assert_eq!(tree.tree().user_count(), leaders, "u-nodes are exactly the leaders");
        }
    }

    /// Cost relation at scale-free level: for leave-only batches the
    /// modified tree never costs less than the original when both start
    /// from the same full membership (the Fig. 12(b) direction).
    #[test]
    fn leave_only_cost_ordering(leave_picks in vec(0usize..48, 1..16), seed in 0u64..1000) {
        let s = spec();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let all: Vec<UserId> = (0..48).map(|i| UserId::from_index(&s, i)).collect();
        let mut modified = ModifiedKeyTree::new(&s);
        let mut arena = RekeyArena::new();
        modified.batch_rekey(&all, &[], &mut rng, &mut arena).unwrap();
        let mut original = OriginalKeyTree::balanced(4, &all);
        let mut leaves: Vec<UserId> =
            leave_picks.iter().map(|&i| all[i].clone()).collect();
        leaves.sort();
        leaves.dedup();
        let m = modified.batch_rekey(&[], &leaves, &mut rng, &mut arena).unwrap().cost();
        let o = original.batch_rekey(&[], &leaves).cost();
        // Identical D and degree-4 structure over a 48-leaf universe:
        // allow a small constant slack for pruning differences.
        prop_assert!(m + 4 >= o, "modified {} must not undercut original {} materially", m, o);
    }
}
