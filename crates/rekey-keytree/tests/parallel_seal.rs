//! The parallel seal pipeline against its serial twin: identically seeded
//! batches must be **byte-identical** at any seal-thread count, because
//! nonces are derived per job slot from one per-batch seed instead of
//! being drawn from the RNG mid-seal. These tests pin that contract at
//! batch sizes above the parallelism threshold (1024 jobs), where the
//! scoped-thread path actually runs, and below it, where sealing stays
//! serial — plus the arena-reuse regression: a big interval followed by a
//! small one into the same arena must leave no stale slots visible.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_id::{IdSpec, UserId};
use rekey_keytree::{ModifiedKeyTree, ReferenceKeyTree, RekeyArena, TreeMetrics};

/// 4096 IDs: enough for a batch whose seal-job count clears the
/// parallelism threshold.
fn big_spec() -> IdSpec {
    IdSpec::new(3, 16).unwrap()
}

fn ids(spec: &IdSpec, range: std::ops::Range<u64>) -> Vec<UserId> {
    range.map(|i| UserId::from_index(spec, i)).collect()
}

/// Runs the same two-interval churn (a 1200-user bootstrap, then mixed
/// joins + leaves) at the given thread count and returns both batches'
/// bytes.
type BatchBytes = (Vec<rekey_crypto::Encryption>, Vec<rekey_id::IdPrefix>);

fn run_at(threads: usize) -> (BatchBytes, BatchBytes) {
    let spec = big_spec();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
    let mut tree = ModifiedKeyTree::new(&spec);
    tree.set_seal_threads(threads);
    let mut arena = RekeyArena::new();

    let bootstrap = ids(&spec, 0..1200);
    let first = {
        let out = tree
            .batch_rekey(&bootstrap, &[], &mut rng, &mut arena)
            .unwrap();
        assert!(
            out.cost() >= 1024,
            "bootstrap batch must clear the parallel threshold, got {}",
            out.cost()
        );
        (out.encryptions().to_vec(), out.updated().to_vec())
    };

    let joins = ids(&spec, 1200..1450);
    let leaves = ids(&spec, 0..300);
    let second = {
        let out = tree
            .batch_rekey(&joins, &leaves, &mut rng, &mut arena)
            .unwrap();
        (out.encryptions().to_vec(), out.updated().to_vec())
    };
    (first, second)
}

/// Above the threshold, 2/4/8 worker threads and `0` (one per core) all
/// produce the bytes the serial path produces.
#[test]
fn seal_is_byte_identical_at_any_thread_count() {
    let serial = run_at(1);
    for threads in [2, 4, 8, 0] {
        let parallel = run_at(threads);
        assert_eq!(
            serial, parallel,
            "threads={threads} diverged from the serial seal"
        );
    }
}

/// The parallel path also agrees with the `BTreeMap` reference oracle,
/// which has no job list, no arena reuse, and no threads at all.
#[test]
fn parallel_seal_matches_reference_oracle_above_threshold() {
    let spec = big_spec();
    let mut fast_rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
    let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(0xFACE);
    let mut fast = ModifiedKeyTree::new(&spec);
    fast.set_seal_threads(8);
    let mut oracle = ReferenceKeyTree::new(&spec);
    let mut fast_arena = RekeyArena::new();
    let mut oracle_arena = RekeyArena::new();

    let bootstrap = ids(&spec, 0..1100);
    let joins = ids(&spec, 1100..1250);
    let leaves = ids(&spec, 50..250);
    for (joins, leaves) in [(bootstrap, vec![]), (joins, leaves)] {
        let a = fast
            .batch_rekey(&joins, &leaves, &mut fast_rng, &mut fast_arena)
            .unwrap();
        let o = oracle
            .batch_rekey(&joins, &leaves, &mut oracle_rng, &mut oracle_arena)
            .unwrap();
        assert_eq!(a, o, "parallel fast tree diverged from the serial oracle");
    }
    assert_eq!(fast.group_key(), oracle.group_key());
}

/// A large interval followed by a small one into the *same* arena: the
/// small batch's view must match a fresh arena's bytes exactly, and its
/// slices must not leak slots still holding the big interval's output.
#[test]
fn arena_reuse_exposes_no_stale_slots() {
    let spec = big_spec();
    let run = |reuse: bool| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xA5A5);
        let mut tree = ModifiedKeyTree::new(&spec);
        let mut arena = RekeyArena::new();
        let bootstrap = ids(&spec, 0..1200);
        let big_cost = tree
            .batch_rekey(&bootstrap, &[], &mut rng, &mut arena)
            .unwrap()
            .cost();
        let mut small_arena = RekeyArena::new();
        let arena = if reuse { &mut arena } else { &mut small_arena };
        let out = tree
            .batch_rekey(&[], &ids(&spec, 7..8), &mut rng, arena)
            .unwrap();
        assert!(out.cost() < big_cost, "the second interval must be smaller");
        assert_eq!(out.encryptions().len(), out.cost());
        assert_eq!(out.updated().len(), spec.depth());
        (out.encryptions().to_vec(), out.updated().to_vec())
    };
    assert_eq!(
        run(true),
        run(false),
        "a reused arena must be indistinguishable from a fresh one"
    );
}

/// The `tree_encryptions` counter is derived from the returned batch in
/// one place, so it equals the exact sum of `cost()` over all intervals —
/// no double count, no drift between the metric and the API.
#[test]
fn metrics_counter_equals_sum_of_batch_costs() {
    let spec = IdSpec::new(3, 4).unwrap();
    let registry = rekey_metrics::Registry::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut tree = ModifiedKeyTree::new(&spec);
    tree.set_metrics(TreeMetrics::in_registry(&registry));
    let mut arena = RekeyArena::new();

    let mut total = 0u64;
    let all = ids(&spec, 0..40);
    for (joins, leaves) in [
        (&all[..25], &all[..0]),
        (&all[25..40], &all[..10]),
        (&all[..0], &all[12..20]),
        (&all[..0], &all[..0]), // empty interval: cost 0, counted as 0
    ] {
        total += tree
            .batch_rekey(joins, leaves, &mut rng, &mut arena)
            .unwrap()
            .cost() as u64;
    }
    assert_eq!(
        registry.snapshot().counters["tree_encryptions"],
        total,
        "counter must equal the summed batch costs exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Below the threshold the seal stays serial regardless of the
    /// setting, and every thread count agrees with the reference oracle
    /// across random churn schedules.
    #[test]
    fn any_thread_count_matches_oracle_on_small_batches(
        bytes in vec(any::<u8>(), 0..120),
        seed in 0u64..500,
        threads in prop_oneof![Just(0usize), Just(2usize), Just(4usize), Just(8usize)],
    ) {
        let spec = IdSpec::new(3, 3).unwrap();
        let mut fast_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut oracle_rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut fast = ModifiedKeyTree::new(&spec);
        fast.set_seal_threads(threads);
        let mut oracle = ReferenceKeyTree::new(&spec);
        let mut fast_arena = RekeyArena::new();
        let mut oracle_arena = RekeyArena::new();

        let mut present: std::collections::BTreeSet<u64> = Default::default();
        for chunk in bytes.chunks(6) {
            let mut joins = Vec::new();
            let mut leaves = Vec::new();
            for (i, &b) in chunk.iter().enumerate() {
                let idx = u64::from(b) % spec.id_space();
                let user = UserId::from_index(&spec, idx);
                if i % 2 == 0 {
                    if present.insert(idx) {
                        joins.push(user);
                    }
                } else if !joins.contains(&user) && present.remove(&idx) {
                    leaves.push(user);
                }
            }
            let a = fast
                .batch_rekey(&joins, &leaves, &mut fast_rng, &mut fast_arena)
                .unwrap();
            let o = oracle
                .batch_rekey(&joins, &leaves, &mut oracle_rng, &mut oracle_arena)
                .unwrap();
            prop_assert_eq!(a, o);
        }
    }
}
