//! Log₂-scaled histograms with linear sub-buckets per octave.
//!
//! Values below [`SUB_BUCKETS`] get exact unit buckets; above that, each
//! power-of-two octave is divided into [`SUB_BUCKETS`] equal sub-buckets,
//! so the relative bucket width never exceeds `1 / SUB_BUCKETS` (12.5 %).
//! Recording is O(1) (a leading-zeros count and two shifts) and the whole
//! store is integers, so snapshots are `Eq` and identically seeded runs
//! produce identical distributions.

use std::cell::RefCell;
use std::rc::Rc;

use crate::json;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = 3; // log2(SUB_BUCKETS)

/// The bucket index a value lands in. Total order: `bucket_index` is
/// monotone in `v`, and buckets tile `0..=u64::MAX` without gaps.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) & (SUB_BUCKETS - 1);
    ((u64::from(octave) - u64::from(SUB_BITS) + 1) * SUB_BUCKETS + sub) as usize
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        return i as u64;
    }
    let octave_off = (i as u64 / SUB_BUCKETS) as u32;
    let sub = i as u64 % SUB_BUCKETS;
    (SUB_BUCKETS + sub) << (octave_off - 1)
}

/// Width of bucket `i` (its values span `lower .. lower + width`).
pub fn bucket_width(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        return 1;
    }
    1u64 << (i as u64 / SUB_BUCKETS - 1)
}

#[derive(Debug, Clone, Default)]
struct Store {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Store {
    fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self.buckets.clone(),
        }
    }
}

/// A histogram handle. Cloning shares the store; `record` is O(1).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<Store>>);

impl Histogram {
    /// An empty histogram (usually obtained via
    /// [`Registry::histogram`](crate::Registry::histogram)).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.borrow().snapshot()
    }
}

/// A single-owner histogram with the same bucketing as [`Histogram`] but
/// no shared handle: plain data, `Send`, made for per-shard accumulation
/// inside multi-threaded executors. Each shard records into its own
/// `LocalHistogram`; after the workers join, the coordinator merges them
/// in a deterministic order and snapshots the union.
#[derive(Debug, Clone, Default)]
pub struct LocalHistogram(Store);

impl LocalHistogram {
    /// An empty local histogram.
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.0.record(v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count
    }

    /// Folds `other`'s counts into this histogram. Bucket counts and sums
    /// add; min/max extend. Merging is commutative, so any deterministic
    /// shard order yields the same result.
    pub fn merge(&mut self, other: &LocalHistogram) {
        let o = &other.0;
        if o.count == 0 {
            return;
        }
        if self.0.buckets.len() < o.buckets.len() {
            self.0.buckets.resize(o.buckets.len(), 0);
        }
        for (b, &n) in self.0.buckets.iter_mut().zip(o.buckets.iter()) {
            *b += n;
        }
        if self.0.count == 0 {
            self.0.min = o.min;
            self.0.max = o.max;
        } else {
            self.0.min = self.0.min.min(o.min);
            self.0.max = self.0.max.max(o.max);
        }
        self.0.count += o.count;
        self.0.sum = self.0.sum.wrapping_add(o.sum);
    }

    /// A point-in-time copy of the distribution, identical in form to
    /// [`Histogram::snapshot`].
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

/// An `Eq` point-in-time copy of a [`Histogram`]: integer counts only,
/// with percentiles computed on demand by linear interpolation inside the
/// covering bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (wrapping).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated within
    /// the covering bucket and clamped to the recorded `[min, max]`.
    /// Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let lower = bucket_lower(i);
                let width = bucket_width(i);
                let v = lower as f64 + frac * width as f64;
                return (v.round() as u64).clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Median (interpolated).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (interpolated).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (interpolated).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Writes the summary fields (`count`, `sum`, `min`, `max`, `mean`,
    /// `p50`, `p95`, `p99`) into an open JSON object.
    pub fn write_fields(&self, w: &mut json::Writer) {
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", self.min);
        w.field_u64("max", self.max);
        w.field_f64("mean", self.mean(), 2);
        w.field_u64("p50", self.p50());
        w.field_u64("p95", self.p95());
        w.field_u64("p99", self.p99());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower(i), v);
            assert_eq!(bucket_width(i), 1);
        }
    }

    #[test]
    fn buckets_tile_the_domain_without_gaps() {
        // Every bucket's end is the next bucket's lower bound, and every
        // value maps into the bucket whose range contains it.
        for i in 0..200 {
            assert_eq!(
                bucket_lower(i) + bucket_width(i),
                bucket_lower(i + 1),
                "bucket {i} does not abut bucket {}",
                i + 1
            );
        }
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let lower = bucket_lower(i);
            assert!(lower <= v, "value {v} below its bucket {i}");
            if bucket_width(i) < u64::MAX - lower {
                assert!(v < lower + bucket_width(i), "value {v} above bucket {i}");
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_at_octave_edges() {
        let mut prev = bucket_index(0);
        for v in 1..4096u64 {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for v in [100u64, 1000, 1 << 20, 1 << 50] {
            let i = bucket_index(v);
            let rel = bucket_width(i) as f64 / bucket_lower(i) as f64;
            assert!(
                rel <= 1.0 / SUB_BUCKETS as f64 + 1e-12,
                "width {rel} at {v}"
            );
        }
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in 0..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(1.0), 100);
        // Bucketed p50 of 0..=100 must land within one bucket width (≤ 8
        // at this magnitude) of the exact median.
        let p50 = s.p50();
        assert!((44..=57).contains(&p50), "p50 = {p50}");
        // Monotone in q.
        assert!(s.percentile(0.25) <= p50);
        assert!(p50 <= s.p95());
        assert!(s.p95() <= s.p99());
    }

    #[test]
    fn single_value_histogram_collapses_to_that_value() {
        let h = Histogram::new();
        h.record(12345);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 12345, "q = {q}");
        }
        assert_eq!(s.mean(), 12345.0);
    }

    #[test]
    fn interpolation_splits_a_wide_bucket() {
        // 1024 lands in bucket [1024, 1152): one sample, so q sweeps the
        // bucket linearly — but clamping to [min, max] pins it back.
        let h = Histogram::new();
        h.record(1024);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.p50(), 1024);
        // Two distinct values in distinct buckets: p50 interpolates in
        // the first occupied bucket's range, clamped to min.
        let h2 = Histogram::new();
        h2.record(10);
        h2.record(1000);
        let s2 = h2.snapshot();
        let p50 = s2.p50();
        assert!((10..=11).contains(&p50), "p50 = {p50}");
        assert_eq!(s2.percentile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn rejects_out_of_range_quantile() {
        let h = Histogram::new();
        h.record(1);
        let _ = h.snapshot().percentile(1.5);
    }
}
