//! A minimal deterministic JSON writer.
//!
//! The workspace has no serialization dependency by design; every JSON
//! document (bench reports, metrics snapshots) is emitted through this
//! writer so the formatting — two-space indent, one field per line, no
//! trailing whitespace — is identical everywhere and byte-stable across
//! identically seeded runs.

/// A pretty-printing JSON writer. Push objects/arrays and fields in
/// order; commas and indentation are managed for you.
///
/// # Example
///
/// ```
/// use rekey_metrics::json::Writer;
///
/// let mut w = Writer::new();
/// w.begin_object();
/// w.field_str("bench", "demo");
/// w.begin_named_array("results");
/// w.begin_object();
/// w.field_u64("members", 64);
/// w.end_object();
/// w.end_array();
/// w.end_object();
/// let json = w.finish();
/// assert!(json.starts_with("{\n  \"bench\": \"demo\","));
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
    /// One entry per open container: whether it already has an item.
    stack: Vec<bool>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.stack.len() {
            self.out.push_str("  ");
        }
    }

    /// Starts an item slot: comma-separates from the previous sibling and
    /// indents (no-op at the document root).
    fn item(&mut self) {
        if let Some(has_items) = self.stack.last_mut() {
            if *has_items {
                self.out.push(',');
            }
            *has_items = true;
            self.newline_indent();
        }
    }

    fn key(&mut self, key: &str) {
        self.item();
        self.out.push('"');
        escape_into(key, &mut self.out);
        self.out.push_str("\": ");
    }

    /// Opens `{` as an array element or the document root.
    pub fn begin_object(&mut self) {
        self.item();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Opens `"key": {`.
    pub fn begin_named_object(&mut self, key: &str) {
        self.key(key);
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        let had_items = self.stack.pop().expect("no open object");
        if had_items {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Opens `"key": [`.
    pub fn begin_named_array(&mut self, key: &str) {
        self.key(key);
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        let had_items = self.stack.pop().expect("no open array");
        if had_items {
            self.newline_indent();
        }
        self.out.push(']');
    }

    /// Writes `"key": <v>`.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.out.push_str(&v.to_string());
    }

    /// Writes `"key": <v>` for a usize.
    pub fn field_usize(&mut self, key: &str, v: usize) {
        self.field_u64(key, v as u64);
    }

    /// Writes `"key": <v>` with fixed `decimals` digits. Fixed-point
    /// formatting of a deterministic float is itself deterministic.
    pub fn field_f64(&mut self, key: &str, v: f64, decimals: usize) {
        self.key(key);
        self.out.push_str(&format!("{v:.decimals$}"));
    }

    /// Writes `"key": "<v>"` with JSON escaping.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(v, &mut self.out);
        self.out.push('"');
    }

    /// Finishes the document.
    ///
    /// # Panics
    ///
    /// Panics if any object or array is still open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        let mut out = self.out;
        out.push('\n');
        out
    }
}

/// Escapes `s` into `out` per JSON string rules.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `true` iff `json` contains a field named `key` (at any nesting depth).
/// This is the loud-failure check the bench bins run against their own
/// output: a schema key that vanishes from the emitter is caught at
/// generation time instead of silently disappearing from the committed
/// baseline.
pub fn has_key(json: &str, key: &str) -> bool {
    let needle = format!("\"{key}\":");
    json.contains(&needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_round_trips_shape() {
        let mut w = Writer::new();
        w.begin_object();
        w.field_str("name", "a\"b");
        w.begin_named_array("xs");
        w.begin_object();
        w.field_u64("v", 1);
        w.end_object();
        w.begin_object();
        w.field_u64("v", 2);
        w.end_object();
        w.end_array();
        w.field_f64("mean", 1.5, 2);
        w.end_object();
        let json = w.finish();
        assert_eq!(
            json,
            "{\n  \"name\": \"a\\\"b\",\n  \"xs\": [\n    {\n      \"v\": 1\n    },\n    {\n      \"v\": 2\n    }\n  ],\n  \"mean\": 1.50\n}\n"
        );
    }

    #[test]
    fn empty_containers_close_inline() {
        let mut w = Writer::new();
        w.begin_object();
        w.begin_named_array("xs");
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"xs\": []\n}\n");
    }

    #[test]
    fn has_key_finds_fields() {
        let doc = "{\n  \"nacks\": 3\n}\n";
        assert!(has_key(doc, "nacks"));
        assert!(!has_key(doc, "nack"));
    }

    #[test]
    #[should_panic(expected = "unclosed JSON container")]
    fn finish_rejects_unclosed_containers() {
        let mut w = Writer::new();
        w.begin_object();
        let _ = w.finish();
    }
}
