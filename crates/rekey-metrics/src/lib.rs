//! Deterministic, sim-clock-aware observability primitives.
//!
//! The paper evaluates its protocol through *distributions* — rekey
//! delivery latency, hop counts, recovery overhead under loss (§5) — not
//! just totals. This crate is the workspace's shared measurement layer:
//!
//! * [`Registry`] — a zero-dependency metrics registry handing out cheap
//!   clonable handles: [`Counter`], [`Gauge`] and [`Histogram`];
//! * [`Histogram`] — log₂-scaled buckets with linear sub-buckets per
//!   octave (≤ 12.5 % relative bucket width), O(1) `record`, and
//!   interpolated p50/p95/p99 in the snapshot;
//! * [`SpanRecord`] — lightweight tracing spans in a bounded ring buffer
//!   (drop-oldest, with a dropped count), timestamped by the *caller* —
//!   sim-clock microseconds in this workspace, never wall clock — so
//!   identically seeded runs record identical spans;
//! * [`RegistrySnapshot`] — an `Eq` point-in-time copy of everything,
//!   with a deterministic [JSON export](RegistrySnapshot::to_json)
//!   (sorted keys, integer-first formatting) that two identically seeded
//!   runs emit byte for byte.
//!
//! Nothing here reads `Instant::now()` or any other ambient clock: all
//! times come in as plain `u64`s from the discrete-event schedule, which
//! is what keeps seeded runs reproducible.
//!
//! # Example
//!
//! ```
//! use rekey_metrics::Registry;
//!
//! let registry = Registry::new();
//! let delivered = registry.counter("delivered");
//! let latency = registry.histogram("latency_us");
//! delivered.inc();
//! latency.record(1500);
//! latency.record(950);
//! registry.span("interval", 0, 1500, 1);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["delivered"], 1);
//! assert_eq!(snap.histograms["latency_us"].count, 2);
//! let json = snap.to_json();
//! assert_eq!(json, registry.snapshot().to_json(), "export is deterministic");
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

pub mod histogram;
pub mod json;

pub use histogram::{
    bucket_index, bucket_lower, bucket_width, Histogram, HistogramSnapshot, LocalHistogram,
};

/// One recorded tracing span: a named interval of simulated time plus one
/// free `detail` word (an interval number, an epoch, a batch size — the
/// span taxonomy documents the meaning per name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static: spans are recorded on hot paths).
    pub name: &'static str,
    /// Start of the span (caller-provided clock, µs in this workspace).
    pub start: u64,
    /// End of the span (same clock; `start <= end` by convention).
    pub end: u64,
    /// One free word of context, keyed by the span name.
    pub detail: u64,
}

impl SpanRecord {
    /// The span's duration on the caller's clock.
    pub fn duration(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }
}

/// The bounded span ring: keeps the most recent `capacity` spans.
#[derive(Debug)]
struct SpanLog {
    capacity: usize,
    spans: std::collections::VecDeque<SpanRecord>,
    dropped: u64,
}

impl SpanLog {
    fn record(&mut self, span: SpanRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }
}

#[derive(Debug)]
struct Inner {
    counters: BTreeMap<&'static str, Rc<Cell<u64>>>,
    gauges: BTreeMap<&'static str, Rc<Cell<u64>>>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: SpanLog,
}

/// A monotonically increasing counter handle. Cloning shares the value;
/// reads and writes are single `Cell` operations.
#[derive(Debug, Clone)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().wrapping_add(n));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A last-value (or running-max) gauge handle. Cloning shares the value.
#[derive(Debug, Clone)]
pub struct Gauge(Rc<Cell<u64>>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Keeps the running maximum of every observed value.
    pub fn record_max(&self, v: u64) {
        if v > self.0.get() {
            self.0.set(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// The default span ring capacity of [`Registry::new`].
pub const DEFAULT_SPAN_CAPACITY: usize = 512;

/// A registry of named metrics. Cloning is cheap and shares the
/// underlying store, so one registry can be threaded through every layer
/// of a simulation; the intended use is single-threaded (the workspace's
/// discrete-event runtime), hence `Rc` rather than atomics.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the [default span
    /// capacity](DEFAULT_SPAN_CAPACITY).
    pub fn new() -> Registry {
        Registry::with_span_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An empty registry keeping at most `capacity` spans (drop-oldest).
    pub fn with_span_capacity(capacity: usize) -> Registry {
        Registry {
            inner: Rc::new(RefCell::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: SpanLog {
                    capacity,
                    spans: std::collections::VecDeque::new(),
                    dropped: 0,
                },
            })),
        }
    }

    /// The counter named `name`, created at zero on first use. Handles
    /// for the same name share one value.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(Rc::clone(
            self.inner
                .borrow_mut()
                .counters
                .entry(name)
                .or_insert_with(|| Rc::new(Cell::new(0))),
        ))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(Rc::clone(
            self.inner
                .borrow_mut()
                .gauges
                .entry(name)
                .or_insert_with(|| Rc::new(Cell::new(0))),
        ))
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .clone()
    }

    /// Records a tracing span into the bounded ring buffer. `start` and
    /// `end` are on the caller's clock (simulated microseconds in this
    /// workspace); `detail` is one free word keyed by the span name.
    pub fn span(&self, name: &'static str, start: u64, end: u64, detail: u64) {
        self.inner.borrow_mut().spans.record(SpanRecord {
            name,
            start,
            end,
            detail,
        });
    }

    /// Spans dropped from the ring so far.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.borrow().spans.dropped
    }

    /// A point-in-time copy of every metric and the span ring.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.borrow();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans: inner.spans.spans.iter().copied().collect(),
            spans_dropped: inner.spans.dropped,
        }
    }
}

/// A point-in-time copy of a [`Registry`]: plain integers and sorted
/// maps, so two snapshots from identically seeded runs compare (and
/// serialize) identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The span ring at snapshot time, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped from the ring before the snapshot.
    pub spans_dropped: u64,
}

impl RegistrySnapshot {
    /// Serializes the snapshot as pretty-printed JSON with sorted keys.
    /// The output is a pure function of the snapshot — identically seeded
    /// runs emit byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.begin_object();
        w.begin_named_object("counters");
        for (k, v) in &self.counters {
            w.field_u64(k, *v);
        }
        w.end_object();
        w.begin_named_object("gauges");
        for (k, v) in &self.gauges {
            w.field_u64(k, *v);
        }
        w.end_object();
        w.begin_named_object("histograms");
        for (k, h) in &self.histograms {
            w.begin_named_object(k);
            h.write_fields(&mut w);
            w.end_object();
        }
        w.end_object();
        w.begin_named_array("spans");
        for s in &self.spans {
            w.begin_object();
            w.field_str("name", s.name);
            w.field_u64("start", s.start);
            w.field_u64("end", s.end);
            w.field_u64("detail", s.detail);
            w.end_object();
        }
        w.end_array();
        w.field_u64("spans_dropped", self.spans_dropped);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_value() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.snapshot().counters["hits"], 5);
    }

    #[test]
    fn gauge_tracks_running_max() {
        let registry = Registry::new();
        let g = registry.gauge("depth");
        g.record_max(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn span_ring_drops_oldest_and_counts() {
        let registry = Registry::with_span_capacity(2);
        registry.span("a", 0, 1, 0);
        registry.span("b", 1, 2, 0);
        registry.span("c", 2, 3, 0);
        let snap = registry.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "b");
        assert_eq!(snap.spans[1].name, "c");
        assert_eq!(snap.spans_dropped, 1);
        assert_eq!(registry.spans_dropped(), 1);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let registry = Registry::with_span_capacity(0);
        registry.span("a", 0, 1, 0);
        let snap = registry.snapshot();
        assert!(snap.spans.is_empty());
        assert_eq!(snap.spans_dropped, 1);
    }

    #[test]
    fn snapshots_are_eq_and_json_is_deterministic() {
        let build = || {
            let registry = Registry::new();
            registry.counter("z_last").add(3);
            registry.counter("a_first").add(1);
            registry.gauge("peak").record_max(9);
            let h = registry.histogram("lat");
            for v in [5u64, 90, 90, 1000] {
                h.record(v);
            }
            registry.span("apply", 10, 25, 2);
            registry.snapshot()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        // Keys come out sorted regardless of creation order.
        let json = a.to_json();
        assert!(json.find("a_first").unwrap() < json.find("z_last").unwrap());
    }

    #[test]
    fn registry_clones_share_the_store() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("x").inc();
        assert_eq!(registry.counter("x").get(), 1);
    }
}
