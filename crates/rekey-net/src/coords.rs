//! Landmark-based network coordinates (the GNP extension of §5).
//!
//! The paper's related-work section points out that "Ng and Zhang proposed
//! a global network positioning (GNP) scheme … This scheme can be used in
//! our system to reduce the probing cost of each joining user. For example,
//! if the key server knows the GNP coordinates of all the users, it can
//! determine the ID for a joining user by centralized computing."
//!
//! This module implements that: every host's *coordinate* is its RTT vector
//! to a small set of landmark hosts (a Lipschitz embedding). The RTT
//! between two hosts is then estimated from coordinates alone as the mean
//! of the classical lower and upper Lipschitz bounds:
//!
//! ```text
//! lower(a, b) = max_l |rtt(a, l) − rtt(b, l)|     (triangle inequality)
//! upper(a, b) = min_l (rtt(a, l) + rtt(b, l))
//! estimate    = (lower + upper) / 2
//! ```
//!
//! A joining user probes only the `L` landmarks instead of
//! `O(P · D · N^{1/D})` candidates; `rekey_proto` uses these estimates for
//! centralized ID assignment (see `ablation_gnp`).

use crate::{HostId, Micros, Network};

/// A host's coordinate: its RTT vector to the landmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coordinate {
    rtts: Vec<Micros>,
}

impl Coordinate {
    /// The RTT to each landmark, in landmark order.
    pub fn landmark_rtts(&self) -> &[Micros] {
        &self.rtts
    }

    /// Estimates the RTT between two coordinates as the midpoint of the
    /// Lipschitz lower and upper bounds. On measured (non-metric) RTTs the
    /// "bounds" can cross; the midpoint remains a sensible point estimate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates have different dimensionality.
    pub fn estimate_rtt(&self, other: &Coordinate) -> Micros {
        assert_eq!(
            self.rtts.len(),
            other.rtts.len(),
            "coordinate dimension mismatch"
        );
        let mut lower = 0;
        let mut upper = Micros::MAX;
        for (&a, &b) in self.rtts.iter().zip(&other.rtts) {
            lower = lower.max(a.abs_diff(b));
            upper = upper.min(a + b);
        }
        lower.midpoint(upper)
    }
}

/// A coordinate system: the landmark set plus per-host coordinates
/// measured against it.
#[derive(Debug, Clone)]
pub struct CoordinateSystem {
    landmarks: Vec<HostId>,
}

impl CoordinateSystem {
    /// Creates a coordinate system over the given landmark hosts.
    ///
    /// # Panics
    ///
    /// Panics if no landmarks are given.
    pub fn new(landmarks: Vec<HostId>) -> CoordinateSystem {
        assert!(!landmarks.is_empty(), "need at least one landmark");
        CoordinateSystem { landmarks }
    }

    /// Picks `count` landmarks spread over the host range (every
    /// `hosts/count`-th host) — in a deployment these would be dedicated
    /// infrastructure nodes.
    pub fn spread(hosts: usize, count: usize) -> CoordinateSystem {
        assert!(count >= 1 && count <= hosts, "landmark count out of range");
        let step = hosts / count;
        CoordinateSystem::new((0..count).map(|i| HostId(i * step)).collect())
    }

    /// The landmark hosts.
    pub fn landmarks(&self) -> &[HostId] {
        &self.landmarks
    }

    /// Number of probes a host performs to obtain its coordinate.
    pub fn probe_cost(&self) -> usize {
        self.landmarks.len()
    }

    /// Measures `host`'s coordinate (one gateway-RTT probe per landmark —
    /// the ID assignment operates on gateway RTTs, §3.1.2).
    pub fn measure(&self, host: HostId, net: &impl Network) -> Coordinate {
        Coordinate {
            rtts: self
                .landmarks
                .iter()
                .map(|&l| net.gateway_rtt(host, l))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MatrixNetwork, PlanetLabParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> MatrixNetwork {
        let mut rng = StdRng::seed_from_u64(42);
        MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng)
    }

    #[test]
    fn estimates_are_between_the_lipschitz_bounds() {
        // On non-metric (measured-style) RTTs the lower bound can exceed
        // the upper; the midpoint must still lie between min and max.
        let net = net();
        let cs = CoordinateSystem::spread(net.host_count(), 8);
        let ca = cs.measure(HostId(3), &net);
        let cb = cs.measure(HostId(101), &net);
        let est = ca.estimate_rtt(&cb);
        let lower = ca
            .landmark_rtts()
            .iter()
            .zip(cb.landmark_rtts())
            .map(|(&a, &b)| a.abs_diff(b))
            .max()
            .unwrap();
        let upper = ca
            .landmark_rtts()
            .iter()
            .zip(cb.landmark_rtts())
            .map(|(&a, &b)| a + b)
            .min()
            .unwrap();
        assert!(lower.min(upper) <= est && est <= lower.max(upper));
    }

    #[test]
    fn estimate_is_symmetric_and_zeroish_for_self() {
        let net = net();
        let cs = CoordinateSystem::spread(net.host_count(), 8);
        let ca = cs.measure(HostId(7), &net);
        let cb = cs.measure(HostId(160), &net);
        assert_eq!(ca.estimate_rtt(&cb), cb.estimate_rtt(&ca));
        // Self-estimate: lower bound 0, upper 2·min-landmark-RTT; must be
        // far below any inter-continent RTT.
        assert!(ca.estimate_rtt(&ca) < 100_000);
    }

    /// What centralized ID assignment actually needs is not small point
    /// error but *classification* power: near pairs (same region, the
    /// 30 ms threshold class) must look near, far pairs (inter-continent,
    /// beyond the 150 ms threshold) far.
    #[test]
    fn estimates_classify_near_vs_far_pairs() {
        let net = net();
        let cs = CoordinateSystem::spread(net.host_count(), 12);
        let coords: Vec<Coordinate> = (0..net.host_count())
            .map(|h| cs.measure(HostId(h), &net))
            .collect();
        let mut correct = 0usize;
        let mut total = 0usize;
        for a in 0..coords.len() {
            for b in (a + 1)..coords.len() {
                let real = net.gateway_rtt(HostId(a), HostId(b));
                let est = coords[a].estimate_rtt(&coords[b]);
                if real < 30_000 {
                    total += 1;
                    correct += usize::from(est < 80_000);
                } else if real > 150_000 {
                    total += 1;
                    correct += usize::from(est > 80_000);
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(
            accuracy > 0.85,
            "near/far classification accuracy {accuracy:.2} too low"
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dimensions_panic() {
        let net = net();
        let a = CoordinateSystem::spread(net.host_count(), 4).measure(HostId(0), &net);
        let b = CoordinateSystem::spread(net.host_count(), 5).measure(HostId(1), &net);
        let _ = a.estimate_rtt(&b);
    }
}
