//! Single-source shortest paths over router graphs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::graph::{LinkId, RouterGraph, RouterId};
use crate::Micros;

/// The shortest-path tree rooted at one source router.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: RouterId,
    dist: Vec<Micros>,
    prev: Vec<Option<(RouterId, LinkId)>>,
}

const UNREACHABLE: Micros = Micros::MAX;

impl ShortestPaths {
    /// The source router this tree is rooted at.
    pub fn source(&self) -> RouterId {
        self.source
    }

    /// One-way delay from the source to `to`, or `None` if unreachable.
    pub fn distance(&self, to: RouterId) -> Option<Micros> {
        match self.dist[to.0] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// The predecessor `(router, link)` of `to` on its shortest path, or
    /// `None` for the source and unreachable routers.
    pub fn predecessor(&self, to: RouterId) -> Option<(RouterId, LinkId)> {
        self.prev[to.0]
    }

    /// Links on the shortest path from the source to `to`, in path order.
    /// Returns `None` if `to` is unreachable; the path to the source itself
    /// is the empty path.
    pub fn path_links(&self, to: RouterId) -> Option<Vec<LinkId>> {
        if self.dist[to.0] == UNREACHABLE {
            return None;
        }
        let mut links = Vec::new();
        let mut cursor = to;
        while let Some((router, link)) = self.prev[cursor.0] {
            links.push(link);
            cursor = router;
        }
        links.reverse();
        Some(links)
    }

    /// Routers on the shortest path from the source to `to`, inclusive.
    pub fn path_routers(&self, to: RouterId) -> Option<Vec<RouterId>> {
        if self.dist[to.0] == UNREACHABLE {
            return None;
        }
        let mut routers = vec![to];
        let mut cursor = to;
        while let Some((router, _)) = self.prev[cursor.0] {
            routers.push(router);
            cursor = router;
        }
        routers.reverse();
        Some(routers)
    }
}

/// Computes shortest paths (by summed one-way link delay) from `source` with
/// Dijkstra's algorithm.
///
/// # Panics
///
/// Panics if `source` is out of range for `graph`.
pub fn shortest_paths(graph: &RouterGraph, source: RouterId) -> ShortestPaths {
    assert!(source.0 < graph.router_count(), "unknown source router");
    let n = graph.router_count();
    let mut dist = vec![UNREACHABLE; n];
    let mut prev: Vec<Option<(RouterId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0;
    heap.push(Reverse((0, source.0)));
    while let Some(Reverse((d, r))) = heap.pop() {
        if d > dist[r] {
            continue;
        }
        for (peer, link) in graph.neighbors(RouterId(r)) {
            let candidate = d + graph.link(link).one_way;
            if candidate < dist[peer.0] {
                dist[peer.0] = candidate;
                prev[peer.0] = Some((RouterId(r), link));
                heap.push(Reverse((candidate, peer.0)));
            }
        }
    }
    ShortestPaths { source, dist, prev }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-router diamond: 0-1 (10), 0-2 (1), 2-1 (2), 1-3 (5), 2-3 (100).
    fn diamond() -> RouterGraph {
        let mut g = RouterGraph::new();
        let r = g.add_routers(4);
        g.add_link(r[0], r[1], 10);
        g.add_link(r[0], r[2], 1);
        g.add_link(r[2], r[1], 2);
        g.add_link(r[1], r[3], 5);
        g.add_link(r[2], r[3], 100);
        g
    }

    #[test]
    fn finds_shortest_distances() {
        let g = diamond();
        let sp = shortest_paths(&g, RouterId(0));
        assert_eq!(sp.distance(RouterId(0)), Some(0));
        assert_eq!(sp.distance(RouterId(1)), Some(3)); // via 2
        assert_eq!(sp.distance(RouterId(2)), Some(1));
        assert_eq!(sp.distance(RouterId(3)), Some(8)); // 0-2-1-3
    }

    #[test]
    fn reconstructs_paths() {
        let g = diamond();
        let sp = shortest_paths(&g, RouterId(0));
        let routers = sp.path_routers(RouterId(3)).unwrap();
        assert_eq!(
            routers,
            vec![RouterId(0), RouterId(2), RouterId(1), RouterId(3)]
        );
        let links = sp.path_links(RouterId(3)).unwrap();
        assert_eq!(links.len(), 3);
        // Path delay equals the distance.
        let total: Micros = links.iter().map(|&l| g.link(l).one_way).sum();
        assert_eq!(Some(total), sp.distance(RouterId(3)));
        assert_eq!(sp.path_links(RouterId(0)), Some(vec![]));
    }

    #[test]
    fn unreachable_routers() {
        let mut g = diamond();
        let lonely = g.add_router();
        let sp = shortest_paths(&g, RouterId(0));
        assert_eq!(sp.distance(lonely), None);
        assert_eq!(sp.path_links(lonely), None);
        assert_eq!(sp.path_routers(lonely), None);
    }

    #[test]
    fn distances_are_symmetric_on_undirected_graphs() {
        let g = diamond();
        for a in 0..4 {
            let sp_a = shortest_paths(&g, RouterId(a));
            for b in 0..4 {
                let sp_b = shortest_paths(&g, RouterId(b));
                assert_eq!(sp_a.distance(RouterId(b)), sp_b.distance(RouterId(a)));
            }
        }
    }
}
