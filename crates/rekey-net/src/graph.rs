//! Undirected weighted router graphs.

use std::fmt;

use crate::Micros;

/// Identifier of a router in a [`RouterGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub usize);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a physical link in a [`RouterGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A physical link between two routers with a one-way propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// One endpoint.
    pub a: RouterId,
    /// The other endpoint.
    pub b: RouterId,
    /// One-way propagation delay in microseconds.
    pub one_way: Micros,
}

impl Link {
    /// The endpoint opposite to `from`, or `None` if `from` is not an
    /// endpoint of this link.
    pub fn opposite(&self, from: RouterId) -> Option<RouterId> {
        if from == self.a {
            Some(self.b)
        } else if from == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An undirected router-level topology with propagation delays.
///
/// ```
/// use rekey_net::{RouterGraph, Micros};
/// let mut g = RouterGraph::new();
/// let a = g.add_router();
/// let b = g.add_router();
/// let l = g.add_link(a, b, 500);
/// assert_eq!(g.link(l).one_way, 500);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouterGraph {
    adjacency: Vec<Vec<(RouterId, LinkId)>>,
    links: Vec<Link>,
}

impl RouterGraph {
    /// Creates an empty graph.
    pub fn new() -> RouterGraph {
        RouterGraph::default()
    }

    /// Adds a router and returns its ID.
    pub fn add_router(&mut self) -> RouterId {
        self.adjacency.push(Vec::new());
        RouterId(self.adjacency.len() - 1)
    }

    /// Adds `n` routers, returning their IDs.
    pub fn add_routers(&mut self, n: usize) -> Vec<RouterId> {
        (0..n).map(|_| self.add_router()).collect()
    }

    /// Adds an undirected link with a one-way delay.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range router IDs.
    pub fn add_link(&mut self, a: RouterId, b: RouterId, one_way: Micros) -> LinkId {
        assert_ne!(a, b, "self-loop links are not allowed");
        assert!(
            a.0 < self.adjacency.len() && b.0 < self.adjacency.len(),
            "unknown router"
        );
        let id = LinkId(self.links.len());
        self.links.push(Link { a, b, one_way });
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        id
    }

    /// `true` if routers `a` and `b` already share a link.
    pub fn has_link_between(&self, a: RouterId, b: RouterId) -> bool {
        self.adjacency[a.0].iter().any(|&(peer, _)| peer == b)
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The link with the given ID.
    ///
    /// # Panics
    ///
    /// Panics if the ID is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Iterates over `(neighbor, link)` pairs of router `r`.
    pub fn neighbors(&self, r: RouterId) -> impl Iterator<Item = (RouterId, LinkId)> + '_ {
        self.adjacency[r.0].iter().copied()
    }

    /// Degree of router `r`.
    pub fn degree(&self, r: RouterId) -> usize {
        self.adjacency[r.0].len()
    }

    /// `true` iff every router is reachable from router 0 (vacuously true
    /// for empty graphs).
    pub fn is_connected(&self) -> bool {
        if self.adjacency.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adjacency.len()];
        let mut stack = vec![RouterId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(r) = stack.pop() {
            for (peer, _) in self.neighbors(r) {
                if !seen[peer.0] {
                    seen[peer.0] = true;
                    count += 1;
                    stack.push(peer);
                }
            }
        }
        count == self.adjacency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (RouterGraph, [RouterId; 3]) {
        let mut g = RouterGraph::new();
        let r = [g.add_router(), g.add_router(), g.add_router()];
        g.add_link(r[0], r[1], 10);
        g.add_link(r[1], r[2], 20);
        g.add_link(r[2], r[0], 30);
        (g, r)
    }

    #[test]
    fn build_and_query() {
        let (g, r) = triangle();
        assert_eq!(g.router_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.degree(r[1]), 2);
        assert!(g.has_link_between(r[0], r[2]));
        assert!(g.is_connected());
    }

    #[test]
    fn opposite_endpoint() {
        let (g, r) = triangle();
        let link = g.link(LinkId(0));
        assert_eq!(link.opposite(r[0]), Some(r[1]));
        assert_eq!(link.opposite(r[1]), Some(r[0]));
        assert_eq!(link.opposite(r[2]), None);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = RouterGraph::new();
        g.add_router();
        g.add_router();
        assert!(!g.is_connected());
        g.add_link(RouterId(0), RouterId(1), 5);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = RouterGraph::new();
        let a = g.add_router();
        g.add_link(a, a, 1);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(RouterGraph::new().is_connected());
    }
}
