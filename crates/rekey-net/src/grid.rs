//! An analytic grid substrate for very large groups.
//!
//! [`MatrixNetwork`](crate::MatrixNetwork) materialises an all-pairs RTT
//! matrix — O(N²) memory — which caps it at a few thousand hosts. The
//! million-member experiments need a substrate whose delay is a *formula*:
//! hosts sit on a √N × √N grid and the one-way delay between two hosts is
//! an affine function of their Manhattan distance. O(N) memory (none per
//! pair), O(1) per query, and fully deterministic without a seed.
//!
//! The constants default to the same order of magnitude as the synthetic
//! PlanetLab matrix (a few to a few hundred milliseconds), so protocol
//! timers tuned on the small substrates remain sensible here.

use crate::{HostId, Micros, Network};

/// Hosts on a square grid; delay is affine in Manhattan distance.
///
/// One-way delay between distinct hosts `a`, `b` at grid positions
/// `(xa, ya)`, `(xb, yb)`:
///
/// ```text
/// one_way(a, b) = base + step · (|xa − xb| + |ya − yb|)
/// ```
///
/// RTTs are symmetric (`2 · one_way`), the gateway RTT equals the host RTT
/// (grid hosts have no modelled access links), and there are no physical
/// links to account stress against.
///
/// ```
/// use rekey_net::{GridNetwork, HostId, Network};
///
/// let net = GridNetwork::new(9, 1_000, 500); // 3×3 grid
/// assert_eq!(net.host_count(), 9);
/// // hosts 0 and 1 are lateral neighbors: distance 1
/// assert_eq!(net.one_way(HostId(0), HostId(1)), 1_500);
/// // hosts 0 and 8 sit at opposite corners: distance 4
/// assert_eq!(net.one_way(HostId(0), HostId(8)), 3_000);
/// assert_eq!(net.rtt(HostId(0), HostId(8)), 6_000);
/// assert_eq!(net.min_one_way(), 1_500);
/// ```
#[derive(Debug, Clone)]
pub struct GridNetwork {
    hosts: usize,
    side: usize,
    base: Micros,
    step: Micros,
}

impl GridNetwork {
    /// A grid substrate over `hosts` hosts with the given delay constants
    /// (µs). The grid side is `⌈√hosts⌉`; the last row may be partial.
    ///
    /// # Panics
    ///
    /// Panics when `hosts` is zero or `base + step` is zero (a zero
    /// cross-host delay would break event-ordering assumptions downstream).
    pub fn new(hosts: usize, base: Micros, step: Micros) -> GridNetwork {
        assert!(hosts > 0, "grid needs at least one host");
        assert!(base + step > 0, "cross-host delay must be positive");
        let side = (hosts as f64).sqrt().ceil() as usize;
        GridNetwork {
            hosts,
            side: side.max(1),
            base,
            step,
        }
    }

    /// The paper-flavored default constants: 2 ms base plus 150 µs per
    /// grid hop, which spans ≈2–300 ms across a 1024×1024 grid — the same
    /// range as the synthetic PlanetLab matrix.
    pub fn with_defaults(hosts: usize) -> GridNetwork {
        GridNetwork::new(hosts, 2_000, 150)
    }

    /// The smallest one-way delay between two *distinct* hosts:
    /// `base + step` (Manhattan distance ≥ 1). Sharded executors use this
    /// as the safe event-window width.
    pub fn min_one_way(&self) -> Micros {
        self.base + self.step
    }

    fn position(&self, h: HostId) -> (usize, usize) {
        debug_assert!(h.0 < self.hosts, "host {h} out of range");
        (h.0 % self.side, h.0 / self.side)
    }
}

impl Network for GridNetwork {
    fn host_count(&self) -> usize {
        self.hosts
    }

    fn rtt(&self, a: HostId, b: HostId) -> Micros {
        2 * self.one_way(a, b)
    }

    fn gateway_rtt(&self, a: HostId, b: HostId) -> Micros {
        self.rtt(a, b)
    }

    fn one_way(&self, a: HostId, b: HostId) -> Micros {
        if a == b {
            return self.base;
        }
        let (xa, ya) = self.position(a);
        let (xb, yb) = self.position(b);
        let manhattan = xa.abs_diff(xb) + ya.abs_diff(yb);
        self.base + self.step * manhattan as Micros
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_symmetric_and_triangle_friendly() {
        let net = GridNetwork::new(100, 1_000, 100);
        for (a, b) in [(0, 99), (3, 47), (10, 11)] {
            let (a, b) = (HostId(a), HostId(b));
            assert_eq!(net.one_way(a, b), net.one_way(b, a));
            assert!(net.one_way(a, b) >= net.min_one_way());
        }
    }

    #[test]
    fn partial_last_row_is_addressable() {
        let net = GridNetwork::new(10, 500, 50); // 4×4 grid, 10 hosts
        assert_eq!(net.host_count(), 10);
        // host 9 is at (1, 2); host 0 at (0, 0): distance 3
        assert_eq!(net.one_way(HostId(0), HostId(9)), 650);
    }

    #[test]
    fn million_host_grid_is_cheap() {
        let net = GridNetwork::with_defaults(1_000_001);
        assert_eq!(net.host_count(), 1_000_001);
        let d = net.one_way(HostId(0), HostId(1_000_000));
        assert!(d > net.min_one_way());
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let _ = GridNetwork::new(0, 1_000, 100);
    }
}
