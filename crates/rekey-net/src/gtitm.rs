//! Transit-stub topology generator in the style of GT-ITM.
//!
//! The paper's GT-ITM topology "consists of 5000 routers and 13000 network
//! links" with four delay classes (§4): intra-stub 0.1–1 ms, stub–transit
//! 2–3 ms, intra-transit-domain 10–15 ms, inter-transit-domain 75–85 ms (all
//! *two-way* propagation delays). GT-ITM itself is a random-graph generator,
//! so an independent implementation with the same structure and delay ranges
//! is statistically equivalent; see DESIGN.md ("Substitutions").

use rand::Rng;

use crate::graph::{RouterGraph, RouterId};
use crate::Micros;

/// Parameters of the transit-stub generator.
///
/// The defaults are tuned so that the generated topology matches the paper's
/// scale: ≈5000 routers and ≈13000 links.
#[derive(Debug, Clone, PartialEq)]
pub struct GtItmParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Probability of each extra intra-transit-domain edge beyond the
    /// spanning tree.
    pub extra_transit_edge_prob: f64,
    /// Probability of each extra transit-domain-to-transit-domain link
    /// beyond the spanning tree over domains.
    pub extra_domain_edge_prob: f64,
    /// Stub domains attached to each transit router.
    pub stub_domains_per_transit_node: usize,
    /// Minimum routers per stub domain (inclusive).
    pub stub_nodes_min: usize,
    /// Maximum routers per stub domain (inclusive).
    pub stub_nodes_max: usize,
    /// Probability of each extra intra-stub edge beyond the spanning tree.
    pub extra_stub_edge_prob: f64,
    /// Two-way delay range for links inside a stub domain, microseconds.
    pub stub_delay: (Micros, Micros),
    /// Two-way delay range for stub-to-transit links, microseconds.
    pub stub_transit_delay: (Micros, Micros),
    /// Two-way delay range for links inside a transit domain, microseconds.
    pub transit_delay: (Micros, Micros),
    /// Two-way delay range for links between transit domains, microseconds.
    pub inter_domain_delay: (Micros, Micros),
}

impl Default for GtItmParams {
    fn default() -> GtItmParams {
        GtItmParams {
            transit_domains: 10,
            transit_nodes_per_domain: 8,
            extra_transit_edge_prob: 0.6,
            extra_domain_edge_prob: 0.3,
            stub_domains_per_transit_node: 6,
            stub_nodes_min: 6,
            stub_nodes_max: 14,
            extra_stub_edge_prob: 0.45,
            stub_delay: (100, 1_000),
            stub_transit_delay: (2_000, 3_000),
            transit_delay: (10_000, 15_000),
            inter_domain_delay: (75_000, 85_000),
        }
    }
}

impl GtItmParams {
    /// A small topology (≈60 routers) for unit tests and debug builds.
    pub fn small() -> GtItmParams {
        GtItmParams {
            transit_domains: 2,
            transit_nodes_per_domain: 3,
            stub_domains_per_transit_node: 3,
            stub_nodes_min: 2,
            stub_nodes_max: 4,
            ..GtItmParams::default()
        }
    }
}

/// A generated transit-stub topology.
#[derive(Debug, Clone)]
pub struct TransitStubTopology {
    graph: RouterGraph,
    transit_routers: Vec<RouterId>,
    stub_routers: Vec<RouterId>,
}

impl TransitStubTopology {
    /// The underlying router graph.
    pub fn graph(&self) -> &RouterGraph {
        &self.graph
    }

    /// Consumes the topology, returning the router graph.
    pub fn into_graph(self) -> RouterGraph {
        self.graph
    }

    /// Routers belonging to transit domains.
    pub fn transit_routers(&self) -> &[RouterId] {
        &self.transit_routers
    }

    /// Routers belonging to stub domains.
    pub fn stub_routers(&self) -> &[RouterId] {
        &self.stub_routers
    }
}

/// Samples a two-way delay from `range` and converts it to a one-way link
/// delay (the paper specifies two-way propagation delays per link).
fn one_way_from_two_way<R: Rng + ?Sized>(rng: &mut R, range: (Micros, Micros)) -> Micros {
    let two_way = rng.gen_range(range.0..=range.1);
    (two_way / 2).max(1)
}

/// Builds a random connected subgraph over `nodes`: a random spanning tree
/// plus each remaining pair independently with probability `extra_prob`.
fn connect_random<R: Rng + ?Sized>(
    graph: &mut RouterGraph,
    nodes: &[RouterId],
    extra_prob: f64,
    delay: (Micros, Micros),
    rng: &mut R,
) {
    for i in 1..nodes.len() {
        let parent = nodes[rng.gen_range(0..i)];
        graph.add_link(parent, nodes[i], one_way_from_two_way(rng, delay));
    }
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            if !graph.has_link_between(nodes[i], nodes[j]) && rng.gen_bool(extra_prob) {
                graph.add_link(nodes[i], nodes[j], one_way_from_two_way(rng, delay));
            }
        }
    }
}

/// Generates a transit-stub topology.
///
/// # Panics
///
/// Panics if any count parameter is zero or `stub_nodes_min > stub_nodes_max`.
pub fn generate<R: Rng + ?Sized>(params: &GtItmParams, rng: &mut R) -> TransitStubTopology {
    assert!(
        params.transit_domains > 0,
        "need at least one transit domain"
    );
    assert!(params.transit_nodes_per_domain > 0, "need transit nodes");
    assert!(params.stub_nodes_min > 0 && params.stub_nodes_min <= params.stub_nodes_max);
    let mut graph = RouterGraph::new();
    let mut transit_routers = Vec::new();
    let mut stub_routers = Vec::new();
    let mut domains: Vec<Vec<RouterId>> = Vec::with_capacity(params.transit_domains);

    // Transit domains.
    for _ in 0..params.transit_domains {
        let nodes = graph.add_routers(params.transit_nodes_per_domain);
        connect_random(
            &mut graph,
            &nodes,
            params.extra_transit_edge_prob,
            params.transit_delay,
            rng,
        );
        transit_routers.extend_from_slice(&nodes);
        domains.push(nodes);
    }

    // Inter-domain links: spanning tree over domains plus random extras.
    for i in 1..domains.len() {
        let j = rng.gen_range(0..i);
        let a = domains[i][rng.gen_range(0..domains[i].len())];
        let b = domains[j][rng.gen_range(0..domains[j].len())];
        graph.add_link(a, b, one_way_from_two_way(rng, params.inter_domain_delay));
    }
    for i in 0..domains.len() {
        for j in (i + 1)..domains.len() {
            if rng.gen_bool(params.extra_domain_edge_prob) {
                let a = domains[i][rng.gen_range(0..domains[i].len())];
                let b = domains[j][rng.gen_range(0..domains[j].len())];
                if !graph.has_link_between(a, b) {
                    graph.add_link(a, b, one_way_from_two_way(rng, params.inter_domain_delay));
                }
            }
        }
    }

    // Stub domains hanging off each transit router.
    for &transit in &transit_routers {
        for _ in 0..params.stub_domains_per_transit_node {
            let size = rng.gen_range(params.stub_nodes_min..=params.stub_nodes_max);
            let nodes = graph.add_routers(size);
            connect_random(
                &mut graph,
                &nodes,
                params.extra_stub_edge_prob,
                params.stub_delay,
                rng,
            );
            let gateway = nodes[rng.gen_range(0..nodes.len())];
            graph.add_link(
                transit,
                gateway,
                one_way_from_two_way(rng, params.stub_transit_delay),
            );
            stub_routers.extend_from_slice(&nodes);
        }
    }

    debug_assert!(graph.is_connected());
    TransitStubTopology {
        graph,
        transit_routers,
        stub_routers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_topology_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = generate(&GtItmParams::small(), &mut rng);
        assert!(topo.graph().is_connected());
        assert_eq!(topo.transit_routers().len(), 6);
        assert!(!topo.stub_routers().is_empty());
        assert_eq!(
            topo.graph().router_count(),
            topo.transit_routers().len() + topo.stub_routers().len()
        );
    }

    #[test]
    fn paper_scale_matches_5000_routers_13000_links() {
        let mut rng = StdRng::seed_from_u64(2);
        let topo = generate(&GtItmParams::default(), &mut rng);
        let routers = topo.graph().router_count();
        let links = topo.graph().link_count();
        assert!(
            (4200..=5800).contains(&routers),
            "router count {routers} far from 5000"
        );
        assert!(
            (10_000..=16_000).contains(&links),
            "link count {links} far from 13000"
        );
        assert!(topo.graph().is_connected());
    }

    #[test]
    fn delay_classes_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GtItmParams::small();
        let topo = generate(&params, &mut rng);
        let g = topo.graph();
        for l in 0..g.link_count() {
            let d = g.link(crate::LinkId(l)).one_way;
            // Every one-way delay must be half of some configured two-way range.
            let ok = [
                params.stub_delay,
                params.stub_transit_delay,
                params.transit_delay,
                params.inter_domain_delay,
            ]
            .iter()
            .any(|&(lo, hi)| d >= lo / 2 && d <= hi / 2 + 1);
            assert!(ok, "delay {d} in no class");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let t1 = generate(&GtItmParams::small(), &mut StdRng::seed_from_u64(9));
        let t2 = generate(&GtItmParams::small(), &mut StdRng::seed_from_u64(9));
        assert_eq!(t1.graph().router_count(), t2.graph().router_count());
        assert_eq!(t1.graph().link_count(), t2.graph().link_count());
        for l in 0..t1.graph().link_count() {
            assert_eq!(
                t1.graph().link(crate::LinkId(l)),
                t2.graph().link(crate::LinkId(l))
            );
        }
    }
}
