//! Network substrates for the group rekeying simulations (Zhang, Lam & Liu,
//! ICDCS 2005, §4).
//!
//! The paper evaluates on two topologies, both reproduced here:
//!
//! * a **transit-stub topology** in the style of GT-ITM with ≈5000 routers
//!   and ≈13000 links and the paper's four delay classes
//!   ([`gtitm::generate`], hosts attached via [`RoutedNetwork`]);
//! * a **PlanetLab all-pairs RTT matrix** over 227 hosts, which we
//!   synthesise with the same hierarchical structure
//!   ([`MatrixNetwork::synthetic_planetlab`]) because the 2004 measurement
//!   file is unavailable (see DESIGN.md).
//!
//! Both substrates implement the [`Network`] trait consumed by the multicast
//! schemes: one-way delays for latency metrics, end-host RTT `h(u, w)` and
//! gateway-router RTT `r(u, w)` for the user ID assignment protocol
//! (§3.1.2), and — on routed topologies — physical paths for link-stress
//! accounting.
//!
//! All delays are integer **microseconds** ([`Micros`]) so simulations are
//! exactly reproducible.

pub mod coords;
mod dijkstra;
mod graph;
mod grid;
pub mod gtitm;
mod planetlab;
mod routed;
mod stress;
pub mod udp;

pub use coords::{Coordinate, CoordinateSystem};
pub use dijkstra::{shortest_paths, ShortestPaths};
pub use graph::{Link, LinkId, RouterGraph, RouterId};
pub use grid::GridNetwork;
pub use planetlab::{MatrixNetwork, PlanetLabParams};
pub use routed::RoutedNetwork;
pub use stress::LinkLoad;

/// A time duration or delay in integer microseconds.
pub type Micros = u64;

/// Converts whole milliseconds to [`Micros`].
///
/// ```
/// assert_eq!(rekey_net::ms(150), 150_000);
/// ```
pub const fn ms(milliseconds: u64) -> Micros {
    milliseconds * 1_000
}

/// Identifier of an end host (a group member or the key server) within a
/// [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A substrate that can answer delay questions about a fixed set of hosts.
///
/// The two implementations are [`RoutedNetwork`] (hosts on a router graph;
/// used for the GT-ITM experiments) and [`MatrixNetwork`] (pairwise RTT
/// matrix; used for the PlanetLab experiments).
pub trait Network {
    /// Number of hosts.
    fn host_count(&self) -> usize;

    /// End-host round-trip time — the paper's `h(u, w)` (§3.1.2).
    fn rtt(&self, a: HostId, b: HostId) -> Micros;

    /// Gateway-router round-trip time — the paper's `r(u, w)`: the RTT
    /// between the first-hop and last-hop routers on the path from `a` to
    /// `b`, used by the ID assignment protocol so that long access links do
    /// not distort proximity estimates.
    fn gateway_rtt(&self, a: HostId, b: HostId) -> Micros;

    /// One-way delay used for multicast latency; by default half of
    /// [`Network::rtt`], as in the paper's simulation setup.
    fn one_way(&self, a: HostId, b: HostId) -> Micros {
        self.rtt(a, b) / 2
    }

    /// Physical links on the unicast path from `a` to `b`, if the substrate
    /// models individual links (`None` for RTT-matrix substrates).
    fn path_links(&self, a: HostId, b: HostId) -> Option<Vec<LinkId>> {
        let _ = (a, b);
        None
    }

    /// Number of physical links (0 for RTT-matrix substrates).
    fn link_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_converts() {
        assert_eq!(ms(0), 0);
        assert_eq!(ms(3), 3_000);
    }

    #[test]
    fn host_id_displays() {
        assert_eq!(HostId(7).to_string(), "h7");
        assert_eq!(RouterId(3).to_string(), "r3");
        assert_eq!(LinkId(9).to_string(), "l9");
    }
}
