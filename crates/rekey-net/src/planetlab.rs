//! Synthetic PlanetLab-style RTT matrices.
//!
//! The paper measured the all-pairs RTT among 227 PlanetLab hosts (2004-08-12)
//! spread over North America, Europe, Asia and Australia, and used the matrix
//! directly: "we let each member … correspond to a PlanetLab host, and set the
//! RTT between each pair of members to be the same as the RTT between the
//! corresponding two PlanetLab hosts" (§4). That measurement file is not
//! available, so we synthesise a matrix with the same *structure*: hosts are
//! grouped into sites inside continents, and pairwise RTT follows an additive
//! tree-like model (intra-site ≪ intra-continent ≪ inter-continent) with
//! multiplicative jitter. See DESIGN.md ("Substitutions").

use rand::Rng;

use crate::{HostId, Micros, Network};

/// Parameters for the synthetic PlanetLab matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanetLabParams {
    /// Hosts per continent, in order (the defaults model NA/EU/Asia/AU and
    /// sum to the paper's 227 hosts).
    pub continent_hosts: Vec<usize>,
    /// Base inter-continent RTTs in microseconds, indexed `[i][j]`
    /// (symmetric; the diagonal is the intra-continent backbone RTT).
    pub continent_base: Vec<Vec<Micros>>,
    /// Range of a site's RTT offset to its continental backbone.
    pub site_offset: (Micros, Micros),
    /// Range of intra-site host-to-host RTTs.
    pub intra_site: (Micros, Micros),
    /// Range of hosts per site.
    pub site_size: (usize, usize),
    /// Per-host access-link RTT range (host ↔ gateway router), so that
    /// end-host RTT `h(u,w)` exceeds gateway RTT `r(u,w)` as in §3.1.2.
    pub access: (Micros, Micros),
    /// Multiplicative jitter bound (e.g. `0.10` ⇒ each pair RTT is scaled by
    /// a factor uniform in `[0.9, 1.1]`).
    pub jitter: f64,
    /// Probability that a pair enjoys a routing *shortcut* (direct path much
    /// faster than the hierarchical model predicts). Real RTT matrices are
    /// not tree metrics; shortcuts and detours reproduce the
    /// triangle-inequality violations that make relative delay penalties
    /// realistic.
    pub shortcut_prob: f64,
    /// Scale range applied to shortcut pairs (e.g. `(0.4, 0.8)`).
    pub shortcut_scale: (f64, f64),
    /// Probability that a pair suffers a routing *detour*.
    pub detour_prob: f64,
    /// Scale range applied to detour pairs (e.g. `(1.3, 2.5)`).
    pub detour_scale: (f64, f64),
}

const MS: Micros = 1_000;

impl Default for PlanetLabParams {
    fn default() -> PlanetLabParams {
        PlanetLabParams {
            continent_hosts: vec![120, 60, 35, 12],
            continent_base: vec![
                // NA        EU        Asia      AU
                vec![8 * MS, 95 * MS, 160 * MS, 175 * MS],
                vec![95 * MS, 8 * MS, 250 * MS, 280 * MS],
                vec![160 * MS, 250 * MS, 12 * MS, 130 * MS],
                vec![175 * MS, 280 * MS, 130 * MS, 6 * MS],
            ],
            site_offset: (2 * MS, 30 * MS),
            intra_site: (500, 3 * MS),
            site_size: (1, 4),
            access: (200, 3 * MS),
            jitter: 0.15,
            shortcut_prob: 0.06,
            shortcut_scale: (0.55, 0.85),
            detour_prob: 0.14,
            detour_scale: (1.3, 2.4),
        }
    }
}

impl PlanetLabParams {
    /// A small matrix (16 hosts over two continents) for unit tests.
    pub fn small() -> PlanetLabParams {
        PlanetLabParams {
            continent_hosts: vec![10, 6],
            continent_base: vec![vec![8 * MS, 95 * MS], vec![95 * MS, 8 * MS]],
            ..PlanetLabParams::default()
        }
    }

    /// Total number of hosts.
    pub fn host_count(&self) -> usize {
        self.continent_hosts.iter().sum()
    }
}

/// A network defined purely by a symmetric host-to-host RTT matrix, as in
/// the paper's PlanetLab experiments.
///
/// One-way delay between two hosts is half their RTT (§4: "We set one-way
/// delay between two members to be half of their RTT"). There is no router
/// graph, so [`Network::path_links`] returns `None` and link stress is not
/// defined for this substrate (matching the paper, which evaluates link
/// stress only on GT-ITM).
#[derive(Debug, Clone)]
pub struct MatrixNetwork {
    n: usize,
    /// Gateway-to-gateway RTT, flattened row-major.
    gateway_rtt: Vec<Micros>,
    /// Per-host access-link RTT (host ↔ its gateway router).
    access: Vec<Micros>,
    /// Continent index per host (exposed for tests/diagnostics).
    continent: Vec<usize>,
}

impl MatrixNetwork {
    /// Builds a network from an explicit symmetric gateway RTT matrix and
    /// per-host access RTTs.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square/symmetric with a zero diagonal, or
    /// if `access.len()` differs from the matrix dimension.
    pub fn from_matrix(gateway_rtt: Vec<Vec<Micros>>, access: Vec<Micros>) -> MatrixNetwork {
        let n = gateway_rtt.len();
        assert_eq!(access.len(), n, "one access delay per host");
        let mut flat = Vec::with_capacity(n * n);
        for (i, row) in gateway_rtt.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            assert_eq!(row[i], 0, "diagonal must be zero");
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, gateway_rtt[j][i], "matrix must be symmetric");
                flat.push(v);
            }
        }
        MatrixNetwork {
            n,
            gateway_rtt: flat,
            access,
            continent: vec![0; n],
        }
    }

    /// Synthesises a PlanetLab-like RTT matrix.
    pub fn synthetic_planetlab<R: Rng + ?Sized>(
        params: &PlanetLabParams,
        rng: &mut R,
    ) -> MatrixNetwork {
        let n = params.host_count();
        assert!(n > 0, "need at least one host");
        assert_eq!(
            params.continent_base.len(),
            params.continent_hosts.len(),
            "continent_base must match continent_hosts"
        );

        // Assign hosts to sites inside continents.
        let mut continent = Vec::with_capacity(n);
        let mut site = Vec::with_capacity(n);
        let mut site_offsets: Vec<Micros> = Vec::new();
        let mut site_continent: Vec<usize> = Vec::new();
        for (c, &hosts) in params.continent_hosts.iter().enumerate() {
            let mut remaining = hosts;
            while remaining > 0 {
                let size = rng
                    .gen_range(params.site_size.0..=params.site_size.1)
                    .min(remaining);
                let site_id = site_offsets.len();
                site_offsets.push(rng.gen_range(params.site_offset.0..=params.site_offset.1));
                site_continent.push(c);
                for _ in 0..size {
                    continent.push(c);
                    site.push(site_id);
                }
                remaining -= size;
            }
        }

        let mut gateway_rtt = vec![0 as Micros; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let base = if site[i] == site[j] {
                    rng.gen_range(params.intra_site.0..=params.intra_site.1)
                } else {
                    let b = params.continent_base[continent[i]][continent[j]];
                    b + site_offsets[site[i]] + site_offsets[site[j]]
                };
                let mut scale = 1.0 + rng.gen_range(-params.jitter..=params.jitter);
                if site[i] != site[j] {
                    let roll: f64 = rng.gen();
                    if roll < params.shortcut_prob {
                        scale *= rng.gen_range(params.shortcut_scale.0..=params.shortcut_scale.1);
                    } else if roll < params.shortcut_prob + params.detour_prob {
                        scale *= rng.gen_range(params.detour_scale.0..=params.detour_scale.1);
                    }
                }
                let rtt = ((base as f64) * scale).round().max(1.0) as Micros;
                gateway_rtt[i * n + j] = rtt;
                gateway_rtt[j * n + i] = rtt;
            }
        }
        let access = (0..n)
            .map(|_| rng.gen_range(params.access.0..=params.access.1))
            .collect();
        MatrixNetwork {
            n,
            gateway_rtt,
            access,
            continent,
        }
    }

    /// The continent index assigned to host `h` (0 for matrices built with
    /// [`MatrixNetwork::from_matrix`]).
    pub fn continent(&self, h: HostId) -> usize {
        self.continent[h.0]
    }
}

impl Network for MatrixNetwork {
    fn host_count(&self) -> usize {
        self.n
    }

    fn rtt(&self, a: HostId, b: HostId) -> Micros {
        if a == b {
            return 0;
        }
        self.gateway_rtt[a.0 * self.n + b.0] + self.access[a.0] + self.access[b.0]
    }

    fn gateway_rtt(&self, a: HostId, b: HostId) -> Micros {
        if a == b {
            return 0;
        }
        self.gateway_rtt[a.0 * self.n + b.0]
    }

    fn one_way(&self, a: HostId, b: HostId) -> Micros {
        self.rtt(a, b) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_params_give_227_hosts() {
        assert_eq!(PlanetLabParams::default().host_count(), 227);
    }

    #[test]
    fn synthetic_matrix_is_symmetric_with_zero_diagonal() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        assert_eq!(net.host_count(), 16);
        for a in 0..16 {
            assert_eq!(net.rtt(HostId(a), HostId(a)), 0);
            for b in 0..16 {
                assert_eq!(net.rtt(HostId(a), HostId(b)), net.rtt(HostId(b), HostId(a)));
            }
        }
    }

    #[test]
    fn inter_continent_rtt_dominates_intra() {
        // With shortcut/detour noise individual pairs can cross over, but
        // the *typical* (median) inter-continent RTT must still dominate.
        let mut rng = StdRng::seed_from_u64(12);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for a in 0..net.host_count() {
            for b in (a + 1)..net.host_count() {
                let rtt = net.gateway_rtt(HostId(a), HostId(b));
                if net.continent(HostId(a)) == net.continent(HostId(b)) {
                    intra.push(rtt);
                } else {
                    inter.push(rtt);
                }
            }
        }
        intra.sort_unstable();
        inter.sort_unstable();
        assert!(
            inter[inter.len() / 2] > 2 * intra[intra.len() / 2],
            "median inter must far exceed median intra"
        );
    }

    #[test]
    fn end_host_rtt_exceeds_gateway_rtt() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        for a in 0..4 {
            for b in 4..8 {
                let (a, b) = (HostId(a), HostId(b));
                assert!(net.rtt(a, b) > net.gateway_rtt(a, b));
                assert_eq!(net.one_way(a, b), net.rtt(a, b) / 2);
            }
        }
    }

    #[test]
    fn from_matrix_validates() {
        let rtt = vec![vec![0, 10], vec![10, 0]];
        let net = MatrixNetwork::from_matrix(rtt, vec![1, 2]);
        assert_eq!(net.gateway_rtt(HostId(0), HostId(1)), 10);
        assert_eq!(net.rtt(HostId(0), HostId(1)), 13);
        assert_eq!(net.path_links(HostId(0), HostId(1)), None);
        assert_eq!(net.link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn from_matrix_rejects_asymmetry() {
        MatrixNetwork::from_matrix(vec![vec![0, 10], vec![11, 0]], vec![1, 2]);
    }
}
