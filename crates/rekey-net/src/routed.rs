//! Hosts attached to a router-level topology, with routed delays and
//! per-link accounting.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::Rng;

use crate::dijkstra::{shortest_paths, ShortestPaths};
use crate::graph::{LinkId, RouterGraph, RouterId};
use crate::{HostId, Micros, Network};

/// A set of end hosts (group members plus the key server) attached to
/// routers of a [`RouterGraph`], as in the paper's GT-ITM experiments:
/// "Each member is attached to a randomly selected router."
///
/// Delays between hosts are shortest-path one-way propagation delays between
/// their attachment routers; [`Network::path_links`] exposes the actual
/// router path so that physical *link stress* can be measured (§2.3).
///
/// Shortest-path trees are computed lazily, once per distinct attachment
/// router, and cached.
#[derive(Debug)]
pub struct RoutedNetwork {
    graph: RouterGraph,
    attachments: Vec<RouterId>,
    sssp_cache: RefCell<HashMap<RouterId, Rc<ShortestPaths>>>,
}

impl RoutedNetwork {
    /// Attaches hosts at the given routers.
    ///
    /// # Panics
    ///
    /// Panics if any attachment router is out of range for `graph`.
    pub fn new(graph: RouterGraph, attachments: Vec<RouterId>) -> RoutedNetwork {
        for &r in &attachments {
            assert!(
                r.0 < graph.router_count(),
                "attachment router {r} out of range"
            );
        }
        RoutedNetwork {
            graph,
            attachments,
            sssp_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Attaches `hosts` hosts to uniformly random routers.
    pub fn random_attachment<R: Rng + ?Sized>(
        graph: RouterGraph,
        hosts: usize,
        rng: &mut R,
    ) -> RoutedNetwork {
        assert!(
            graph.router_count() > 0,
            "cannot attach hosts to an empty graph"
        );
        let attachments = (0..hosts)
            .map(|_| RouterId(rng.gen_range(0..graph.router_count())))
            .collect();
        RoutedNetwork::new(graph, attachments)
    }

    /// Attaches `hosts` hosts to routers drawn uniformly from `candidates`
    /// (e.g. only stub routers of a transit-stub topology).
    pub fn random_attachment_among<R: Rng + ?Sized>(
        graph: RouterGraph,
        candidates: &[RouterId],
        hosts: usize,
        rng: &mut R,
    ) -> RoutedNetwork {
        assert!(!candidates.is_empty(), "need at least one candidate router");
        let attachments = (0..hosts)
            .map(|_| candidates[rng.gen_range(0..candidates.len())])
            .collect();
        RoutedNetwork::new(graph, attachments)
    }

    /// The underlying router graph.
    pub fn graph(&self) -> &RouterGraph {
        &self.graph
    }

    /// The attachment router of host `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn attachment(&self, h: HostId) -> RouterId {
        self.attachments[h.0]
    }

    fn sssp(&self, source: RouterId) -> Rc<ShortestPaths> {
        if let Some(sp) = self.sssp_cache.borrow().get(&source) {
            return Rc::clone(sp);
        }
        let sp = Rc::new(shortest_paths(&self.graph, source));
        self.sssp_cache.borrow_mut().insert(source, Rc::clone(&sp));
        sp
    }
}

impl Network for RoutedNetwork {
    fn host_count(&self) -> usize {
        self.attachments.len()
    }

    fn one_way(&self, a: HostId, b: HostId) -> Micros {
        if a == b {
            return 0;
        }
        self.sssp(self.attachments[a.0])
            .distance(self.attachments[b.0])
            .expect("topology must be connected")
    }

    fn rtt(&self, a: HostId, b: HostId) -> Micros {
        2 * self.one_way(a, b)
    }

    fn gateway_rtt(&self, a: HostId, b: HostId) -> Micros {
        // Hosts sit directly on their attachment (gateway) routers, so the
        // gateway-to-gateway RTT equals the host-to-host RTT.
        self.rtt(a, b)
    }

    fn path_links(&self, a: HostId, b: HostId) -> Option<Vec<LinkId>> {
        if a == b {
            return Some(Vec::new());
        }
        self.sssp(self.attachments[a.0])
            .path_links(self.attachments[b.0])
    }

    fn link_count(&self) -> usize {
        self.graph.link_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtitm::{generate, GtItmParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_network() -> RoutedNetwork {
        // r0 -10- r1 -20- r2, hosts on r0, r2, r1.
        let mut g = RouterGraph::new();
        let r = g.add_routers(3);
        g.add_link(r[0], r[1], 10);
        g.add_link(r[1], r[2], 20);
        RoutedNetwork::new(g, vec![r[0], r[2], r[1]])
    }

    #[test]
    fn delays_follow_shortest_paths() {
        let net = line_network();
        assert_eq!(net.one_way(HostId(0), HostId(1)), 30);
        assert_eq!(net.rtt(HostId(0), HostId(1)), 60);
        assert_eq!(net.gateway_rtt(HostId(0), HostId(1)), 60);
        assert_eq!(net.one_way(HostId(0), HostId(2)), 10);
        assert_eq!(net.one_way(HostId(1), HostId(1)), 0);
    }

    #[test]
    fn paths_are_link_sequences() {
        let net = line_network();
        let path = net.path_links(HostId(0), HostId(1)).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(net.path_links(HostId(2), HostId(2)), Some(vec![]));
    }

    #[test]
    fn colocated_hosts_have_zero_delay() {
        let mut g = RouterGraph::new();
        let r = g.add_routers(2);
        g.add_link(r[0], r[1], 5);
        let net = RoutedNetwork::new(g, vec![r[0], r[0]]);
        assert_eq!(net.one_way(HostId(0), HostId(1)), 0);
        assert_eq!(net.path_links(HostId(0), HostId(1)), Some(vec![]));
    }

    #[test]
    fn random_attachment_on_gtitm() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = generate(&GtItmParams::small(), &mut rng);
        let stub = topo.stub_routers().to_vec();
        let net = RoutedNetwork::random_attachment_among(topo.into_graph(), &stub, 20, &mut rng);
        assert_eq!(net.host_count(), 20);
        for h in 0..20 {
            assert!(stub.contains(&net.attachment(HostId(h))));
        }
        // Symmetry of delays over an undirected graph.
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(
                    net.one_way(HostId(a), HostId(b)),
                    net.one_way(HostId(b), HostId(a))
                );
            }
        }
    }
}
