//! Per-link load accounting (link stress, encryptions per link).
//!
//! The paper defines the *stress of a physical link* as "the number of
//! identical copies of the message carried by a physical link during
//! multicast" (§2.3), and Fig. 13(c) plots the number of encryptions going
//! through each network link.

use crate::graph::LinkId;

/// An accumulator of per-link loads (message copies, encryptions, bytes…).
#[derive(Debug, Clone)]
pub struct LinkLoad {
    per_link: Vec<u64>,
}

impl LinkLoad {
    /// Creates a zeroed accumulator for `link_count` links.
    pub fn new(link_count: usize) -> LinkLoad {
        LinkLoad {
            per_link: vec![0; link_count],
        }
    }

    /// Adds `amount` to one link.
    ///
    /// # Panics
    ///
    /// Panics if the link is out of range.
    pub fn add(&mut self, link: LinkId, amount: u64) {
        self.per_link[link.0] += amount;
    }

    /// Adds `amount` to every link of a path.
    pub fn add_path(&mut self, path: &[LinkId], amount: u64) {
        for &link in path {
            self.add(link, amount);
        }
    }

    /// The load on one link.
    pub fn load(&self, link: LinkId) -> u64 {
        self.per_link[link.0]
    }

    /// Number of links tracked.
    pub fn link_count(&self) -> usize {
        self.per_link.len()
    }

    /// Maximum load over all links (0 for empty accumulators).
    pub fn max(&self) -> u64 {
        self.per_link.iter().copied().max().unwrap_or(0)
    }

    /// Total load over all links.
    pub fn total(&self) -> u64 {
        self.per_link.iter().sum()
    }

    /// All per-link loads, sorted ascending — the form needed to plot the
    /// paper's inverse cumulative distributions.
    pub fn sorted_loads(&self) -> Vec<u64> {
        let mut v = self.per_link.clone();
        v.sort_unstable();
        v
    }

    /// Iterates over `(link, load)` pairs with nonzero load.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (LinkId, u64)> + '_ {
        self.per_link
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, &v)| (LinkId(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports() {
        let mut load = LinkLoad::new(4);
        load.add(LinkId(1), 3);
        load.add_path(&[LinkId(1), LinkId(2)], 2);
        assert_eq!(load.load(LinkId(0)), 0);
        assert_eq!(load.load(LinkId(1)), 5);
        assert_eq!(load.load(LinkId(2)), 2);
        assert_eq!(load.max(), 5);
        assert_eq!(load.total(), 7);
        assert_eq!(load.sorted_loads(), vec![0, 0, 2, 5]);
        assert_eq!(load.iter_nonzero().count(), 2);
    }

    #[test]
    fn empty_accumulator() {
        let load = LinkLoad::new(0);
        assert_eq!(load.max(), 0);
        assert_eq!(load.total(), 0);
        assert!(load.sorted_loads().is_empty());
    }
}
