//! Loopback UDP endpoints for the real-socket protocol driver.
//!
//! This module is deliberately protocol-agnostic: it moves opaque payload
//! bytes between numbered nodes over `std::net::UdpSocket` datagrams and
//! knows nothing about rekeying. The protocol crate layers its own
//! versioned message codec on top (`rekey-proto`'s `runtime::wire`), so
//! the framing here carries only what the socket layer itself needs —
//! a header version and the logical source/destination node numbers:
//!
//! ```text
//! offset  size  field
//! 0       1     FRAME_VERSION
//! 1       4     source node id   (u32, little endian)
//! 5       4     destination node id (u32, little endian)
//! 9       ...   payload (opaque to this layer)
//! ```
//!
//! Destination routing is the caller's job: several logical nodes share
//! one endpoint (a worker thread hosting many members binds a single
//! socket), so the `dst` field demultiplexes datagrams after arrival.
//!
//! Datagram semantics are UDP's: frames can be dropped (kernel receive
//! buffer overflow under load) and the endpoint never retries — loss
//! recovery belongs to the protocol above, which is exactly the property
//! the rekeying protocol's NACK/recover path is built for. Every drop the
//! endpoint *can* observe is counted in [`EndpointStats`].

use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Version byte of the socket-layer frame header.
pub const FRAME_VERSION: u8 = 1;

/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 9;

/// Largest payload a single frame may carry. 65 507 is the theoretical
/// UDP-over-IPv4 maximum datagram payload; the header claims its share.
pub const MAX_PAYLOAD: usize = 65_507 - HEADER_LEN;

/// Routing header of a received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Logical node that sent the frame.
    pub src: u32,
    /// Logical node the frame is addressed to (endpoints host many
    /// nodes, so the caller demultiplexes on this).
    pub dst: u32,
}

/// Shared, thread-safe traffic counters of one endpoint. Cheap relaxed
/// atomics: the numbers feed reports, not control flow.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Frames handed to the kernel.
    pub packets_sent: AtomicU64,
    /// Well-formed frames received.
    pub packets_received: AtomicU64,
    /// Payload + header bytes handed to the kernel.
    pub bytes_sent: AtomicU64,
    /// Payload + header bytes received in well-formed frames.
    pub bytes_received: AtomicU64,
    /// Sends refused locally because the payload exceeded [`MAX_PAYLOAD`].
    pub oversize_drops: AtomicU64,
    /// Datagrams discarded on arrival: short header, wrong version.
    pub malformed_frames: AtomicU64,
}

impl EndpointStats {
    fn count(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds another endpoint's counters into `self` (report aggregation).
    pub fn absorb(&self, other: &EndpointStats) {
        for (into, from) in [
            (&self.packets_sent, &other.packets_sent),
            (&self.packets_received, &other.packets_received),
            (&self.bytes_sent, &other.bytes_sent),
            (&self.bytes_received, &other.bytes_received),
            (&self.oversize_drops, &other.oversize_drops),
            (&self.malformed_frames, &other.malformed_frames),
        ] {
            Self::count(into, from.load(Ordering::Relaxed));
        }
    }

    /// Reads a counter (relaxed).
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }
}

/// One bound loopback UDP socket plus its reusable buffers and counters.
///
/// Not `Clone`: each endpoint belongs to exactly one thread. The stats
/// handle ([`UdpEndpoint::stats`]) is the only shared piece.
pub struct UdpEndpoint {
    socket: UdpSocket,
    addr: SocketAddr,
    stats: Arc<EndpointStats>,
    recv_buf: Box<[u8; 65_536]>,
    send_buf: Vec<u8>,
}

impl UdpEndpoint {
    /// Binds a fresh endpoint on `127.0.0.1` with an OS-assigned port.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address space or descriptor
    /// exhaustion).
    pub fn bind_loopback() -> io::Result<UdpEndpoint> {
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = socket.local_addr()?;
        Ok(UdpEndpoint {
            socket,
            addr,
            stats: Arc::new(EndpointStats::default()),
            recv_buf: Box::new([0; 65_536]),
            send_buf: Vec::with_capacity(4_096),
        })
    }

    /// The bound address (`127.0.0.1:port`); give this to peers.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counter handle, safe to read from any thread.
    pub fn stats(&self) -> Arc<EndpointStats> {
        Arc::clone(&self.stats)
    }

    /// Sets the blocking-receive timeout; `None` blocks forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        // A zero Duration is an invalid input to the socket option; the
        // caller means "don't wait", which a 1 µs timeout approximates.
        let timeout = timeout.map(|t| t.max(Duration::from_micros(1)));
        self.socket.set_read_timeout(timeout)
    }

    /// Frames `payload` from `src` to `dst` and sends it to `peer`.
    ///
    /// Returns `false` (after counting an oversize drop) when the
    /// payload cannot fit one datagram — the frame is *not* sent and the
    /// protocol's loss recovery is expected to repair the gap.
    ///
    /// # Errors
    ///
    /// Propagates kernel send failures other than the local oversize
    /// check.
    pub fn send_frame(
        &mut self,
        peer: SocketAddr,
        src: u32,
        dst: u32,
        payload: &[u8],
    ) -> io::Result<bool> {
        if payload.len() > MAX_PAYLOAD {
            EndpointStats::count(&self.stats.oversize_drops, 1);
            return Ok(false);
        }
        self.send_buf.clear();
        self.send_buf.push(FRAME_VERSION);
        self.send_buf.extend_from_slice(&src.to_le_bytes());
        self.send_buf.extend_from_slice(&dst.to_le_bytes());
        self.send_buf.extend_from_slice(payload);
        self.socket.send_to(&self.send_buf, peer)?;
        EndpointStats::count(&self.stats.packets_sent, 1);
        EndpointStats::count(&self.stats.bytes_sent, self.send_buf.len() as u64);
        Ok(true)
    }

    /// Receives one frame, honouring the configured read timeout.
    ///
    /// Returns `None` on timeout and on malformed datagrams (counted),
    /// so a receive loop can treat every `None` as "nothing useful right
    /// now". The payload borrow is valid until the next receive.
    ///
    /// # Errors
    ///
    /// Propagates kernel receive failures that are neither a timeout nor
    /// `WouldBlock`.
    pub fn recv_frame(&mut self) -> io::Result<Option<(FrameHeader, &[u8])>> {
        let len = match self.socket.recv_from(&mut self.recv_buf[..]) {
            Ok((len, _)) => len,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e),
        };
        if len < HEADER_LEN || self.recv_buf[0] != FRAME_VERSION {
            EndpointStats::count(&self.stats.malformed_frames, 1);
            return Ok(None);
        }
        let src = u32::from_le_bytes(self.recv_buf[1..5].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(self.recv_buf[5..9].try_into().expect("4 bytes"));
        EndpointStats::count(&self.stats.packets_received, 1);
        EndpointStats::count(&self.stats.bytes_received, len as u64);
        Ok(Some((
            FrameHeader { src, dst },
            &self.recv_buf[HEADER_LEN..len],
        )))
    }
}

impl std::fmt::Debug for UdpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpEndpoint")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn frames_round_trip_between_endpoints() {
        let mut a = UdpEndpoint::bind_loopback().unwrap();
        let mut b = UdpEndpoint::bind_loopback().unwrap();
        b.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();

        assert!(a.send_frame(b.local_addr(), 7, 42, b"hello").unwrap());
        let (header, payload) = b.recv_frame().unwrap().expect("frame arrives");
        assert_eq!(header, FrameHeader { src: 7, dst: 42 });
        assert_eq!(payload, b"hello");

        let stats = b.stats();
        assert_eq!(stats.packets_received.load(Ordering::Relaxed), 1);
        assert_eq!(
            stats.bytes_received.load(Ordering::Relaxed),
            (HEADER_LEN + 5) as u64
        );
    }

    #[test]
    fn oversize_payload_is_dropped_locally() {
        let mut a = UdpEndpoint::bind_loopback().unwrap();
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(!a.send_frame(a.local_addr(), 0, 1, &big).unwrap());
        assert_eq!(a.stats().oversize_drops.load(Ordering::Relaxed), 1);
        assert_eq!(a.stats().packets_sent.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn short_and_wrong_version_datagrams_are_counted_not_delivered() {
        let mut a = UdpEndpoint::bind_loopback().unwrap();
        let b = UdpEndpoint::bind_loopback().unwrap();
        a.set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();

        // Raw socket sends bypassing the framer: a short datagram and a
        // version-skewed header.
        b.socket
            .send_to(&[FRAME_VERSION, 1, 2], a.local_addr())
            .unwrap();
        let mut skewed = vec![FRAME_VERSION + 1];
        skewed.extend_from_slice(&[0; 8]);
        b.socket.send_to(&skewed, a.local_addr()).unwrap();

        assert!(a.recv_frame().unwrap().is_none());
        assert!(a.recv_frame().unwrap().is_none());
        assert_eq!(a.stats().malformed_frames.load(Ordering::Relaxed), 2);
        assert_eq!(a.stats().packets_received.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn timeout_returns_none() {
        let mut a = UdpEndpoint::bind_loopback().unwrap();
        a.set_read_timeout(Some(Duration::from_millis(5))).unwrap();
        assert!(a.recv_frame().unwrap().is_none());
    }
}
