//! NICE clusters: bounded-size member sets led by their topological center.

use rekey_net::{HostId, Micros, Network};

/// One NICE cluster: a set of hosts and its leader.
///
/// NICE keeps cluster sizes in `[k, 3k−1]` (the paper uses "three to eight
/// users", i.e. `k = 3`); the leader is the *graph-theoretic center* of the
/// cluster — the member minimising the maximum RTT to the others.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Cluster members, including the leader.
    pub members: Vec<HostId>,
    /// The cluster leader.
    pub leader: HostId,
}

impl Cluster {
    /// Creates a singleton cluster.
    pub fn singleton(host: HostId) -> Cluster {
        Cluster {
            members: vec![host],
            leader: host,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `true` iff `host` is a member.
    pub fn contains(&self, host: HostId) -> bool {
        self.members.contains(&host)
    }

    /// The graph-theoretic center: the member with the smallest maximum RTT
    /// to the other members (ties broken by mean RTT, then by host ID for
    /// determinism).
    ///
    /// # Panics
    ///
    /// Panics on an empty cluster.
    pub fn center(&self, net: &impl Network) -> HostId {
        assert!(!self.members.is_empty(), "center of empty cluster");
        *self
            .members
            .iter()
            .min_by_key(|&&candidate| {
                let mut max = 0;
                let mut sum = 0;
                for &other in &self.members {
                    let rtt = net.rtt(candidate, other);
                    max = max.max(rtt);
                    sum += rtt;
                }
                (max, sum, candidate.0)
            })
            .expect("non-empty")
    }

    /// Re-elects the leader as the current center.
    pub fn refresh_leader(&mut self, net: &impl Network) {
        self.leader = self.center(net);
    }

    /// Splits the cluster into two of roughly equal size, seeding with the
    /// two farthest-apart members and assigning the rest by proximity
    /// (NICE's split heuristic). Leaders of both halves are re-elected.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has fewer than two members.
    pub fn split(&self, net: &impl Network) -> (Cluster, Cluster) {
        assert!(
            self.members.len() >= 2,
            "cannot split a cluster of {}",
            self.members.len()
        );
        // Farthest pair (quadratic; clusters are ≤ 3k−1 members).
        let (mut seed_a, mut seed_b, mut worst) = (self.members[0], self.members[1], 0);
        for (i, &a) in self.members.iter().enumerate() {
            for &b in &self.members[i + 1..] {
                let rtt = net.rtt(a, b);
                if rtt >= worst {
                    worst = rtt;
                    seed_a = a;
                    seed_b = b;
                }
            }
        }
        let mut half_a = vec![seed_a];
        let mut half_b = vec![seed_b];
        let mut rest: Vec<HostId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != seed_a && m != seed_b)
            .collect();
        // Assign by proximity, keeping sizes balanced (|difference| ≤ 1).
        rest.sort_by_key(|&m| {
            let da = net.rtt(m, seed_a) as i64;
            let db = net.rtt(m, seed_b) as i64;
            (da - db).abs()
        });
        rest.reverse(); // most decisive assignments first
        let cap = self.members.len().div_ceil(2);
        for m in rest {
            let prefer_a = net.rtt(m, seed_a) <= net.rtt(m, seed_b);
            if (prefer_a && half_a.len() < cap) || half_b.len() >= cap {
                half_a.push(m);
            } else {
                half_b.push(m);
            }
        }
        let mut a = Cluster {
            members: half_a,
            leader: seed_a,
        };
        let mut b = Cluster {
            members: half_b,
            leader: seed_b,
        };
        a.refresh_leader(net);
        b.refresh_leader(net);
        (a, b)
    }

    /// Maximum RTT from the leader to any member (the cluster "radius").
    pub fn radius(&self, net: &impl Network) -> Micros {
        self.members
            .iter()
            .map(|&m| net.rtt(self.leader, m))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_net::MatrixNetwork;

    /// 6 hosts: 0-2 close together, 3-5 close together, far across.
    fn two_sites() -> MatrixNetwork {
        let near = 2;
        let far = 100;
        let n = 6;
        let mut rtt = vec![vec![0u64; n]; n];
        for (i, row) in rtt.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    *cell = if (i < 3) == (j < 3) { near } else { far };
                }
            }
        }
        MatrixNetwork::from_matrix(rtt, vec![0; n])
    }

    #[test]
    fn center_minimises_max_rtt() {
        let net = two_sites();
        let c = Cluster {
            members: vec![HostId(0), HostId(1), HostId(3)],
            leader: HostId(3),
        };
        // Hosts 0 and 1 both have max RTT 100 (to 3); host 3 has max 100
        // too, but 0/1 win on mean; tie between 0 and 1 broken by id.
        assert_eq!(c.center(&net), HostId(0));
    }

    #[test]
    fn split_separates_sites() {
        let net = two_sites();
        let c = Cluster {
            members: (0..6).map(HostId).collect(),
            leader: HostId(0),
        };
        let (a, b) = c.split(&net);
        assert_eq!(a.len() + b.len(), 6);
        assert!((a.len() as i64 - b.len() as i64).abs() <= 1);
        let site = |c: &Cluster| {
            c.members
                .iter()
                .map(|h| usize::from(h.0 >= 3))
                .sum::<usize>()
        };
        // Each half must be all-one-site (0 or len matches).
        assert!(site(&a) == 0 || site(&a) == a.len());
        assert!(site(&b) == 0 || site(&b) == b.len());
        assert!(a.radius(&net) <= 2);
        assert!(b.radius(&net) <= 2);
    }

    #[test]
    fn singleton_properties() {
        let net = two_sites();
        let c = Cluster::singleton(HostId(4));
        assert_eq!(c.len(), 1);
        assert_eq!(c.center(&net), HostId(4));
        assert_eq!(c.radius(&net), 0);
        assert!(c.contains(HostId(4)));
        assert!(!c.contains(HostId(0)));
    }
}
