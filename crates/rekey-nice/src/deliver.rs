//! Multicast delivery over the NICE hierarchy.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use rekey_net::{HostId, LinkLoad, Micros, Network};

use crate::hierarchy::NiceHierarchy;

/// One copy received by a member during a NICE multicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiceDelivery {
    /// Arrival time (µs after the session start).
    pub arrival: Micros,
    /// Who transmitted the copy (`None` for the key server's unicast to the
    /// root in rekey sessions).
    pub from: Option<HostId>,
}

/// The outcome of one NICE multicast session.
#[derive(Debug, Clone)]
pub struct NiceOutcome {
    arrivals: HashMap<HostId, NiceDelivery>,
    duplicates: HashMap<HostId, u32>,
    forwarded: HashMap<HostId, u32>,
    transmissions: Vec<(HostId, HostId)>,
    server_unicast: Option<(HostId, HostId)>,
}

impl NiceOutcome {
    /// The first delivery to `host`, if reached.
    pub fn delivery(&self, host: HostId) -> Option<&NiceDelivery> {
        self.arrivals.get(&host)
    }

    /// Copies forwarded by `host` (the *user stress* metric).
    pub fn user_stress(&self, host: HostId) -> u32 {
        self.forwarded.get(&host).copied().unwrap_or(0)
    }

    /// Duplicate copies received by `host` (0 in a correct hierarchy).
    pub fn duplicates(&self, host: HostId) -> u32 {
        self.duplicates.get(&host).copied().unwrap_or(0)
    }

    /// Number of members reached.
    pub fn reached(&self) -> usize {
        self.arrivals.len()
    }

    /// All member-to-member transmissions (excluding the server's unicast
    /// to the root).
    pub fn transmissions(&self) -> &[(HostId, HostId)] {
        &self.transmissions
    }

    /// The server-to-root unicast of a rekey session, if any.
    pub fn server_unicast(&self) -> Option<(HostId, HostId)> {
        self.server_unicast
    }

    /// Maps all transmissions (including the server unicast) onto physical
    /// links. `None` on link-less substrates.
    pub fn link_load(&self, net: &impl Network) -> Option<LinkLoad> {
        if net.link_count() == 0 {
            return None;
        }
        let mut load = LinkLoad::new(net.link_count());
        let all = self.server_unicast.iter().chain(self.transmissions.iter());
        for &(from, to) in all {
            load.add_path(&net.path_links(from, to)?, 1);
        }
        Some(load)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    at: Micros,
    seq: u64,
    to: HostId,
    from: Option<HostId>,
    /// The `(layer, cluster)` the copy was sent within; `None` for external
    /// injections (server unicast, data-sender unicast to its leader).
    via: Option<(usize, usize)>,
    /// For external injections: hosts the receiver must not send back to.
    suppress: Option<HostId>,
}

impl NiceHierarchy {
    fn run_delivery(
        &self,
        net: &impl Network,
        seed: Pending,
        server_unicast: Option<(HostId, HostId)>,
    ) -> NiceOutcome {
        let mut heap: BinaryHeap<Reverse<(Micros, u64, usize)>> = BinaryHeap::new();
        let mut pendings: Vec<Pending> = vec![seed];
        let mut seq = 1u64;
        heap.push(Reverse((pendings[0].at, 0, 0)));
        let mut outcome = NiceOutcome {
            arrivals: HashMap::new(),
            duplicates: HashMap::new(),
            forwarded: HashMap::new(),
            transmissions: Vec::new(),
            server_unicast,
        };
        while let Some(Reverse((at, _, idx))) = heap.pop() {
            let p = pendings[idx];
            if outcome.arrivals.contains_key(&p.to) {
                *outcome.duplicates.entry(p.to).or_insert(0) += 1;
                continue;
            }
            outcome.arrivals.insert(
                p.to,
                NiceDelivery {
                    arrival: at,
                    from: p.from,
                },
            );
            // Forward to all peers in all clusters this member belongs to,
            // except the cluster the copy arrived in (NICE data plane).
            for (layer, ci) in self.clusters_of(p.to) {
                if p.via == Some((layer, ci)) {
                    continue;
                }
                for &peer in &self.layer(layer)[ci].members {
                    if peer == p.to || Some(peer) == p.suppress || Some(peer) == p.from {
                        continue;
                    }
                    let delay = net.one_way(p.to, peer);
                    let next = Pending {
                        at: at + delay,
                        seq,
                        to: peer,
                        from: Some(p.to),
                        via: Some((layer, ci)),
                        suppress: None,
                    };
                    pendings.push(next);
                    heap.push(Reverse((next.at, seq, pendings.len() - 1)));
                    seq += 1;
                    *outcome.forwarded.entry(p.to).or_insert(0) += 1;
                    outcome.transmissions.push((p.to, peer));
                }
            }
        }
        outcome
    }

    /// Rekey transport (§4.1.1): "we let the key server unicast the message
    /// to the root of the NICE tree … The message then traverses the tree
    /// in a top-down fashion."
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy is empty.
    pub fn rekey_multicast(&self, net: &impl Network, server: HostId) -> NiceOutcome {
        let root = self.root().expect("rekey multicast on empty hierarchy");
        let seed = Pending {
            at: net.one_way(server, root),
            seq: 0,
            to: root,
            from: None,
            via: None,
            suppress: None,
        };
        self.run_delivery(net, seed, Some((server, root)))
    }

    /// Data transport (§4.1.2): "the sender unicasts the message to the
    /// leader of its local cluster. Then the message traverses the ALM tree
    /// in a bottom-up and then top-down fashion."
    ///
    /// The sender's own layer-0 peers are reached by the leader (the sender
    /// itself is suppressed as a recipient).
    ///
    /// # Panics
    ///
    /// Panics if `sender` is not a member.
    pub fn data_multicast(&self, net: &impl Network, sender: HostId) -> NiceOutcome {
        let (l0, c0) = *self
            .clusters_of(sender)
            .first()
            .unwrap_or_else(|| panic!("{sender} is not a member"));
        debug_assert_eq!(l0, 0, "clusters_of lists layer 0 first");
        let leader = self.layer(l0)[c0].leader;
        if leader == sender {
            // The sender leads its cluster: it starts the dissemination
            // itself (no unicast hop). It is the origin, not a receiver.
            let seed = Pending {
                at: 0,
                seq: 0,
                to: sender,
                from: None,
                via: None,
                suppress: None,
            };
            let mut outcome = self.run_delivery(net, seed, None);
            outcome.arrivals.remove(&sender);
            return outcome;
        }
        let seed = Pending {
            at: net.one_way(sender, leader),
            seq: 0,
            to: leader,
            from: Some(sender),
            via: None,
            suppress: Some(sender),
        };
        let mut outcome = self.run_delivery(net, seed, None);
        // Account the sender's unicast as one forwarded copy.
        *outcome.forwarded.entry(sender).or_insert(0) += 1;
        outcome.transmissions.push((sender, leader));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{NiceHierarchy, NiceParams};
    use rand::SeedableRng;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    fn build(n: usize, seed: u64) -> (NiceHierarchy, MatrixNetwork) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let mut h = NiceHierarchy::new(NiceParams::default());
        for i in 0..n {
            h.join(HostId(i), &net);
            h.check_invariants().unwrap();
        }
        (h, net)
    }

    #[test]
    fn rekey_reaches_everyone_exactly_once() {
        let (h, net) = build(14, 1);
        let server = HostId(15);
        let out = h.rekey_multicast(&net, server);
        assert_eq!(out.reached(), 14);
        for &m in &h.members() {
            assert_eq!(out.duplicates(m), 0, "duplicate at {m}");
        }
        assert_eq!(out.server_unicast().unwrap().0, server);
    }

    #[test]
    fn data_reaches_everyone_but_sender() {
        let (h, net) = build(12, 2);
        for sender in h.members() {
            let out = h.data_multicast(&net, sender);
            // The sender never receives its own message back…
            assert!(
                out.delivery(sender).is_none(),
                "sender {sender} got a copy back"
            );
            // …and everyone else gets exactly one copy.
            assert_eq!(out.reached(), 11);
            for &m in &h.members() {
                assert_eq!(out.duplicates(m), 0);
            }
        }
    }

    #[test]
    fn root_delivery_goes_through_leaders() {
        let (h, net) = build(14, 3);
        let out = h.rekey_multicast(&net, HostId(15));
        let root = h.root().unwrap();
        assert_eq!(out.delivery(root).unwrap().from, None);
        assert_eq!(
            out.delivery(root).unwrap().arrival,
            net.one_way(HostId(15), root)
        );
        // Arrival times are non-decreasing along forwarding edges.
        for &(from, to) in out.transmissions() {
            if let (Some(df), Some(dt)) = (out.delivery(from), out.delivery(to)) {
                assert!(dt.arrival >= df.arrival);
            }
        }
    }

    #[test]
    fn leave_keeps_delivery_complete() {
        let (mut h, net) = build(13, 4);
        h.leave(h.root().unwrap(), &net);
        h.check_invariants().unwrap();
        let out = h.rekey_multicast(&net, HostId(15));
        assert_eq!(out.reached(), 12);
    }

    #[test]
    fn singleton_group() {
        let (h, net) = build(1, 5);
        let out = h.rekey_multicast(&net, HostId(15));
        assert_eq!(out.reached(), 1);
        assert_eq!(out.user_stress(HostId(0)), 0);
    }
}
