//! The layered NICE hierarchy: joins, leaves and cluster maintenance.

use rekey_net::{HostId, Network};

use crate::cluster::Cluster;

/// NICE protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiceParams {
    /// The cluster-size parameter `k`: sizes are kept in `[k, 3k−1]`. The
    /// paper simulates NICE with "three to eight users" per cluster, i.e.
    /// `k = 3`.
    pub k: usize,
}

impl Default for NiceParams {
    fn default() -> NiceParams {
        NiceParams { k: 3 }
    }
}

impl NiceParams {
    /// Maximum cluster size `3k − 1`.
    pub fn max_size(&self) -> usize {
        3 * self.k - 1
    }
}

/// The NICE layered-cluster hierarchy.
///
/// Layer 0 contains every group member partitioned into clusters; the
/// leaders of layer-`i` clusters are the members of layer `i+1`, up to a
/// single top cluster whose leader is the **root**. Joins are sequential
/// (as in the paper's NICE simulations: "a user will not join or leave the
/// group until the previous join or leave terminates").
#[derive(Debug, Clone, Default)]
pub struct NiceHierarchy {
    params: NiceParams,
    layers: Vec<Vec<Cluster>>,
}

impl NiceHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(params: NiceParams) -> NiceHierarchy {
        NiceHierarchy {
            params,
            layers: Vec::new(),
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &NiceParams {
        &self.params
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The clusters of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer(&self, layer: usize) -> &[Cluster] {
        &self.layers[layer]
    }

    /// All group members (layer 0).
    pub fn members(&self) -> Vec<HostId> {
        self.layers.first().map_or_else(Vec::new, |layer| {
            layer
                .iter()
                .flat_map(|c| c.members.iter().copied())
                .collect()
        })
    }

    /// Number of group members.
    pub fn member_count(&self) -> usize {
        self.layers
            .first()
            .map_or(0, |layer| layer.iter().map(Cluster::len).sum())
    }

    /// The root: leader of the (single) top cluster.
    pub fn root(&self) -> Option<HostId> {
        self.layers
            .last()
            .and_then(|layer| layer.first())
            .map(|c| c.leader)
    }

    /// All clusters `host` belongs to, as `(layer, cluster_index)` pairs.
    pub fn clusters_of(&self, host: HostId) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            for (ci, cluster) in layer.iter().enumerate() {
                if cluster.contains(host) {
                    out.push((li, ci));
                }
            }
        }
        out
    }

    /// Joins `host`: descends from the root picking the closest leader at
    /// each layer (the NICE join procedure), inserts into the chosen
    /// layer-0 cluster, then runs maintenance.
    ///
    /// # Panics
    ///
    /// Panics if `host` is already a member.
    pub fn join(&mut self, host: HostId, net: &impl Network) {
        assert!(
            !self.members().contains(&host),
            "{host} is already a member"
        );
        if self.layers.is_empty() {
            self.layers.push(vec![Cluster::singleton(host)]);
            return;
        }
        let mut layer = self.layers.len() - 1;
        let mut ci = 0;
        while layer > 0 {
            let closest = *self.layers[layer][ci]
                .members
                .iter()
                .min_by_key(|&&m| (net.rtt(host, m), m.0))
                .expect("clusters are non-empty");
            ci = self.layers[layer - 1]
                .iter()
                .position(|c| c.leader == closest)
                .expect("every upper-layer member leads a cluster below");
            layer -= 1;
        }
        self.layers[0][ci].members.push(host);
        self.maintain(net);
    }

    /// Removes `host` from the group and repairs the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not a member.
    pub fn leave(&mut self, host: HostId, net: &impl Network) {
        let layer0 = self.layers.first_mut().expect("leave from empty hierarchy");
        let ci = layer0
            .iter()
            .position(|c| c.contains(host))
            .unwrap_or_else(|| panic!("{host} is not a member"));
        layer0[ci].members.retain(|&m| m != host);
        self.maintain(net);
    }

    /// Cluster maintenance: bottom-up, per layer — drop empty clusters,
    /// merge undersized ones into the cluster with the closest leader,
    /// split oversized ones, re-elect centers as leaders, and reconcile the
    /// next layer's membership with the current layer's leader set.
    pub fn maintain(&mut self, net: &impl Network) {
        if self.member_count() == 0 {
            self.layers.clear();
            return;
        }
        let mut layer = 0;
        loop {
            // Drop empties.
            self.layers[layer].retain(|c| !c.is_empty());

            // Merge undersized clusters (only meaningful with >1 cluster).
            loop {
                let layer_ref = &self.layers[layer];
                if layer_ref.len() <= 1 {
                    break;
                }
                let Some(small) = layer_ref.iter().position(|c| c.len() < self.params.k) else {
                    break;
                };
                let small_leader = layer_ref[small].leader;
                let target = layer_ref
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != small)
                    .min_by_key(|&(_, c)| (net.rtt(small_leader, c.leader), c.leader.0))
                    .map(|(i, _)| i)
                    .expect("at least two clusters");
                let absorbed = self.layers[layer].remove(small);
                let target = if target > small { target - 1 } else { target };
                self.layers[layer][target].members.extend(absorbed.members);
            }

            // Split oversized clusters.
            let mut i = 0;
            while i < self.layers[layer].len() {
                if self.layers[layer][i].len() > self.params.max_size() {
                    let (a, b) = self.layers[layer][i].split(net);
                    self.layers[layer][i] = a;
                    self.layers[layer].push(b);
                } else {
                    i += 1;
                }
            }

            // Re-elect leaders.
            for c in &mut self.layers[layer] {
                c.refresh_leader(net);
            }

            // Top reached?
            if self.layers[layer].len() == 1 {
                self.layers.truncate(layer + 1);
                return;
            }

            // Reconcile the layer above with the current leader set.
            let leaders: Vec<HostId> = self.layers[layer].iter().map(|c| c.leader).collect();
            if self.layers.len() == layer + 1 {
                self.layers.push(vec![Cluster {
                    members: leaders.clone(),
                    leader: leaders[0],
                }]);
            } else {
                let upper = &mut self.layers[layer + 1];
                for c in upper.iter_mut() {
                    c.members.retain(|m| leaders.contains(m));
                }
                upper.retain(|c| !c.is_empty());
                let present: Vec<HostId> = upper
                    .iter()
                    .flat_map(|c| c.members.iter().copied())
                    .collect();
                for &l in &leaders {
                    if !present.contains(&l) {
                        if upper.is_empty() {
                            upper.push(Cluster::singleton(l));
                        } else {
                            let best = upper
                                .iter()
                                .enumerate()
                                .min_by_key(|&(_, c)| (net.rtt(l, c.leader), c.leader.0))
                                .map(|(i, _)| i)
                                .expect("non-empty upper layer");
                            upper[best].members.push(l);
                        }
                    }
                }
            }
            layer += 1;
        }
    }

    /// Checks the NICE structural invariants; used by tests.
    ///
    /// * each member appears in exactly one cluster per layer it belongs to;
    /// * layer `i+1` members are exactly the layer-`i` leaders;
    /// * cluster sizes are in `[k, 3k−1]` whenever the layer has more than
    ///   one cluster (a lone cluster may be smaller);
    /// * the top layer has a single cluster.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Ok(());
        }
        for (li, layer) in self.layers.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for c in layer {
                if c.is_empty() {
                    return Err(format!("empty cluster at layer {li}"));
                }
                if !c.contains(c.leader) {
                    return Err(format!("leader not a member at layer {li}"));
                }
                for &m in &c.members {
                    if !seen.insert(m) {
                        return Err(format!("{m} appears twice at layer {li}"));
                    }
                }
                if layer.len() > 1 && (c.len() < self.params.k || c.len() > self.params.max_size())
                {
                    return Err(format!(
                        "cluster size {} out of bounds at layer {li}",
                        c.len()
                    ));
                }
            }
            if li + 1 < self.layers.len() {
                let leaders: std::collections::HashSet<HostId> =
                    layer.iter().map(|c| c.leader).collect();
                let upper: std::collections::HashSet<HostId> = self.layers[li + 1]
                    .iter()
                    .flat_map(|c| c.members.iter().copied())
                    .collect();
                if leaders != upper {
                    return Err(format!(
                        "layer {} members are not layer-{li} leaders",
                        li + 1
                    ));
                }
            }
        }
        if self.layers.last().expect("non-empty").len() != 1 {
            return Err("top layer must hold a single cluster".into());
        }
        Ok(())
    }
}
