//! NICE application-layer multicast — the baseline ALM scheme of the
//! paper's evaluation (§4).
//!
//! NICE (Banerjee, Bhattacharjee & Kommareddy, SIGCOMM 2002) arranges
//! members into a hierarchy of bounded-size clusters: every member is in a
//! layer-0 cluster; cluster leaders (topological centers) form layer 1, and
//! so on up to a single top cluster whose leader is the *root*. The paper
//! re-implemented NICE from its protocol description, and so do we:
//!
//! * [`Cluster`] — member sets with center leaders, split/merge heuristics;
//! * [`NiceHierarchy`] — sequential joins/leaves with maintenance keeping
//!   cluster sizes in `[k, 3k−1]` (`k = 3` ⇒ "three to eight users");
//! * delivery ([`NiceHierarchy::rekey_multicast`],
//!   [`NiceHierarchy::data_multicast`]) — the key server unicasts rekey
//!   messages to the root which floods top-down; a data sender unicasts to
//!   its local cluster leader (bottom-up then top-down), per §4.1.
//!
//! ```
//! use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
//! use rekey_nice::{NiceHierarchy, NiceParams};
//! # use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
//! let mut nice = NiceHierarchy::new(NiceParams::default());
//! for i in 0..10 {
//!     nice.join(HostId(i), &net);
//! }
//! let out = nice.rekey_multicast(&net, HostId(15));
//! assert_eq!(out.reached(), 10);
//! ```

mod cluster;
mod deliver;
mod hierarchy;

pub use cluster::Cluster;
pub use deliver::{NiceDelivery, NiceOutcome};
pub use hierarchy::{NiceHierarchy, NiceParams};
