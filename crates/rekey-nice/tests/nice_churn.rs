//! Property tests: the NICE hierarchy under arbitrary join/leave
//! sequences — structural invariants and delivery completeness must hold
//! after every operation.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::SeedableRng;
use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
use rekey_nice::{NiceHierarchy, NiceParams};

fn net(seed: u64) -> MatrixNetwork {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut params = PlanetLabParams::small();
    params.continent_hosts = vec![20, 14];
    MatrixNetwork::synthetic_planetlab(&params, &mut rng)
}

/// Applies a churn script: each byte either joins the lowest absent host
/// (even) or removes a present host (odd), keeping at least one member.
fn apply_script(h: &mut NiceHierarchy, net: &MatrixNetwork, script: &[u8]) -> Vec<HostId> {
    let capacity = net.host_count() - 1;
    let mut present: Vec<bool> = vec![false; capacity];
    for &b in script {
        let count = present.iter().filter(|&&p| p).count();
        if b % 2 == 0 || count <= 1 {
            if let Some(slot) = (0..capacity)
                .cycle()
                .skip(usize::from(b) % capacity)
                .take(capacity)
                .find(|&i| !present[i])
            {
                h.join(HostId(slot), net);
                present[slot] = true;
            }
        } else {
            let victims: Vec<usize> = (0..capacity).filter(|&i| present[i]).collect();
            let v = victims[usize::from(b) % victims.len()];
            h.leave(HostId(v), net);
            present[v] = false;
        }
    }
    (0..capacity).filter(|&i| present[i]).map(HostId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cluster sizes, leader chains and layer structure hold after every
    /// single operation.
    #[test]
    fn invariants_hold_after_every_operation(script in vec(any::<u8>(), 1..48), seed in 0u64..200) {
        let net = net(seed);
        let mut h = NiceHierarchy::new(NiceParams::default());
        let capacity = net.host_count() - 1;
        let mut present: Vec<bool> = vec![false; capacity];
        for &b in &script {
            let count = present.iter().filter(|&&p| p).count();
            if b % 2 == 0 || count <= 1 {
                let absent: Vec<usize> = (0..capacity).filter(|&i| !present[i]).collect();
                if let Some(&slot) = absent.get(usize::from(b) % absent.len().max(1)) {
                    h.join(HostId(slot), &net);
                    present[slot] = true;
                }
            } else {
                let victims: Vec<usize> = (0..capacity).filter(|&i| present[i]).collect();
                if !victims.is_empty() {
                    let v = victims[usize::from(b) % victims.len()];
                    h.leave(HostId(v), &net);
                    present[v] = false;
                }
            }
            h.check_invariants().map_err(TestCaseError::fail)?;
            prop_assert_eq!(h.member_count(), present.iter().filter(|&&p| p).count());
        }
    }

    /// Rekey and data multicast reach every member exactly once whatever
    /// the churn history that produced the hierarchy.
    #[test]
    fn delivery_complete_after_churn(script in vec(any::<u8>(), 1..40), seed in 0u64..200) {
        let net = net(seed);
        let mut h = NiceHierarchy::new(NiceParams::default());
        let members = apply_script(&mut h, &net, &script);
        prop_assume!(!members.is_empty());
        h.check_invariants().map_err(TestCaseError::fail)?;

        let server = HostId(net.host_count() - 1);
        let out = h.rekey_multicast(&net, server);
        prop_assert_eq!(out.reached(), members.len());
        for &m in &members {
            prop_assert_eq!(out.duplicates(m), 0);
        }

        let sender = members[script[0] as usize % members.len()];
        let out = h.data_multicast(&net, sender);
        prop_assert_eq!(out.reached(), members.len() - 1);
        prop_assert!(out.delivery(sender).is_none());
    }
}

/// A hand-written worst case: repeated join/leave of the same host at a
/// cluster boundary (size oscillating around the split threshold).
#[test]
fn split_merge_oscillation() {
    let net = net(99);
    let mut h = NiceHierarchy::new(NiceParams { k: 3 });
    for i in 0..9 {
        h.join(HostId(i), &net);
    }
    // Oscillate around 8/9 members, the split boundary for k = 3.
    for _ in 0..20 {
        h.leave(HostId(8), &net);
        h.check_invariants().unwrap();
        h.join(HostId(8), &net);
        h.check_invariants().unwrap();
    }
    assert_eq!(h.member_count(), 9);
}
