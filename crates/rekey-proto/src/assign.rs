//! Topology-aware user ID assignment (§3.1).
//!
//! A joining user determines its ID digit by digit. For digit `i` it
//!
//! 1. **collects** up to `P` user records per `(i, j)`-ID subtree by
//!    querying users it already knows (each query returns the queried
//!    user's table neighbors matching a target prefix);
//! 2. **measures** the gateway-router RTT `r(u, w)` to every collected
//!    user;
//! 3. computes the `F`-percentile of the RTTs per subtree and joins the
//!    subtree `b` with the smallest percentile if it is `≤ R_{i+1}`,
//!    otherwise stops probing;
//! 4. **notifies** the key server, which assigns the remaining digits so
//!    the final ID is unique (footnote 3 fallback included).
//!
//! The paper sets `P = 10`, `F = 80`-percentile and
//! `R = (150, 30, 9, 3)` ms for `D = 5`.

use std::collections::{BTreeMap, BTreeSet};

use rekey_id::{IdPrefix, IdSpec, IdTree, UserId};
use rekey_net::{ms, HostId, Micros, Network};
use rekey_table::{Member, NeighborTable};
use rekey_tmesh::metrics::percentile;

/// Parameters of the ID assignment protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignParams {
    /// Users to collect per `(i, j)`-ID subtree (the paper's `P = 10`).
    pub p: usize,
    /// Percentile of measured RTTs compared against the thresholds (the
    /// paper's `F = 80`).
    pub f_percentile: u8,
    /// Delay thresholds `R_1 … R_{D−1}` in µs; `thresholds[i]` (= `R_{i+1}`)
    /// gates digit `i`.
    pub thresholds: Vec<Micros>,
}

impl AssignParams {
    /// The paper's simulation defaults for `D = 5`:
    /// `P = 10`, `F = 80`, `R = (150, 30, 9, 3)` ms.
    pub fn paper() -> AssignParams {
        AssignParams {
            p: 10,
            f_percentile: 80,
            thresholds: vec![ms(150), ms(30), ms(9), ms(3)],
        }
    }

    /// Paper-style defaults scaled to an arbitrary depth: thresholds halve
    /// (at least) per level, starting at 150 ms.
    pub fn for_depth(depth: usize) -> AssignParams {
        assert!(depth >= 1);
        if depth == 5 {
            return AssignParams::paper();
        }
        let base = [ms(150), ms(30), ms(9), ms(3), ms(1), ms(1), ms(1)];
        AssignParams {
            p: 10,
            f_percentile: 80,
            thresholds: base[..depth.saturating_sub(1).min(base.len())].to_vec(),
        }
    }
}

/// Message-cost statistics of one assignment run (§3.1.4 analyses the total
/// as `O(P · D · N^{1/D})` on average).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssignStats {
    /// Query messages sent to other users (responses are counted by the
    /// caller as one message each).
    pub queries: u64,
    /// RTT probes performed in step 2.
    pub probes: u64,
    /// How many digits were determined by probing (the server assigned the
    /// rest).
    pub digits_probed: usize,
}

/// Read-only view of the group the assignment protocol runs against.
pub(crate) struct GroupView<'a> {
    pub spec: &'a IdSpec,
    pub members: &'a [Member],
    pub tables: &'a [NeighborTable],
    pub index_of: &'a dyn Fn(&UserId) -> usize,
}

/// A query to user `member_idx` for neighbor records matching `target`:
/// returns the user records the queried user knows (its own record
/// included when it matches).
fn query(view: &GroupView<'_>, member_idx: usize, target: &IdPrefix) -> Vec<Member> {
    let table = &view.tables[member_idx];
    let mut out: Vec<Member> = table
        .iter_all()
        .filter(|r| target.is_prefix_of_id(&r.member.id))
        .map(|r| r.member.clone())
        .collect();
    let own = &view.members[member_idx];
    if target.is_prefix_of_id(&own.id) {
        out.push(own.clone());
    }
    out
}

/// Runs steps 1–3 for every digit; returns the digits the joiner determined
/// by probing plus the message statistics.
pub(crate) fn probe_digits(
    view: &GroupView<'_>,
    params: &AssignParams,
    joiner: HostId,
    seed: usize,
    net: &impl Network,
) -> (Vec<u16>, AssignStats) {
    let depth = view.spec.depth();
    let base = view.spec.base();
    let mut stats = AssignStats::default();
    let mut digits: Vec<u16> = Vec::new();
    // Users known to share the currently-determined prefix with the joiner.
    let mut seeds: Vec<UserId> = vec![view.members[seed].id.clone()];

    // The last digit is always assigned by the key server for uniqueness.
    for i in 0..depth.saturating_sub(1) {
        let prefix = IdPrefix::new(view.spec, digits.clone()).expect("digits are valid");

        // Step 1: collect user records per (i, j)-ID subtree.
        let mut collected: BTreeMap<u16, BTreeMap<UserId, Member>> = BTreeMap::new();
        let mut queried: BTreeSet<UserId> = BTreeSet::new();
        let insert = |collected: &mut BTreeMap<u16, BTreeMap<UserId, Member>>, m: Member| {
            collected
                .entry(m.id.digit(i))
                .or_default()
                .insert(m.id.clone(), m);
        };
        for s in &seeds {
            let idx = (view.index_of)(s);
            insert(&mut collected, view.members[idx].clone());
            if queried.insert(s.clone()) {
                stats.queries += 1;
                for m in query(view, idx, &prefix) {
                    insert(&mut collected, m);
                }
            }
        }
        // Per-subtree refinement queries until P collected or exhausted.
        for j in 0..base {
            let target = prefix.child(j);
            while let Some(bucket) = collected.get(&j) {
                if bucket.len() >= params.p {
                    break;
                }
                let Some(next) = bucket.keys().find(|id| !queried.contains(*id)).cloned() else {
                    break;
                };
                queried.insert(next.clone());
                stats.queries += 1;
                let idx = (view.index_of)(&next);
                for m in query(view, idx, &target) {
                    insert(&mut collected, m);
                }
            }
        }

        // Step 2: measure gateway RTTs to every collected user.
        // Step 3: smallest F-percentile per subtree vs. threshold R_{i+1}.
        let mut best: Option<(Micros, u16)> = None;
        for (&j, bucket) in &collected {
            let rtts: Vec<Micros> = bucket
                .values()
                .take(params.p)
                .map(|m| {
                    stats.probes += 1;
                    net.gateway_rtt(joiner, m.host)
                })
                .collect();
            if rtts.is_empty() {
                continue;
            }
            let f = percentile(&rtts, params.f_percentile);
            if best.is_none_or(|(bf, bj)| (f, j) < (bf, bj)) {
                best = Some((f, j));
            }
        }
        let threshold = params.thresholds.get(i).copied().unwrap_or(0);
        match best {
            Some((f, b)) if f <= threshold => {
                digits.push(b);
                stats.digits_probed += 1;
                seeds = collected
                    .remove(&b)
                    .expect("chosen bucket")
                    .into_keys()
                    .collect();
            }
            _ => break, // step 4 with a partial prefix
        }
    }
    (digits, stats)
}

/// Centralized digit determination via network coordinates (the GNP
/// extension of §5): "if the key server knows the GNP coordinates of all
/// the users, it can determine the ID for a joining user by centralized
/// computing". No queries or per-candidate probes are exchanged — the
/// joiner only measured the landmarks; `estimate(h)` returns the estimated
/// gateway RTT between the joiner and host `h`.
///
/// Returns the digits determined plus the number of estimate evaluations
/// (server-local computation, not messages).
pub(crate) fn centralized_digits(
    spec: &IdSpec,
    params: &AssignParams,
    members: &[Member],
    estimate: &dyn Fn(rekey_net::HostId) -> Micros,
) -> (Vec<u16>, u64) {
    let mut digits: Vec<u16> = Vec::new();
    let mut evaluations = 0u64;
    let mut candidates: Vec<&Member> = members.iter().collect();
    for i in 0..spec.depth().saturating_sub(1) {
        // Bucket the candidates (members sharing the determined prefix) by
        // their digit `i`, keeping up to P per bucket.
        let mut buckets: std::collections::BTreeMap<u16, Vec<&Member>> =
            std::collections::BTreeMap::new();
        for m in &candidates {
            let bucket = buckets.entry(m.id.digit(i)).or_default();
            if bucket.len() < params.p {
                bucket.push(m);
            }
        }
        let mut best: Option<(Micros, u16)> = None;
        for (&j, bucket) in &buckets {
            let rtts: Vec<Micros> = bucket
                .iter()
                .map(|m| {
                    evaluations += 1;
                    estimate(m.host)
                })
                .collect();
            if rtts.is_empty() {
                continue;
            }
            let f = percentile(&rtts, params.f_percentile);
            if best.is_none_or(|(bf, bj)| (f, j) < (bf, bj)) {
                best = Some((f, j));
            }
        }
        let threshold = params.thresholds.get(i).copied().unwrap_or(0);
        match best {
            Some((f, b)) if f <= threshold => {
                digits.push(b);
                candidates.retain(|m| m.id.digit(i) == b);
            }
            _ => break,
        }
    }
    (digits, evaluations)
}

/// Step 4, server side: given the digits the joiner determined, assigns the
/// remaining digits so that the new user lands in a fresh subtree and the
/// full ID is unique. Implements footnote 3: when no fresh sibling subtree
/// exists under the determined prefix, earlier digits are modified; as a
/// last resort any free ID is assigned.
///
/// Returns `None` only when the ID space is exhausted.
pub(crate) fn server_complete(
    spec: &IdSpec,
    id_tree: &IdTree,
    determined: &[u16],
) -> Option<UserId> {
    let depth = spec.depth();
    let base = spec.base();
    // Try to keep as many determined digits as possible: for cut from
    // len(determined) down to 0, look for a fresh digit right after the cut.
    for cut in (0..=determined.len()).rev() {
        let prefix = IdPrefix::new(spec, determined[..cut].to_vec()).expect("validated digits");
        if id_tree.node(&prefix).is_none() && !prefix.is_empty() {
            // The determined prefix itself is fresh: pad with zeros.
            let mut digits = determined[..cut].to_vec();
            digits.resize(depth, 0);
            return UserId::new(spec, digits).ok();
        }
        for x in 0..base {
            let candidate = prefix.child(x);
            if candidate.len() <= depth && id_tree.node(&candidate).is_none() {
                let mut digits = candidate.digits().to_vec();
                digits.resize(depth, 0);
                return UserId::new(spec, digits).ok();
            }
        }
    }
    // Every level-1 subtree exists: force the user into one with free space
    // (footnote 3's last resort) by depth-first search for a free slot.
    fn dfs(spec: &IdSpec, tree: &IdTree, prefix: IdPrefix) -> Option<UserId> {
        if prefix.len() == spec.depth() {
            return if tree.node(&prefix).is_none() {
                prefix.to_user_id(spec)
            } else {
                None
            };
        }
        for x in 0..spec.base() {
            let child = prefix.child(x);
            if tree.node(&child).is_none() {
                let mut digits = child.digits().to_vec();
                digits.resize(spec.depth(), 0);
                return UserId::new(spec, digits).ok();
            }
            if let Some(found) = dfs(spec, tree, child) {
                return Some(found);
            }
        }
        None
    }
    dfs(spec, id_tree, IdPrefix::root())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> IdSpec {
        IdSpec::new(3, 4).unwrap()
    }

    fn tree_of(ids: &[[u16; 3]]) -> IdTree {
        IdTree::from_users(
            &spec(),
            ids.iter()
                .map(|d| UserId::new(&spec(), d.to_vec()).unwrap()),
        )
    }

    #[test]
    fn server_completes_with_fresh_sibling() {
        let tree = tree_of(&[[0, 0, 0], [0, 1, 0]]);
        // Joiner determined [0]: fresh sibling subtree [0, 2] is available.
        let id = server_complete(&spec(), &tree, &[0]).unwrap();
        assert_eq!(id.digit(0), 0);
        assert!(
            tree.node(&id.prefix(2)).is_none(),
            "must land in a fresh level-2 subtree"
        );
    }

    #[test]
    fn server_completes_full_prefix_with_unique_last_digit() {
        let tree = tree_of(&[[0, 0, 0], [0, 0, 1]]);
        let id = server_complete(&spec(), &tree, &[0, 0]).unwrap();
        assert_eq!(&id.digits()[..2], &[0, 0]);
        assert!(!tree.contains_user(&id));
    }

    #[test]
    fn footnote3_modifies_earlier_digits_when_subtree_full() {
        // Fill every child of [0, 0]: determined [0, 0] cannot host a new
        // unique leaf → the server must modify digit 1.
        let ids: Vec<[u16; 3]> = (0..4).map(|x| [0, 0, x]).collect();
        let tree = tree_of(&ids);
        let id = server_complete(&spec(), &tree, &[0, 0]).unwrap();
        assert_eq!(id.digit(0), 0);
        assert_ne!(id.digit(1), 0, "digit 1 must be modified");
        assert!(!tree.contains_user(&id));
    }

    #[test]
    fn exhausted_space_returns_none() {
        let small = IdSpec::new(1, 2).unwrap();
        let tree = IdTree::from_users(
            &small,
            (0..2).map(|x| UserId::new(&small, vec![x]).unwrap()),
        );
        assert_eq!(server_complete(&small, &tree, &[]), None);
    }

    #[test]
    fn empty_prefix_finds_any_fresh_level1_subtree() {
        let tree = tree_of(&[[1, 0, 0]]);
        let id = server_complete(&spec(), &tree, &[]).unwrap();
        assert_ne!(id.digit(0), 1, "prefers a fresh level-1 subtree");
    }

    #[test]
    fn paper_params() {
        let p = AssignParams::paper();
        assert_eq!(p.p, 10);
        assert_eq!(p.f_percentile, 80);
        assert_eq!(p.thresholds, vec![150_000, 30_000, 9_000, 3_000]);
        assert_eq!(AssignParams::for_depth(5), p);
        assert_eq!(AssignParams::for_depth(3).thresholds.len(), 2);
    }
}
