//! Helpers for wiring [`rekey_sim::FaultPlan`] chaos scenarios to the
//! group runtime's node numbering.
//!
//! The [`crate::runtime::GroupRuntime`] maps protocol actors onto
//! simulator [`NodeId`]s with a fixed scheme: the key server is node `0`
//! ([`SERVER_NODE`]) and the member spawned by the `i`-th
//! [`crate::ChurnEvent::join`] — i.e. member *handle* `i` — is node
//! `i + 1` ([`member_node`]). Fault plans are expressed in `NodeId`s, so a
//! test that wants to "partition members 3 and 7 away from the server" or
//! "kill the server at t=24s" needs this mapping; keeping it in one place
//! stops every chaos test from re-deriving the `+1` offset.
//!
//! [`modulo_cells`] builds the common soak-test shape — an `n`-way
//! partition of the member population with the server pinned to cell 0 —
//! so that exactly the cells' members lose contact with the server (and
//! each other) while the plan is active.

use rekey_sim::NodeId;

/// The key server's simulator node. The runtime always spawns the server
/// first, at node `0`.
pub const SERVER_NODE: NodeId = NodeId(0);

/// The simulator node hosting member `handle` (the index returned by
/// [`crate::runtime::GroupRuntime::run_trace`] for its join event).
pub fn member_node(handle: usize) -> NodeId {
    NodeId(handle + 1)
}

/// The simulator node of server replica `r` in a runtime built with
/// `replicas` server replicas ([`crate::RuntimeConfig`]'s `replicas`
/// knob): replicas occupy nodes `0..replicas`, replica 0 being the
/// initial primary ([`SERVER_NODE`]).
pub fn replica_node(replica: usize) -> NodeId {
    NodeId(replica)
}

/// The simulator node hosting member `handle` in a runtime with
/// `replicas` server replicas: members are offset past the whole replica
/// block. With `replicas == 1` this is [`member_node`].
pub fn member_node_with_replicas(handle: usize, replicas: usize) -> NodeId {
    NodeId(handle + replicas.max(1))
}

/// Splits member handles `0..members` into `cells` partition cells by
/// handle modulo `cells`, with the key server riding in cell 0. Feed the
/// result to [`rekey_sim::FaultPlan::partition`] for an `cells`-way split
/// where only cell 0 keeps the server.
///
/// # Panics
///
/// Panics if `cells` is zero.
pub fn modulo_cells(members: usize, cells: usize) -> Vec<Vec<NodeId>> {
    assert!(cells > 0, "a partition needs at least one cell");
    let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); cells];
    out[0].push(SERVER_NODE);
    for handle in 0..members {
        out[handle % cells].push(member_node(handle));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_nodes_are_offset_past_the_server() {
        assert_eq!(SERVER_NODE, NodeId(0));
        assert_eq!(member_node(0), NodeId(1));
        assert_eq!(member_node(9), NodeId(10));
    }

    #[test]
    fn replica_mapping_offsets_members_past_the_replica_block() {
        assert_eq!(replica_node(0), SERVER_NODE);
        assert_eq!(replica_node(2), NodeId(2));
        assert_eq!(member_node_with_replicas(0, 3), NodeId(3));
        assert_eq!(member_node_with_replicas(5, 3), NodeId(8));
        // One replica degenerates to the classic mapping.
        assert_eq!(member_node_with_replicas(4, 1), member_node(4));
    }

    #[test]
    fn modulo_cells_pins_the_server_to_cell_zero() {
        let cells = modulo_cells(7, 3);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells[0][0], SERVER_NODE);
        // Handles 0,3,6 join the server; 1,4 and 2,5 form the cut-off cells.
        assert_eq!(
            cells[0],
            vec![SERVER_NODE, member_node(0), member_node(3), member_node(6)]
        );
        assert_eq!(cells[1], vec![member_node(1), member_node(4)]);
        assert_eq!(cells[2], vec![member_node(2), member_node(5)]);
        // Every member lands in exactly one cell.
        let total: usize = cells.iter().map(Vec::len).sum();
        assert_eq!(total, 7 + 1);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panic() {
        modulo_cells(4, 0);
    }
}
