//! Concurrent rekey and data transport over one overlay, with bandwidth
//! contention — the scenario that motivates the whole paper (§1):
//!
//! > "bursty rekey traffic competes for available bandwidth with data
//! > traffic, and thus considerably increases the load of
//! > bandwidth-limited links … Congestion at such an access link causes
//! > data losses for many downstream users. Therefore, it is desired to
//! > reduce rekey bandwidth overhead as much as possible."
//!
//! This module runs *both* transports in one event simulation with the
//! egress-serialisation model of `rekey_sim`: every byte a member sends
//! occupies its access link, so an unsplit rekey burst queues in front of
//! the data frames at shared forwarders. [`run_concurrent_session`]
//! measures the data frames' delivery latency under a configurable rekey
//! load — quantifying exactly how much the splitting scheme buys.

use std::collections::HashMap;
use std::rc::Rc;

use rekey_id::{IdPrefix, UserId};
use rekey_net::{Micros, Network};
use rekey_sim::{Ctx, Node, NodeId, SimTime, Simulation};
use rekey_tmesh::forward::{server_next_hops, user_next_hops};
use rekey_tmesh::TmeshGroup;

use crate::transport::SplitIndex;

/// Messages of the concurrent session.
#[derive(Debug, Clone)]
pub enum TrafficMsg {
    /// External stimulus: the server starts the rekey multicast.
    StartRekey,
    /// External stimulus: the data sender emits frame `seq`.
    StartData {
        /// Frame sequence number.
        seq: u32,
    },
    /// A rekey copy carrying `forward_level` and the (possibly split)
    /// encryption IDs it contains — the IDs alone determine both splitting
    /// and wire size.
    RekeyCopy {
        /// The `forward_level` field of Fig. 2.
        forward_level: usize,
        /// Encryption IDs carried (indices into the session's message).
        encryptions: Rc<Vec<usize>>,
    },
    /// A data frame copy.
    DataCopy {
        /// The `forward_level` field.
        forward_level: usize,
        /// Frame sequence number.
        seq: u32,
    },
}

/// Wire-size parameters of the contention model.
#[derive(Debug, Clone, Copy)]
pub struct TrafficParams {
    /// Access-link bandwidth, bytes per second (per member, both
    /// directions modelled on egress only).
    pub bandwidth_bps: u64,
    /// Serialized size of one encryption, bytes (≈78 on our wire codec).
    pub encryption_bytes: u64,
    /// Serialized size of one data frame, bytes.
    pub data_bytes: u64,
    /// Fixed per-message header, bytes.
    pub header_bytes: u64,
    /// Number of data frames the sender emits.
    pub frames: u32,
    /// Gap between data frames, µs.
    pub frame_gap: Micros,
}

impl Default for TrafficParams {
    fn default() -> TrafficParams {
        TrafficParams {
            bandwidth_bps: 1_000_000 / 8 * 10, // 10 Mbit/s access links
            encryption_bytes: 78,
            data_bytes: 1_200,
            header_bytes: 40,
            frames: 20,
            frame_gap: 20_000, // 50 frames/s
        }
    }
}

impl TrafficParams {
    fn cost(&self, msg: &TrafficMsg) -> SimTime {
        let bytes = match msg {
            TrafficMsg::StartRekey | TrafficMsg::StartData { .. } => return 0,
            TrafficMsg::RekeyCopy { encryptions, .. } => {
                self.header_bytes + self.encryption_bytes * encryptions.len() as u64
            }
            TrafficMsg::DataCopy { .. } => self.header_bytes + self.data_bytes,
        };
        // µs = bytes / (bytes per µs)
        bytes * 1_000_000 / self.bandwidth_bps
    }
}

struct TrafficNode {
    table: Option<Rc<rekey_table::NeighborTable>>,
    server_table: Option<Rc<rekey_table::ServerTable>>,
    index: Rc<HashMap<UserId, usize>>,
    /// Prefix-range index over the session message's encryption IDs,
    /// shared by every node (see [`crate::SplitIndex`]).
    message: Rc<SplitIndex>,
    split: bool,
    got_rekey: bool,
    frame_arrivals: Vec<(u32, SimTime)>,
}

impl TrafficNode {
    /// The copy composed for a neighbor under `neighbor_prefix`. Under
    /// splitting, hop prefixes refine along forwarding chains, so the
    /// received subset filtered by the neighbor prefix equals the global
    /// related set of that prefix — one range extraction, no scan.
    fn split_for(&self, msg: &[usize], neighbor_prefix: &IdPrefix) -> Vec<usize> {
        if self.split {
            self.message.indices(neighbor_prefix.digits()).collect()
        } else {
            msg.to_vec()
        }
    }

    fn forward_rekey(&mut self, ctx: &mut Ctx<'_, TrafficMsg>, level: usize, encs: &[usize]) {
        let hops: Vec<(UserId, usize, usize, u16)> = match (&self.server_table, &self.table) {
            (Some(st), _) => server_next_hops(st)
                .into_iter()
                .map(|h| {
                    (
                        h.neighbor.member.id.clone(),
                        h.forward_level,
                        h.row,
                        h.column,
                    )
                })
                .collect(),
            (None, Some(t)) => user_next_hops(t, level)
                .into_iter()
                .map(|h| {
                    (
                        h.neighbor.member.id.clone(),
                        h.forward_level,
                        h.row,
                        h.column,
                    )
                })
                .collect(),
            _ => Vec::new(),
        };
        for (id, forward_level, row, _col) in hops {
            let prefix = id.prefix(row + 1);
            let subset = self.split_for(encs, &prefix);
            ctx.send(
                NodeId(self.index[&id]),
                TrafficMsg::RekeyCopy {
                    forward_level,
                    encryptions: Rc::new(subset),
                },
            );
        }
    }

    fn forward_data(&mut self, ctx: &mut Ctx<'_, TrafficMsg>, level: usize, seq: u32) {
        if let Some(t) = &self.table {
            let hops: Vec<(UserId, usize)> = user_next_hops(t, level)
                .into_iter()
                .map(|h| (h.neighbor.member.id.clone(), h.forward_level))
                .collect();
            for (id, forward_level) in hops {
                ctx.send(
                    NodeId(self.index[&id]),
                    TrafficMsg::DataCopy { forward_level, seq },
                );
            }
        }
    }
}

impl Node for TrafficNode {
    type Msg = TrafficMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, TrafficMsg>, _from: NodeId, msg: TrafficMsg) {
        match msg {
            TrafficMsg::StartRekey => {
                let all: Vec<usize> = (0..self.message.len()).collect();
                self.forward_rekey(ctx, 0, &all);
            }
            TrafficMsg::StartData { seq } => self.forward_data(ctx, 0, seq),
            TrafficMsg::RekeyCopy {
                forward_level,
                encryptions,
            } => {
                if !self.got_rekey {
                    self.got_rekey = true;
                    self.forward_rekey(ctx, forward_level, &encryptions);
                }
            }
            TrafficMsg::DataCopy { forward_level, seq } => {
                if self.frame_arrivals.iter().all(|&(s, _)| s != seq) {
                    self.frame_arrivals.push((seq, ctx.now()));
                    self.forward_data(ctx, forward_level, seq);
                }
            }
        }
    }
}

/// What rekey load (if any) runs concurrently with the data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyLoad {
    /// No rekeying: the data stream runs alone (baseline).
    None,
    /// The full message floods every hop (protocol `P1`).
    Unsplit,
    /// `REKEY-MESSAGE-SPLIT` trims every copy (protocol `P2`).
    Split,
}

/// Result of one concurrent session.
#[derive(Debug, Clone)]
pub struct ConcurrentOutcome {
    /// Latency of every delivered data frame, sender → receiver (µs).
    pub frame_latencies: Vec<Micros>,
    /// Simulated completion time.
    pub finished_at: SimTime,
}

impl ConcurrentOutcome {
    /// The `q`-quantile of the frame latencies, in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if no frames were delivered.
    pub fn latency_ms(&self, q: f64) -> f64 {
        assert!(!self.frame_latencies.is_empty(), "no frames delivered");
        let mut v = self.frame_latencies.clone();
        v.sort_unstable();
        let idx = ((q * (v.len() - 1) as f64).round()) as usize;
        v[idx] as f64 / 1000.0
    }
}

/// Runs one concurrent rekey+data session over `group`.
///
/// The data sender (`data_sender`, a member index) emits
/// `params.frames` frames at `params.frame_gap` intervals; at time 0 the
/// key server injects the rekey message described by `encryption_ids`
/// under the chosen [`RekeyLoad`]. Every transmission pays the
/// egress-serialisation cost of its wire size at the transmitting member.
///
/// # Panics
///
/// Panics if `data_sender` is out of range.
pub fn run_concurrent_session(
    group: &TmeshGroup,
    net: &impl Network,
    encryption_ids: &[IdPrefix],
    load: RekeyLoad,
    data_sender: usize,
    params: &TrafficParams,
) -> ConcurrentOutcome {
    let n = group.members().len();
    assert!(data_sender < n, "data sender out of range");
    let mut index = HashMap::with_capacity(n);
    for (i, m) in group.members().iter().enumerate() {
        index.insert(m.id.clone(), i);
    }
    let index = Rc::new(index);
    let message = Rc::new(SplitIndex::from_ids(encryption_ids));

    let mut nodes: Vec<TrafficNode> = (0..n)
        .map(|i| TrafficNode {
            table: Some(Rc::new(group.table(i).clone())),
            server_table: None,
            index: Rc::clone(&index),
            message: Rc::clone(&message),
            split: load == RekeyLoad::Split,
            got_rekey: false,
            frame_arrivals: Vec::new(),
        })
        .collect();
    nodes.push(TrafficNode {
        table: None,
        server_table: Some(Rc::new(group.server_table().clone())),
        index: Rc::clone(&index),
        message: Rc::clone(&message),
        split: load == RekeyLoad::Split,
        got_rekey: false,
        frame_arrivals: Vec::new(),
    });

    let hosts: Vec<rekey_net::HostId> = group
        .members()
        .iter()
        .map(|m| m.host)
        .chain(std::iter::once(group.server_host()))
        .collect();
    let delay = move |a: NodeId, b: NodeId| net.one_way(hosts[a.0], hosts[b.0]).max(1);
    let p = *params;
    let mut sim = Simulation::new(nodes, delay).with_egress(move |_, msg| p.cost(msg));

    if load != RekeyLoad::None {
        sim.inject_at(0, NodeId(n), NodeId(n), TrafficMsg::StartRekey);
    }
    let mut frame_sent_at = Vec::with_capacity(params.frames as usize);
    for seq in 0..params.frames {
        let at = u64::from(seq) * params.frame_gap;
        frame_sent_at.push(at);
        sim.inject_at(
            at,
            NodeId(data_sender),
            NodeId(data_sender),
            TrafficMsg::StartData { seq },
        );
    }
    let finished_at = sim.run_until_idle();

    let mut frame_latencies = Vec::new();
    for (i, node) in sim.nodes().iter().enumerate() {
        if i == data_sender || i >= n {
            continue;
        }
        for &(seq, at) in &node.frame_arrivals {
            frame_latencies.push(at - frame_sent_at[seq as usize]);
        }
    }
    ConcurrentOutcome {
        frame_latencies,
        finished_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rekey_id::{IdSpec, UserId};
    use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
    use rekey_table::{Member, PrimaryPolicy};

    fn setup(n: usize) -> (MatrixNetwork, TmeshGroup, Vec<IdPrefix>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xBEEF);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let mut used = std::collections::HashSet::new();
        let members: Vec<Member> = (0..n)
            .map(|i| {
                let id = loop {
                    let c = UserId::from_index(&spec, rand::Rng::gen_range(&mut rng, 0..512));
                    if used.insert(c.clone()) {
                        break c;
                    }
                };
                Member {
                    id,
                    host: HostId(i),
                    joined_at: i as u64,
                }
            })
            .collect();
        let server = HostId(net.host_count() - 1);
        let group = TmeshGroup::build(&spec, members, server, &net, 2, PrimaryPolicy::SmallestRtt);
        // A heavy rekey message (~48 encryptions per member at mixed
        // depths, none at the root so splitting has traction) — the burst a
        // large churn interval would produce.
        let mut encs = Vec::new();
        for m in group.members() {
            for l in 1..=spec.depth() {
                for _ in 0..16 {
                    encs.push(m.id.prefix(l));
                }
            }
        }
        (net, group, encs)
    }

    #[test]
    fn every_member_gets_every_frame_under_all_loads() {
        let (net, group, encs) = setup(24);
        let params = TrafficParams {
            frames: 5,
            ..TrafficParams::default()
        };
        for load in [RekeyLoad::None, RekeyLoad::Split, RekeyLoad::Unsplit] {
            let out = run_concurrent_session(&group, &net, &encs, load, 0, &params);
            assert_eq!(
                out.frame_latencies.len(),
                (group.members().len() - 1) * 5,
                "{load:?}: every member must receive every frame exactly once"
            );
        }
    }

    /// The paper's motivation, measured: an unsplit rekey burst inflates
    /// concurrent data latency; splitting removes (almost all of) the
    /// inflation.
    #[test]
    fn splitting_shields_data_traffic_from_rekey_bursts() {
        let (net, group, encs) = setup(32);
        // 10 Mbit/s access links: the unsplit message is ~120 KB per copy
        // (~96 ms of serialisation each); the 1.2 s data window overlaps
        // the whole burst, while the data stream alone uses well under a
        // fifth of any link.
        let params = TrafficParams {
            frames: 60,
            ..TrafficParams::default()
        };
        let baseline = run_concurrent_session(&group, &net, &encs, RekeyLoad::None, 3, &params);
        let split = run_concurrent_session(&group, &net, &encs, RekeyLoad::Split, 3, &params);
        let unsplit = run_concurrent_session(&group, &net, &encs, RekeyLoad::Unsplit, 3, &params);
        let mean = |o: &ConcurrentOutcome| {
            o.frame_latencies.iter().sum::<u64>() as f64 / o.frame_latencies.len() as f64 / 1000.0
        };
        let (b, s, u) = (mean(&baseline), mean(&split), mean(&unsplit));
        let (b95, s95, u95) = (
            baseline.latency_ms(0.95),
            split.latency_ms(0.95),
            unsplit.latency_ms(0.95),
        );
        assert!(
            u > s * 1.05 && u95 > s95,
            "unsplit rekey must visibly inflate data latency: mean {b:.1}/{s:.1}/{u:.1} ms, \
             p95 {b95:.1}/{s95:.1}/{u95:.1} ms (baseline/split/unsplit)"
        );
        assert!(
            s < b * 1.05 && s95 <= b95 * 1.05,
            "split rekey must stay near the no-rekey baseline: mean {s:.1} vs {b:.1} ms"
        );
    }

    #[test]
    fn zero_frames_is_a_clean_noop() {
        let (net, group, encs) = setup(8);
        let params = TrafficParams {
            frames: 0,
            ..TrafficParams::default()
        };
        let out = run_concurrent_session(&group, &net, &encs, RekeyLoad::Split, 0, &params);
        assert!(out.frame_latencies.is_empty());
    }
}
