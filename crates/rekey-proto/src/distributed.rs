//! The distributed join protocol, executed message by message on the
//! discrete event simulator (§3.1–§3.2).
//!
//! [`Group`](crate::Group) resolves joins against global knowledge — the
//! simplification the paper itself uses for its large simulations. This
//! module is the *protocol-level* implementation: a joining node really
//! exchanges messages with real latencies:
//!
//! 1. `JoinRequest` → the key server authenticates and replies with a
//!    bootstrap member record (`JoinBootstrap`);
//! 2. per digit round `i`, the joiner sends `Query { target }` messages to
//!    users it has collected and receives `QueryReply` records (step 1),
//!    then measures RTTs with `Ping`/`Pong` exchanges timed by the
//!    simulation clock itself (step 2), picks the subtree whose
//!    `F`-percentile RTT beats `R_{i+1}` (step 3) or stops;
//! 3. `DigitsNotification` → the server assigns the remaining digits
//!    uniquely (step 4, footnote 3) and replies `IdAssigned`;
//! 4. the joiner builds its neighbor table from the records and RTTs it
//!    gathered and announces itself; the server forwards the new record to
//!    the existing members (`NewMember`) and sends the joiner any members
//!    it could not have seen (concurrent joins), keeping tables
//!    K-consistent.
//!
//! Departures that race with an in-flight join are repaired at assignment
//! time: the server keeps a departure log, remembers each joiner's log
//! position at bootstrap, and replays the departures (with their
//! replacement candidates) inside `IdAssigned`, so a member that left
//! mid-join cannot linger in the joiner's freshly built table. (This was a
//! documented stale-table window before the event-driven runtime grew a
//! repair path; `distributed_join.rs` has the regression test.) Failures
//! detected late — a `FailureNotice` for an already-departed member — are
//! answered with the logged repair info so the detector converges too.
//!
//! Gateway RTT estimation follows §3.1.2: each user record carries the
//! host's access-link RTT, so the joiner computes
//! `r(u, w) = h(u, w) − h(u, gw_u) − h(w, gw_w)` from its measured
//! end-to-end ping time.

use std::collections::{BTreeMap, BTreeSet};

use rekey_id::{IdPrefix, IdSpec, IdTree, UserId};
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{Ctx, Node, NodeId, SimTime, Simulation};
use rekey_table::{Member, NeighborRecord, NeighborTable, PrimaryPolicy, ServerTable};
use rekey_tmesh::metrics::percentile;

use crate::assign::AssignParams;

/// A member record as carried in protocol messages: the user record plus
/// the access-link RTT the paper stores in every record copy (§3.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecord {
    /// The member.
    pub member: Member,
    /// RTT between the member and its gateway router.
    pub access_rtt: Micros,
}

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum ProtoMsg {
    /// Joiner → server: request to join, carrying the send time so the
    /// server can measure the RTT.
    JoinRequest {
        /// Simulation time the request was sent.
        sent_at: SimTime,
    },
    /// Server → joiner: bootstrap record of one existing member (or none if
    /// the group is empty and the all-zero ID is assigned directly).
    JoinBootstrap {
        /// Seed record, if the group is non-empty.
        seed: Option<WireRecord>,
    },
    /// Joiner → member: step-1 query for records matching `target`.
    Query {
        /// Target ID prefix.
        target: IdPrefix,
    },
    /// Member → joiner: step-1 reply.
    QueryReply {
        /// All records the queried member knows matching the target.
        records: Vec<WireRecord>,
    },
    /// Joiner → member: step-2 RTT probe.
    Ping {
        /// Correlation token.
        token: u64,
        /// Send time, echoed back.
        sent_at: SimTime,
    },
    /// Member → joiner: step-2 probe reply.
    Pong {
        /// Correlation token.
        token: u64,
        /// Echoed send time.
        sent_at: SimTime,
        /// The responder's access-link RTT (stored in records, §3.1.2).
        access_rtt: Micros,
    },
    /// Joiner → server: step-4 notification of self-determined digits.
    DigitsNotification {
        /// Digits determined by probing.
        digits: Vec<u16>,
        /// Send time so the server can measure its RTT to the joiner.
        sent_at: SimTime,
    },
    /// Server → joiner: the complete assigned ID plus records the joiner
    /// could not have collected (members that joined concurrently) and the
    /// departures it could not have observed (members that left while the
    /// join was in flight), each with replacement candidates.
    IdAssigned {
        /// The joiner's new member record.
        member: Member,
        /// Records of concurrently joined members.
        extra: Vec<WireRecord>,
        /// Departures since the joiner bootstrapped, in order, with the
        /// replacement candidates broadcast for each.
        repairs: Vec<(UserId, Vec<WireRecord>)>,
    },
    /// Server → member: a new member's record to insert into tables.
    NewMember {
        /// The new member's record.
        record: WireRecord,
    },
    /// Member → server: a voluntary leave (§3.2) — the server deletes the
    /// record and coordinates table repair.
    LeaveRequest,
    /// Member → server: a failure notification (§3.2: "Upon detecting the
    /// failure of a neighbor, u sends the key server a notification
    /// message"). Idempotent at the server.
    FailureNotice {
        /// The neighbor observed to have failed.
        failed: UserId,
    },
    /// Server → member: a member departed; `replacements` carries, per ID
    /// level, surviving members sharing prefixes with the departed ID — the
    /// exact candidate set any receiver needs to refill the entry that held
    /// the departed record (Silk's repair role, server-assisted).
    MemberLeft {
        /// The departed member's ID.
        departed: UserId,
        /// Replacement candidates.
        replacements: Vec<WireRecord>,
    },
}

/// Statistics of one completed distributed join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistributedJoinStats {
    /// Step-1 query messages sent.
    pub queries: u64,
    /// Step-2 pings sent.
    pub pings: u64,
    /// Digits determined by probing.
    pub digits_probed: usize,
    /// Time from `JoinRequest` to table completion (µs).
    pub elapsed: SimTime,
}

#[derive(Debug)]
enum JoinPhase {
    Idle,
    AwaitBootstrap,
    Collect { round: usize, outstanding: usize },
    Measure { round: usize, outstanding: usize },
    AwaitAssignment,
    Done,
}

#[derive(Debug)]
struct JoinerState {
    phase: JoinPhase,
    started_at: SimTime,
    digits: Vec<u16>,
    /// Records collected in the current round, bucketed by next digit.
    buckets: BTreeMap<u16, BTreeMap<UserId, WireRecord>>,
    queried: BTreeSet<UserId>,
    /// Measured end-host RTTs (from ping/pong round trips).
    rtt: BTreeMap<UserId, Micros>,
    pinged: BTreeSet<UserId>,
    pending_pings: BTreeMap<u64, UserId>,
    next_token: u64,
    /// Every record ever collected, for table construction.
    known: BTreeMap<UserId, WireRecord>,
    /// Rounds whose broad (length-`i` target) query burst has been sent.
    broad_sent: BTreeSet<usize>,
    stats: DistributedJoinStats,
}

impl JoinerState {
    fn new() -> JoinerState {
        JoinerState {
            phase: JoinPhase::Idle,
            started_at: 0,
            digits: Vec::new(),
            buckets: BTreeMap::new(),
            queried: BTreeSet::new(),
            rtt: BTreeMap::new(),
            pinged: BTreeSet::new(),
            pending_pings: BTreeMap::new(),
            next_token: 0,
            known: BTreeMap::new(),
            broad_sent: BTreeSet::new(),
            stats: DistributedJoinStats::default(),
        }
    }
}

/// One protocol participant: starts as a prospective joiner, becomes a
/// full member once its table is built.
pub struct ProtoNode {
    host: HostId,
    access_rtt: Micros,
    spec: IdSpec,
    params: AssignParams,
    k: usize,
    /// Set once the node has joined.
    member: Option<Member>,
    table: Option<NeighborTable>,
    joiner: JoinerState,
    server: NodeId,
}

impl std::fmt::Debug for ProtoNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtoNode")
            .field("host", &self.host)
            .field("member", &self.member.as_ref().map(|m| m.id.to_string()))
            .finish()
    }
}

/// The key server node.
pub struct ServerNode {
    spec: IdSpec,
    k: usize,
    id_tree: IdTree,
    members: BTreeMap<UserId, WireRecord>,
    table: ServerTable,
    /// Per joiner node: members present when it bootstrapped, to compute
    /// the `extra` delta at assignment time.
    bootstrap_snapshot: BTreeMap<usize, BTreeSet<UserId>>,
    /// Every departure processed, in order, with the replacement
    /// candidates that were broadcast for it.
    departures: Vec<(UserId, Vec<WireRecord>)>,
    /// Joining times by the server clock.
    join_seq: Micros,
}

impl std::fmt::Debug for ServerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerNode")
            .field("members", &self.members.len())
            .finish()
    }
}

/// The node type of the distributed protocol simulation.
pub enum ProtoActor {
    /// A (prospective) group member.
    User(Box<ProtoNode>),
    /// The key server.
    Server(Box<ServerNode>),
}

impl std::fmt::Debug for ProtoActor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoActor::User(n) => n.fmt(f),
            ProtoActor::Server(s) => s.fmt(f),
        }
    }
}

impl ProtoNode {
    fn gateway_rtt_to(&self, measured: Micros, peer_access: Micros) -> Micros {
        measured
            .saturating_sub(self.access_rtt)
            .saturating_sub(peer_access)
    }

    fn record_of(&self) -> WireRecord {
        WireRecord {
            member: self.member.clone().expect("joined"),
            access_rtt: self.access_rtt,
        }
    }

    fn absorb_records(&mut self, round: usize, records: Vec<WireRecord>) {
        for r in records {
            let matches = self
                .joiner
                .digits
                .iter()
                .take(round)
                .copied()
                .eq(r.member.id.digits()[..round].iter().copied());
            self.joiner
                .known
                .entry(r.member.id.clone())
                .or_insert_with(|| r.clone());
            if matches {
                self.joiner
                    .buckets
                    .entry(r.member.id.digit(round))
                    .or_default()
                    .insert(r.member.id.clone(), r);
            }
        }
    }

    /// Issues outstanding queries for the current round; returns the number
    /// sent. Queries go to collected-but-unqueried users, per bucket, until
    /// `P` records per bucket or exhaustion.
    fn issue_queries(
        &mut self,
        ctx: &mut Ctx<'_, ProtoMsg>,
        node_of: &dyn Fn(&UserId) -> NodeId,
        round: usize,
    ) -> usize {
        let prefix = IdPrefix::new(&self.spec, self.joiner.digits[..round].to_vec())
            .expect("determined digits are valid");
        let mut to_query = Vec::new();
        if self.joiner.broad_sent.insert(round) {
            // "The query specifies a target ID prefix of u.ID[0 : i−1]":
            // the round opens with broad queries to every seed, which
            // populate all (i, j) buckets at once.
            for bucket in self.joiner.buckets.values() {
                for id in bucket.keys() {
                    to_query.push((id.clone(), prefix.clone()));
                }
            }
        } else {
            // Per-bucket refinement with length-(i+1) targets until P
            // records per bucket or exhaustion.
            for (j, bucket) in &self.joiner.buckets {
                if bucket.len() >= self.params.p {
                    continue;
                }
                if let Some(id) = bucket.keys().find(|id| !self.joiner.queried.contains(*id)) {
                    to_query.push((id.clone(), prefix.child(*j)));
                }
            }
        }
        let mut sent = 0;
        for (id, target) in to_query {
            self.joiner.queried.insert(id.clone());
            ctx.send(node_of(&id), ProtoMsg::Query { target });
            self.joiner.stats.queries += 1;
            sent += 1;
        }
        sent
    }

    /// Issues pings to every collected-but-unmeasured user; returns count.
    fn issue_pings(
        &mut self,
        ctx: &mut Ctx<'_, ProtoMsg>,
        node_of: &dyn Fn(&UserId) -> NodeId,
    ) -> usize {
        let targets: Vec<UserId> = self
            .joiner
            .buckets
            .values()
            .flat_map(|b| b.keys().cloned())
            .filter(|id| !self.joiner.pinged.contains(id))
            .collect();
        let mut sent = 0;
        for id in targets {
            self.joiner.pinged.insert(id.clone());
            let token = self.joiner.next_token;
            self.joiner.next_token += 1;
            self.joiner.pending_pings.insert(token, id.clone());
            ctx.send(
                node_of(&id),
                ProtoMsg::Ping {
                    token,
                    sent_at: ctx.now(),
                },
            );
            self.joiner.stats.pings += 1;
            sent += 1;
        }
        sent
    }

    /// Step 3: decide the digit for `round` from measured gateway RTTs.
    fn decide_digit(&mut self, round: usize) -> Option<u16> {
        let mut best: Option<(Micros, u16)> = None;
        for (&j, bucket) in &self.joiner.buckets {
            let rtts: Vec<Micros> = bucket
                .values()
                .take(self.params.p)
                .filter_map(|r| {
                    self.joiner
                        .rtt
                        .get(&r.member.id)
                        .map(|&h| self.gateway_rtt_to(h, r.access_rtt))
                })
                .collect();
            if rtts.is_empty() {
                continue;
            }
            let f = percentile(&rtts, self.params.f_percentile);
            if best.is_none_or(|(bf, bj)| (f, j) < (bf, bj)) {
                best = Some((f, j));
            }
        }
        let threshold = self.params.thresholds.get(round).copied().unwrap_or(0);
        match best {
            Some((f, b)) if f <= threshold => Some(b),
            _ => None,
        }
    }

    /// Advances a collect/measure round to completion; called whenever
    /// outstanding counters hit zero.
    fn advance(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, node_of: &dyn Fn(&UserId) -> NodeId) {
        loop {
            match self.joiner.phase {
                JoinPhase::Collect {
                    round,
                    outstanding: 0,
                } => {
                    let sent = self.issue_queries(ctx, node_of, round);
                    if sent > 0 {
                        self.joiner.phase = JoinPhase::Collect {
                            round,
                            outstanding: sent,
                        };
                        return;
                    }
                    // Collection exhausted: measure.
                    let pings = self.issue_pings(ctx, node_of);
                    self.joiner.phase = JoinPhase::Measure {
                        round,
                        outstanding: pings,
                    };
                    if pings > 0 {
                        return;
                    }
                }
                JoinPhase::Measure {
                    round,
                    outstanding: 0,
                } => {
                    match self.decide_digit(round) {
                        Some(digit) if round + 1 < self.spec.depth() => {
                            self.joiner.digits.push(digit);
                            self.joiner.stats.digits_probed += 1;
                            // Seed the next round with the chosen bucket.
                            let seeds = self.joiner.buckets.remove(&digit).unwrap_or_default();
                            self.joiner.buckets.clear();
                            self.joiner.queried.clear();
                            let next = round + 1;
                            if next >= self.spec.depth() - 1 {
                                // Only the last digit remains: the server
                                // assigns it (step 4).
                                self.notify_server(ctx);
                                return;
                            }
                            for (id, r) in seeds {
                                self.joiner
                                    .buckets
                                    .entry(r.member.id.digit(next))
                                    .or_default()
                                    .insert(id, r);
                            }
                            self.joiner.phase = JoinPhase::Collect {
                                round: next,
                                outstanding: 0,
                            };
                        }
                        _ => {
                            self.notify_server(ctx);
                            return;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn notify_server(&mut self, ctx: &mut Ctx<'_, ProtoMsg>) {
        self.joiner.phase = JoinPhase::AwaitAssignment;
        ctx.send(
            self.server,
            ProtoMsg::DigitsNotification {
                digits: self.joiner.digits.clone(),
                sent_at: ctx.now(),
            },
        );
    }

    fn complete_join(
        &mut self,
        ctx: &mut Ctx<'_, ProtoMsg>,
        member: Member,
        extra: Vec<WireRecord>,
        repairs: Vec<(UserId, Vec<WireRecord>)>,
    ) {
        self.member = Some(member.clone());
        let mut table = NeighborTable::new(
            &self.spec,
            member.id.clone(),
            self.k,
            PrimaryPolicy::SmallestRtt,
        );
        for (id, rec) in &self.joiner.known {
            let rtt = self.joiner.rtt.get(id).copied().unwrap_or(Micros::MAX / 4);
            table.insert(NeighborRecord {
                member: rec.member.clone(),
                rtt,
            });
        }
        for rec in extra {
            table.insert(NeighborRecord {
                member: rec.member.clone(),
                rtt: Micros::MAX / 4,
            });
        }
        // Replay the departures this join raced with, in log order, so a
        // member that left mid-join cannot survive in the fresh table (and
        // a replacement that itself departed later is removed again by its
        // own log entry).
        for (departed, replacements) in repairs {
            table.remove(&departed);
            for r in replacements {
                if r.member.id != member.id {
                    table.insert(NeighborRecord {
                        member: r.member.clone(),
                        rtt: Micros::MAX / 4,
                    });
                }
            }
        }
        self.table = Some(table);
        self.joiner.stats.elapsed = ctx.now().saturating_sub(self.joiner.started_at);
        self.joiner.phase = JoinPhase::Done;
    }
}

impl Node for ProtoActor {
    type Msg = ProtoMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match self {
            ProtoActor::Server(server) => server.receive(ctx, from, msg),
            ProtoActor::User(user) => user.receive(ctx, from, msg),
        }
    }
}

impl ServerNode {
    fn receive(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::JoinRequest { sent_at: _ } => {
                let seed = self
                    .members
                    .values()
                    .min_by_key(|r| (r.member.joined_at, r.member.id.clone()))
                    .cloned();
                self.bootstrap_snapshot
                    .insert(from.0, self.members.keys().cloned().collect());
                ctx.send(from, ProtoMsg::JoinBootstrap { seed });
            }
            ProtoMsg::LeaveRequest => {
                let departed = self
                    .members
                    .values()
                    .find(|r| r.member.host.0 == from.0)
                    .map(|r| r.member.id.clone());
                if let Some(id) = departed {
                    self.process_departure(ctx, &id);
                }
            }
            ProtoMsg::FailureNotice { failed } if self.members.contains_key(&failed) => {
                self.process_departure(ctx, &failed);
            }
            ProtoMsg::FailureNotice { failed } => {
                // Already departed: the broadcast repair may have raced the
                // detector's stale observation — resend it the logged
                // repair info so it converges.
                if let Some((_, reps)) = self.departures.iter().rev().find(|(d, _)| *d == failed) {
                    ctx.send(
                        from,
                        ProtoMsg::MemberLeft {
                            departed: failed,
                            replacements: reps.clone(),
                        },
                    );
                }
            }
            ProtoMsg::DigitsNotification { digits, sent_at } => {
                let id = crate::assign::server_complete(&self.spec, &self.id_tree, &digits)
                    .expect("ID space is large enough for the simulation");
                self.join_seq += 1;
                let member = Member {
                    id: id.clone(),
                    host: HostId(from.0),
                    joined_at: self.join_seq,
                };
                self.id_tree.insert(&id);
                // The request/notification round trip measures the RTT.
                let rtt = (ctx.now().saturating_sub(sent_at)) * 2;
                let record = WireRecord {
                    member: member.clone(),
                    access_rtt: 0,
                };
                self.table.insert(NeighborRecord {
                    member: member.clone(),
                    rtt,
                });
                // Delta of members the joiner could not have collected.
                let snapshot = self.bootstrap_snapshot.remove(&from.0).unwrap_or_default();
                let extra: Vec<WireRecord> = self
                    .members
                    .values()
                    .filter(|r| !snapshot.contains(&r.member.id))
                    .cloned()
                    .collect();
                // Replay the *whole* departure log, not just the entries
                // since bootstrap: the joiner's probes may have collected a
                // record from a member that had not yet received an older
                // departure's repair broadcast, so any logged departure can
                // still be lurking in `known`. Entries whose ID has since
                // been reassigned to a live member are skipped — removing
                // the new holder would be wrong, and it is not a ghost.
                let repairs: Vec<(UserId, Vec<WireRecord>)> = self
                    .departures
                    .iter()
                    .filter(|(d, _)| !self.members.contains_key(d))
                    .cloned()
                    .collect();
                // Announce the new member to everyone else.
                for existing in self.members.values() {
                    ctx.send(
                        NodeId(existing.member.host.0),
                        ProtoMsg::NewMember {
                            record: record.clone(),
                        },
                    );
                }
                self.members.insert(id, record.clone());
                ctx.send(
                    from,
                    ProtoMsg::IdAssigned {
                        member,
                        extra,
                        repairs,
                    },
                );
            }
            _ => {}
        }
    }
}

impl ServerNode {
    /// Removes a departed member and broadcasts the repair information:
    /// for every level `c`, up to `K` surviving members whose IDs share the
    /// first `c` digits with the departed ID — exactly the candidates any
    /// receiver needs to refill the entry that held the departed record.
    fn process_departure(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, id: &UserId) {
        let record = self.members.remove(id).expect("checked by callers");
        self.id_tree.remove(id);
        self.table.remove(id);
        let replacements: Vec<WireRecord> = crate::repair::replacement_candidates(
            self.spec.depth(),
            self.k,
            id,
            self.members.values(),
            |r| &r.member.id,
        )
        .into_iter()
        .cloned()
        .collect();
        for existing in self.members.values() {
            ctx.send(
                NodeId(existing.member.host.0),
                ProtoMsg::MemberLeft {
                    departed: id.clone(),
                    replacements: replacements.clone(),
                },
            );
        }
        self.departures.push((id.clone(), replacements));
        let _ = record;
    }
}

impl ProtoNode {
    fn receive(&mut self, ctx: &mut Ctx<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        // Node IDs and hosts coincide for users in this simulation.
        let node_of = |id_host: HostId| NodeId(id_host.0);
        match msg {
            // --- joiner side -------------------------------------------
            ProtoMsg::JoinBootstrap { seed } => {
                self.joiner.started_at = ctx.now();
                match seed {
                    None => {
                        // First member: the server will assign all zeros.
                        self.notify_server(ctx);
                    }
                    Some(rec) => {
                        self.joiner.known.insert(rec.member.id.clone(), rec.clone());
                        self.joiner
                            .buckets
                            .entry(rec.member.id.digit(0))
                            .or_default()
                            .insert(rec.member.id.clone(), rec);
                        self.joiner.phase = JoinPhase::Collect {
                            round: 0,
                            outstanding: 0,
                        };
                        let known = self.known_hosts();
                        self.advance(ctx, &|id| node_of(known[id]));
                    }
                }
            }
            ProtoMsg::QueryReply { records } => {
                if let JoinPhase::Collect { round, outstanding } = self.joiner.phase {
                    self.absorb_records(round, records);
                    self.joiner.phase = JoinPhase::Collect {
                        round,
                        outstanding: outstanding.saturating_sub(1),
                    };
                    let known = self.known_hosts();
                    self.advance(ctx, &|id| node_of(known[id]));
                }
            }
            ProtoMsg::Pong {
                token,
                sent_at,
                access_rtt,
            } => {
                if let Some(id) = self.joiner.pending_pings.remove(&token) {
                    // The ping/pong round trip *is* the end-host RTT.
                    let measured = ctx.now().saturating_sub(sent_at);
                    self.joiner.rtt.insert(id.clone(), measured);
                    if let Some(rec) = self.joiner.known.get_mut(&id) {
                        rec.access_rtt = access_rtt;
                    }
                    if let JoinPhase::Measure { round, outstanding } = self.joiner.phase {
                        self.joiner.phase = JoinPhase::Measure {
                            round,
                            outstanding: outstanding.saturating_sub(1),
                        };
                        let known = self.known_hosts();
                        self.advance(ctx, &|id| node_of(known[id]));
                    }
                }
            }
            ProtoMsg::IdAssigned {
                member,
                extra,
                repairs,
            } => {
                self.complete_join(ctx, member, extra, repairs);
            }
            // --- member side -------------------------------------------
            ProtoMsg::Query { target } => {
                let mut records = Vec::new();
                if let Some(table) = &self.table {
                    for r in table.iter_all() {
                        if target.is_prefix_of_id(&r.member.id) {
                            records.push(WireRecord {
                                member: r.member.clone(),
                                access_rtt: 0,
                            });
                        }
                    }
                }
                if let Some(me) = &self.member {
                    if target.is_prefix_of_id(&me.id) {
                        records.push(self.record_of());
                    }
                }
                for r in &mut records {
                    r.access_rtt = self.access_rtt;
                }
                ctx.send(from, ProtoMsg::QueryReply { records });
            }
            ProtoMsg::Ping { token, sent_at } => {
                ctx.send(
                    from,
                    ProtoMsg::Pong {
                        token,
                        sent_at,
                        access_rtt: self.access_rtt,
                    },
                );
            }
            ProtoMsg::MemberLeft {
                departed,
                replacements,
            } => {
                if self.member.as_ref().is_some_and(|m| m.id == departed) {
                    return;
                }
                if let Some(table) = &mut self.table {
                    table.remove(&departed);
                    for r in replacements {
                        if Some(&r.member.id) != self.member.as_ref().map(|m| &m.id) {
                            table.insert(NeighborRecord {
                                member: r.member.clone(),
                                rtt: Micros::MAX / 4,
                            });
                        }
                    }
                }
            }
            // The harness injects a leave stimulus at the leaver; forward to
            // the server and retire locally.
            ProtoMsg::LeaveRequest => {
                self.table = None;
                self.member = None;
                ctx.send(self.server, ProtoMsg::LeaveRequest);
            }
            ProtoMsg::NewMember { record } => {
                if let Some(table) = &mut self.table {
                    // RTT to the new member is unknown until measured; store
                    // it pessimistically — ordering refines as pings happen
                    // in steady-state operation.
                    table.insert(NeighborRecord {
                        member: record.member.clone(),
                        rtt: Micros::MAX / 4,
                    });
                }
            }
            // The harness injects the join stimulus at the joiner itself;
            // forward it to the key server with a fresh timestamp.
            ProtoMsg::JoinRequest { .. } => {
                self.joiner.started_at = ctx.now();
                self.joiner.phase = JoinPhase::AwaitBootstrap;
                ctx.send(self.server, ProtoMsg::JoinRequest { sent_at: ctx.now() });
            }
            _ => {}
        }
    }

    fn known_hosts(&self) -> BTreeMap<UserId, HostId> {
        self.joiner
            .known
            .iter()
            .map(|(id, r)| (id.clone(), r.member.host))
            .collect()
    }
}

/// Harness: runs the distributed join protocol for `joins` hosts on `net`,
/// injecting the `i`-th join request at `start_times[i]`.
///
/// Node `i` is host `i`; the server is the last node/host.
pub struct DistributedJoinRun {
    /// Completed members in node order (hosts `0..n`).
    pub members: Vec<Member>,
    /// Each member's constructed table.
    pub tables: Vec<NeighborTable>,
    /// Per-join statistics.
    pub stats: Vec<DistributedJoinStats>,
    /// Total messages delivered by the simulation.
    pub messages: u64,
    /// Simulated completion time.
    pub finished_at: SimTime,
}

/// Runs the join protocol (no leaves).
///
/// # Panics
///
/// Panics if any join fails to complete (which cannot happen on a reliable,
/// connected substrate).
pub fn run_distributed_joins(
    spec: &IdSpec,
    params: &AssignParams,
    k: usize,
    net: &impl Network,
    joins: usize,
    start_times: &[SimTime],
) -> DistributedJoinRun {
    run_distributed_session(spec, params, k, net, joins, start_times, &[])
}

/// Runs a full join/leave session: node `i` (= host `i`) requests to join
/// at `start_times[i]`; each `(node, at)` in `leaves` requests to leave at
/// `at` (which must be after that node's join completes in practice — a
/// leave by a node that never joined is ignored by the server).
///
/// The returned [`DistributedJoinRun`] lists only the *surviving* members.
///
/// # Panics
///
/// Panics on mismatched `start_times` length.
pub fn run_distributed_session(
    spec: &IdSpec,
    params: &AssignParams,
    k: usize,
    net: &impl Network,
    joins: usize,
    start_times: &[SimTime],
    leaves: &[(usize, SimTime)],
) -> DistributedJoinRun {
    assert_eq!(start_times.len(), joins, "one start time per join");
    assert!(
        joins < net.host_count(),
        "need a host per joiner plus the server"
    );
    let server_host = HostId(net.host_count() - 1);
    let server_node = NodeId(net.host_count() - 1);

    // Access RTT per host: half the difference between end-host RTT and
    // gateway RTT against an arbitrary other host would be ideal; we use
    // the substrate's own definition via a probe pair when available.
    let access = |h: HostId| -> Micros {
        // h(u,w) − r(u,w) = access(u) + access(w); probing two distinct
        // peers lets us solve, but for simplicity we read the difference
        // against the server and halve it (exact when the server's access
        // is negligible, which holds for RoutedNetwork where it is 0).
        net.rtt(h, server_host)
            .saturating_sub(net.gateway_rtt(h, server_host))
    };

    let mut nodes: Vec<ProtoActor> = (0..net.host_count() - 1)
        .map(|i| {
            ProtoActor::User(Box::new(ProtoNode {
                host: HostId(i),
                access_rtt: access(HostId(i)),
                spec: *spec,
                params: params.clone(),
                k,
                member: None,
                table: None,
                joiner: JoinerState::new(),
                server: server_node,
            }))
        })
        .collect();
    nodes.push(ProtoActor::Server(Box::new(ServerNode {
        spec: *spec,
        k,
        id_tree: IdTree::new(spec),
        members: BTreeMap::new(),
        table: ServerTable::new(spec, k),
        bootstrap_snapshot: BTreeMap::new(),
        departures: Vec::new(),
        join_seq: 0,
    })));

    let hosts: Vec<HostId> = (0..net.host_count()).map(HostId).collect();
    let delay = move |a: NodeId, b: NodeId| net.one_way(hosts[a.0], hosts[b.0]).max(1);
    let mut sim = Simulation::new(nodes, delay);
    for (i, &at) in start_times.iter().enumerate() {
        sim.inject_at(
            at,
            NodeId(i),
            NodeId(i),
            ProtoMsg::JoinRequest { sent_at: at },
        );
    }
    for &(node, at) in leaves {
        sim.inject_at(at, NodeId(node), NodeId(node), ProtoMsg::LeaveRequest);
    }
    let finished_at = sim.run_until_idle();
    let messages = sim.delivered();

    let mut members = Vec::new();
    let mut tables = Vec::new();
    let mut stats = Vec::new();
    for node in sim.into_nodes() {
        if let ProtoActor::User(u) = node {
            if let (Some(m), Some(t)) = (u.member, u.table) {
                members.push(m);
                tables.push(t);
                stats.push(u.joiner.stats);
            }
        }
    }
    DistributedJoinRun {
        members,
        tables,
        stats,
        messages,
        finished_at,
    }
}
