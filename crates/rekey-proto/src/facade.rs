//! The high-level API a deployment would actually use: a [`GroupServer`]
//! that owns membership, ID assignment, the key tree and rekey intervals,
//! and a [`UserAgent`] that holds one member's keys, consumes rekey
//! messages and seals/opens group data traffic.
//!
//! The division of labour follows the paper exactly:
//!
//! * joins and leaves are *requested* at any time, accumulated, and take
//!   cryptographic effect when the server [ends the rekey
//!   interval](GroupServer::end_interval) (periodic batch rekeying, §2.4);
//! * new members get their ID at join time and their key set via unicast
//!   ([`WelcomePacket`]) when the interval ends;
//! * the rekey message is delivered over T-mesh with
//!   `REKEY-MESSAGE-SPLIT`; each agent absorbs the encryptions addressed
//!   to it and is then able to open data sealed under the new group key.

use rand::Rng;
use rekey_crypto::{Encryption, Key, SealedData};
use rekey_id::{IdPrefix, IdSpec, UserId};
use rekey_keytree::{KeyRing, ModifiedKeyTree, RekeyArena, TreeMetrics};
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{seeded_rng, SimRng};
use rekey_table::PrimaryPolicy;
use rekey_tmesh::TmeshGroup;

use crate::assign::AssignParams;
use crate::group::{Group, GroupError};
use crate::split::tmesh_rekey_transport;
use crate::transport::TransportOptions;

/// Configuration of a [`GroupServer`], built fluently instead of through
/// six positional arguments.
///
/// ```
/// use rekey_id::IdSpec;
/// use rekey_net::HostId;
/// use rekey_proto::GroupConfig;
/// use rekey_table::PrimaryPolicy;
///
/// // The paper's parameters, with a leader-friendly primary policy:
/// let server = GroupConfig::paper()
///     .k(4)
///     .policy(PrimaryPolicy::EarliestJoinAtBottom)
///     .seed(42)
///     .build(HostId(0));
/// assert_eq!(server.interval(), 0);
///
/// // A small spec for tests; assignment thresholds follow the depth.
/// let spec = IdSpec::new(3, 8)?;
/// let server = GroupConfig::for_spec(&spec).k(2).build(HostId(9));
/// # Ok::<(), rekey_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GroupConfig {
    spec: IdSpec,
    k: usize,
    policy: PrimaryPolicy,
    assign: AssignParams,
    seed: u64,
    seal_threads: usize,
}

impl GroupConfig {
    /// The paper's defaults: `D = 5`, `B = 256`, `K = 4`, smallest-RTT
    /// primaries, `P = 10`, `F = 80`, `R = 150/30/9/3` ms, seed 0.
    pub fn paper() -> GroupConfig {
        GroupConfig {
            spec: IdSpec::PAPER,
            k: 4,
            policy: PrimaryPolicy::SmallestRtt,
            assign: AssignParams::paper(),
            seed: 0,
            seal_threads: 1,
        }
    }

    /// Defaults scaled to `spec`: assignment thresholds from
    /// [`AssignParams::for_depth`], `K = 4`, smallest-RTT primaries,
    /// seed 0.
    pub fn for_spec(spec: &IdSpec) -> GroupConfig {
        GroupConfig {
            spec: *spec,
            k: 4,
            policy: PrimaryPolicy::SmallestRtt,
            assign: AssignParams::for_depth(spec.depth()),
            seed: 0,
            seal_threads: 1,
        }
    }

    /// Neighbor-table redundancy `K` (Definition 3).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 — a zero-redundancy table cannot satisfy
    /// Definition 3 for any non-trivial membership.
    pub fn k(mut self, k: usize) -> GroupConfig {
        assert!(k > 0, "neighbor-table redundancy K must be at least 1");
        self.k = k;
        self
    }

    /// Primary-neighbor selection policy.
    pub fn policy(mut self, policy: PrimaryPolicy) -> GroupConfig {
        self.policy = policy;
        self
    }

    /// ID-assignment protocol parameters (§3.1).
    pub fn assign(mut self, assign: AssignParams) -> GroupConfig {
        self.assign = assign;
        self
    }

    /// Seed of the server's key-generation RNG.
    pub fn seed(mut self, seed: u64) -> GroupConfig {
        self.seed = seed;
        self
    }

    /// Worker threads for the key tree's seal phase: `1` (default) seals
    /// serially, `0` uses one thread per core. Identical seeds produce
    /// byte-identical rekey messages at any setting (see
    /// [`ModifiedKeyTree::set_seal_threads`]).
    pub fn seal_threads(mut self, threads: usize) -> GroupConfig {
        self.seal_threads = threads;
        self
    }

    /// Builds the server at `server_host`.
    pub fn build(self, server_host: HostId) -> GroupServer {
        let mut tree = ModifiedKeyTree::new(&self.spec);
        tree.set_seal_threads(self.seal_threads);
        GroupServer {
            group: Group::new(&self.spec, server_host, self.k, self.policy, self.assign),
            tree,
            pending: Vec::new(),
            interval: 0,
            rng: seeded_rng(self.seed),
            arena: RekeyArena::new(),
        }
    }

    /// Builds a server **pre-populated** with `hosts` as interval 1 — the
    /// million-member bootstrap path.
    ///
    /// Membership is dealt by [`Group::bootstrap`] (O(N·D·B) instead of the
    /// O(N²) join protocol), the key tree is batch-rekeyed once for all
    /// members, and every member's welcome packet is returned so callers
    /// can construct agents directly — no join wave, no per-member rekey
    /// traffic. The server resumes at interval 1 with nothing pending, so
    /// subsequent churn goes through the regular incremental paths.
    ///
    /// # Errors
    ///
    /// [`GroupError::IdSpaceFull`] when `hosts.len()` exceeds the ID space.
    pub fn bootstrap(
        self,
        server_host: HostId,
        hosts: &[HostId],
        net: &impl Network,
    ) -> Result<(GroupServer, Vec<WelcomePacket>), GroupError> {
        let group = Group::bootstrap(
            &self.spec,
            server_host,
            self.k,
            self.policy,
            self.assign,
            hosts,
            net,
        )?;
        let mut tree = ModifiedKeyTree::new(&self.spec);
        tree.set_seal_threads(self.seal_threads);
        let mut rng = seeded_rng(self.seed);
        let mut arena = RekeyArena::new();
        let joins: Vec<UserId> = group.members().iter().map(|m| m.id.clone()).collect();
        tree.batch_rekey(&joins, &[], &mut rng, &mut arena)
            .expect("bootstrap IDs are unique non-members");
        let welcomes = group
            .members()
            .iter()
            .map(|m| WelcomePacket {
                keys: tree.user_path_keys(&m.id).cloned().collect(),
                id: m.id.clone(),
                interval: 1,
            })
            .collect();
        let server = GroupServer {
            group,
            tree,
            pending: Vec::new(),
            interval: 1,
            rng,
            arena,
        };
        Ok((server, welcomes))
    }
}

/// What a newly joined member receives from the key server via unicast at
/// the end of its first rekey interval: its ID and its path keys (§3.1).
#[derive(Debug, Clone)]
pub struct WelcomePacket {
    /// The member's assigned ID.
    pub id: UserId,
    /// All keys on the path from the member's u-node to the root.
    pub keys: Vec<Key>,
    /// The rekey interval this key set belongs to.
    pub interval: u64,
}

/// The output of one rekey interval. The rekey message is owned (taken
/// from the server's seal arena without copying) so the outcome can
/// outlive the next interval — e.g. in the runtime's recovery history.
#[derive(Debug, Clone)]
pub struct IntervalOutcome {
    /// Interval number (1-based).
    pub interval: u64,
    /// The batch rekey message to multicast to the group.
    encryptions: Vec<Encryption>,
    /// IDs of the k-nodes whose keys changed this interval.
    updated: Vec<IdPrefix>,
    /// Seal-phase wall-clock nanoseconds (see `RekeyBatch::seal_nanos`).
    seal_nanos: u64,
    /// Welcome packets for members that joined during the interval
    /// (delivered via unicast, not multicast).
    pub welcomes: Vec<WelcomePacket>,
    /// IDs that left during the interval.
    pub departed: Vec<UserId>,
}

impl IntervalOutcome {
    /// The paper's *rekey cost*: encryptions in this interval's message.
    pub fn cost(&self) -> usize {
        self.encryptions.len()
    }

    /// The rekey message: all encryptions, deep-to-shallow.
    pub fn encryptions(&self) -> &[Encryption] {
        &self.encryptions
    }

    /// IDs of the k-nodes whose keys changed, ascending.
    pub fn updated(&self) -> &[IdPrefix] {
        &self.updated
    }

    /// Wall-clock nanoseconds the interval's seal phase took.
    pub fn seal_nanos(&self) -> u64 {
        self.seal_nanos
    }

    /// Moves the rekey message out (for history buffers); the outcome's
    /// message becomes empty.
    pub fn take_encryptions(&mut self) -> Vec<Encryption> {
        std::mem::take(&mut self.encryptions)
    }
}

/// Per-member delivery produced by [`GroupServer::deliver`]: the exact
/// encryptions the split rekey transport hands each member, as indices
/// into the interval's shared encryption buffer.
///
/// Nothing is cloned: [`RekeyDelivery::member`] yields borrowed
/// [`Encryption`](rekey_crypto::Encryption)s straight out of the
/// [`IntervalOutcome`], ready to feed to [`UserAgent::handle_rekey`].
#[derive(Debug, Clone)]
pub struct RekeyDelivery<'a> {
    encryptions: &'a [rekey_crypto::Encryption],
    per_member: Vec<Vec<usize>>,
    total_received: u64,
}

impl<'a> RekeyDelivery<'a> {
    /// The encryptions member `i` received, borrowed from the interval's
    /// message buffer. The iterator is `Clone`, as
    /// [`UserAgent::handle_rekey`] requires.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a member index of the delivering mesh.
    pub fn member(
        &self,
        i: usize,
    ) -> impl Iterator<Item = &'a rekey_crypto::Encryption> + Clone + '_ {
        let encryptions = self.encryptions;
        self.per_member[i].iter().map(move |&e| &encryptions[e])
    }

    /// The encryption indices member `i` received.
    pub fn member_indices(&self, i: usize) -> &[usize] {
        &self.per_member[i]
    }

    /// Number of members covered by this delivery.
    pub fn members(&self) -> usize {
        self.per_member.len()
    }

    /// The interval's shared encryption buffer.
    pub fn encryptions(&self) -> &'a [rekey_crypto::Encryption] {
        self.encryptions
    }

    /// Total encryptions received, summed over members.
    pub fn total_received(&self) -> u64 {
        self.total_received
    }
}

/// The key server: the single authority of the secure group.
///
/// ```
/// use rand::SeedableRng;
/// use rekey_net::{HostId, MatrixNetwork, Network, PlanetLabParams};
/// use rekey_proto::{GroupConfig, UserAgent};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
/// let mut server = GroupConfig::paper().seed(42).build(HostId(net.host_count() - 1));
/// for h in 0..4 {
///     server.request_join(HostId(h), &net, h as u64)?;
/// }
/// let outcome = server.end_interval();
/// let agents: Vec<UserAgent> =
///     outcome.welcomes.into_iter().map(UserAgent::from_welcome).collect();
/// for agent in &agents {
///     assert_eq!(agent.group_key(), server.tree().group_key());
/// }
/// # Ok::<(), rekey_proto::GroupError>(())
/// ```
/// `Clone` snapshots the server's complete state — membership, key tree,
/// pending requests, and RNG position — which is what the event-driven
/// runtime's crash journal ([`crate::runtime::journal`]) checkpoints each
/// interval.
#[derive(Debug, Clone)]
pub struct GroupServer {
    group: Group,
    tree: ModifiedKeyTree,
    /// Join/leave requests of the current interval, in arrival order
    /// (`true` = join). Order matters: the same ID can be left by one
    /// person and joined by another within one interval (ID reuse), or
    /// joined and left by a transient member (which cancels out).
    pending: Vec<(bool, UserId)>,
    interval: u64,
    rng: SimRng,
    /// Reusable seal arena for `end_interval` (its `Clone` is a fresh
    /// arena, so checkpoints stay cheap — scratch never affects outputs).
    arena: RekeyArena,
}

impl GroupServer {
    /// Reports the key tree's rekey activity (batch sizes, encryptions,
    /// tombstone hits) into the given metric series. Journal checkpoints
    /// clone the server, and clones share the series, so counts survive
    /// a restore.
    pub fn instrument_tree(&mut self, metrics: TreeMetrics) {
        self.tree.set_metrics(metrics);
    }

    /// The underlying membership state.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The server-side key tree.
    pub fn tree(&self) -> &ModifiedKeyTree {
        &self.tree
    }

    /// Completed rekey intervals so far.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of members whose joins/leaves are pending for the current
    /// interval.
    pub fn pending(&self) -> (usize, usize) {
        let joins = self.pending.iter().filter(|(is_join, _)| *is_join).count();
        (joins, self.pending.len() - joins)
    }

    /// Admits a new member: runs the ID assignment protocol immediately
    /// (the member starts participating in the overlay) and schedules its
    /// keys for the end of the interval.
    ///
    /// # Errors
    ///
    /// [`GroupError::IdSpaceFull`] when no unique ID exists.
    pub fn request_join(
        &mut self,
        host: HostId,
        net: &impl Network,
        now: Micros,
    ) -> Result<UserId, GroupError> {
        let outcome = self.group.join(host, net, now)?;
        self.pending.push((true, outcome.id.clone()));
        Ok(outcome.id)
    }

    /// Processes a leave request: the member stops participating in the
    /// overlay immediately; its keys are invalidated when the interval
    /// ends.
    ///
    /// # Errors
    ///
    /// [`GroupError::NotMember`] if `id` is not in the group.
    pub fn request_leave(&mut self, id: &UserId, net: &impl Network) -> Result<(), GroupError> {
        self.group.leave(id, net)?;
        self.pending.push((false, id.clone()));
        Ok(())
    }

    /// Ends the current rekey interval: batch-rekeys the tree for all
    /// pending joins and leaves, and produces the rekey message plus the
    /// welcome packets for the joiners.
    pub fn end_interval(&mut self) -> IntervalOutcome {
        self.interval += 1;
        let pending = std::mem::take(&mut self.pending);
        // Reduce each ID's request sequence to its net effect. Requests are
        // validated against live membership, so per ID: the *first* op is a
        // leave iff the ID was a member before the interval, and the *last*
        // op is a join iff it is a member after. The four combinations map
        // to (leave+join = reuse), (leave only), (join only), and
        // (join-then-leave of a transient member = nothing at all).
        let mut first: std::collections::BTreeMap<&UserId, bool> = Default::default();
        let mut last: std::collections::BTreeMap<&UserId, bool> = Default::default();
        for (is_join, id) in &pending {
            first.entry(id).or_insert(*is_join);
            last.insert(id, *is_join);
        }
        let leaves: Vec<UserId> = first
            .iter()
            .filter(|(_, &is_join)| !is_join)
            .map(|(id, _)| (*id).clone())
            .collect();
        let joins: Vec<UserId> = last
            .iter()
            .filter(|(_, &is_join)| is_join)
            .map(|(id, _)| (*id).clone())
            .collect();
        let mut batch = self
            .tree
            .batch_rekey(&joins, &leaves, &mut self.rng, &mut self.arena)
            .expect("pending lists mirror membership changes");
        let seal_nanos = batch.seal_nanos();
        let encryptions = batch.take_encryptions();
        let updated = batch.take_updated();
        let welcomes = joins
            .into_iter()
            .map(|id| WelcomePacket {
                keys: self.tree.user_path_keys(&id).cloned().collect(),
                id,
                interval: self.interval,
            })
            .collect();
        IntervalOutcome {
            interval: self.interval,
            encryptions,
            updated,
            seal_nanos,
            welcomes,
            departed: leaves,
        }
    }

    /// Re-derives the welcome packet of a *current* member: its ID and its
    /// path keys as of the last completed interval. The event-driven
    /// runtime's server-assisted resync uses this to bring a member that
    /// fell behind the recovery path (or straddled a server restart) back
    /// to the current key state in one unicast.
    ///
    /// Returns `None` when `id` is not keyed in the tree — e.g. a member
    /// admitted during the current interval, whose first welcome packet is
    /// still pending.
    pub fn refresh_welcome(&self, id: &UserId) -> Option<WelcomePacket> {
        if !self.tree.contains_user(id) {
            return None;
        }
        Some(WelcomePacket {
            keys: self.tree.user_path_keys(id).cloned().collect(),
            id: id.clone(),
            interval: self.interval,
        })
    }

    /// Snapshots the current overlay for multicast sessions.
    pub fn mesh(&self) -> TmeshGroup {
        self.group.tmesh()
    }

    /// Convenience: runs the split rekey transport for an interval outcome
    /// and returns the per-member deliveries as index views into the
    /// outcome's encryption buffer (no clones), ready to feed to
    /// [`UserAgent::handle_rekey`].
    ///
    /// An empty interval (no membership change, empty rekey message)
    /// short-circuits: no transport session runs and no per-member
    /// payloads are allocated.
    pub fn deliver<'a>(
        &self,
        net: &impl Network,
        outcome: &'a IntervalOutcome,
    ) -> RekeyDelivery<'a> {
        let encryptions = outcome.encryptions();
        if encryptions.is_empty() {
            return RekeyDelivery {
                encryptions,
                per_member: vec![Vec::new(); self.group.members().len()],
                total_received: 0,
            };
        }
        let mesh = self.mesh();
        let report = tmesh_rekey_transport(
            &mesh,
            net,
            encryptions,
            TransportOptions::split().with_detail(),
        );
        let per_member = report.received_sets.expect("detail requested");
        RekeyDelivery {
            encryptions,
            per_member,
            total_received: report.received.iter().sum(),
        }
    }
}

/// Errors produced by [`UserAgent`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AgentError {
    /// The agent holds no group key yet (welcome not processed).
    NoGroupKey,
    /// Sealed data could not be opened.
    Open(rekey_crypto::OpenError),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::NoGroupKey => write!(f, "agent holds no group key"),
            AgentError::Open(e) => write!(f, "cannot open sealed data: {e}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// The one error type of the facade: everything [`GroupServer`] and
/// [`UserAgent`] can fail with, so applications drive both sides of the
/// protocol behind a single `?`.
///
/// ```
/// use rekey_proto::{AgentError, GroupError, RekeyError};
/// fn app() -> Result<(), RekeyError> {
///     Err(GroupError::IdSpaceFull)?; // server-side failures convert…
///     Err(AgentError::NoGroupKey)?; // …and so do agent-side ones
///     Ok(())
/// }
/// assert!(matches!(app(), Err(RekeyError::Group(GroupError::IdSpaceFull))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RekeyError {
    /// A group lifecycle operation failed on the server.
    Group(GroupError),
    /// A key-state or data-plane operation failed on an agent.
    Agent(AgentError),
}

impl From<GroupError> for RekeyError {
    fn from(e: GroupError) -> RekeyError {
        RekeyError::Group(e)
    }
}

impl From<AgentError> for RekeyError {
    fn from(e: AgentError) -> RekeyError {
        RekeyError::Agent(e)
    }
}

impl std::fmt::Display for RekeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RekeyError::Group(e) => write!(f, "{e}"),
            RekeyError::Agent(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RekeyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RekeyError::Group(e) => Some(e),
            RekeyError::Agent(e) => Some(e),
        }
    }
}

/// What [`UserAgent::handle_rekey`] did with a delivered rekey message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RekeyStatus {
    /// The message advanced the agent to `interval`; `installed` keys were
    /// unwrapped and installed.
    Applied {
        /// Number of keys installed from the message.
        installed: usize,
    },
    /// The message belongs to an interval the agent has already processed
    /// (e.g. a replay, or the rekey of the interval whose welcome packet
    /// already carried the keys). Nothing was absorbed.
    StaleInterval,
}

impl RekeyStatus {
    /// Keys installed: 0 for [`RekeyStatus::StaleInterval`].
    pub fn installed(&self) -> usize {
        match self {
            RekeyStatus::Applied { installed } => *installed,
            RekeyStatus::StaleInterval => 0,
        }
    }
}

/// One member's key state and data-plane operations.
#[derive(Debug, Clone)]
pub struct UserAgent {
    ring: KeyRing,
    interval: u64,
}

impl UserAgent {
    /// Creates an agent from the server's welcome packet.
    pub fn from_welcome(welcome: WelcomePacket) -> UserAgent {
        UserAgent {
            ring: KeyRing::new(welcome.id, welcome.keys),
            interval: welcome.interval,
        }
    }

    /// The member's ID.
    pub fn id(&self) -> &UserId {
        self.ring.user()
    }

    /// The current group key, if held.
    pub fn group_key(&self) -> Option<&Key> {
        self.ring.group_key()
    }

    /// The last rekey interval this agent has processed.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Consumes the encryptions delivered by one rekey interval.
    ///
    /// A message for an interval the agent has already reached is reported
    /// as [`RekeyStatus::StaleInterval`] and NOT absorbed — the agent's key
    /// state for that interval is already complete (its welcome packet or
    /// an earlier delivery established it), and silently re-absorbing would
    /// mask replays and mis-routed deliveries.
    ///
    /// Accepts any re-iterable borrowing iterator — a slice, or a
    /// [`RekeyDelivery::member`] view straight off the transport, with no
    /// `Encryption` clones in between.
    pub fn handle_rekey<'a, I>(&mut self, interval: u64, encryptions: I) -> RekeyStatus
    where
        I: IntoIterator<Item = &'a rekey_crypto::Encryption>,
        I::IntoIter: Clone,
    {
        if interval <= self.interval {
            return RekeyStatus::StaleInterval;
        }
        let installed = self.ring.absorb(encryptions);
        self.interval = interval;
        RekeyStatus::Applied { installed }
    }

    /// Seals application data under the current group key.
    ///
    /// # Errors
    ///
    /// [`AgentError::NoGroupKey`] before the first welcome is processed.
    pub fn seal_data<R: Rng + ?Sized>(
        &self,
        plaintext: &[u8],
        rng: &mut R,
    ) -> Result<SealedData, AgentError> {
        let key = self.ring.group_key().ok_or(AgentError::NoGroupKey)?;
        Ok(SealedData::seal(key, plaintext, rng))
    }

    /// Opens sealed group data.
    ///
    /// # Errors
    ///
    /// [`AgentError::NoGroupKey`] with an empty ring;
    /// [`AgentError::Open`] when the data was sealed under a different
    /// group-key generation than this agent holds.
    pub fn open_data(&self, sealed: &SealedData) -> Result<Vec<u8>, AgentError> {
        let key = self.ring.group_key().ok_or(AgentError::NoGroupKey)?;
        sealed.open(key).map_err(AgentError::Open)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_net::{MatrixNetwork, PlanetLabParams};
    use std::collections::HashMap;

    fn setup(n: usize) -> (MatrixNetwork, GroupServer, HashMap<UserId, UserAgent>) {
        let mut rng = seeded_rng(0xFACADE);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let server_host = HostId(net.host_count() - 1);
        let mut server = GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(7)
            .build(server_host);
        for h in 0..n {
            server.request_join(HostId(h), &net, h as u64).unwrap();
        }
        let outcome = server.end_interval();
        assert_eq!(outcome.welcomes.len(), n);
        let agents = outcome
            .welcomes
            .into_iter()
            .map(|w| (w.id.clone(), UserAgent::from_welcome(w)))
            .collect();
        (net, server, agents)
    }

    #[test]
    fn bootstrapped_server_welcomes_everyone_and_churns() {
        let net = rekey_net::GridNetwork::new(28, 1_000, 100);
        let hosts: Vec<HostId> = (0..27).map(HostId).collect();
        let (mut server, welcomes) = GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(7)
            .bootstrap(HostId(27), &hosts, &net)
            .unwrap();
        assert_eq!(server.interval(), 1);
        assert_eq!(server.pending(), (0, 0));
        assert_eq!(welcomes.len(), 27);
        server.group().check().expect("K-consistent bootstrap");
        let mut agents: HashMap<UserId, UserAgent> = welcomes
            .into_iter()
            .map(|w| {
                assert_eq!(w.interval, 1);
                (w.id.clone(), UserAgent::from_welcome(w))
            })
            .collect();
        for agent in agents.values() {
            assert_eq!(agent.group_key(), server.tree().group_key());
        }
        // Incremental churn on top of the bootstrapped state works as if
        // the group had been built by joins.
        let victim = server.group().members()[3].id.clone();
        server.request_leave(&victim, &net).unwrap();
        agents.remove(&victim);
        let outcome = server.end_interval();
        assert_eq!(outcome.interval, 2);
        let delivered = server.deliver(&net, &outcome);
        for (i, member) in server.mesh().members().iter().enumerate() {
            let agent = agents.get_mut(&member.id).unwrap();
            agent.handle_rekey(outcome.interval, delivered.member(i));
            assert_eq!(
                agent.group_key(),
                server.tree().group_key(),
                "{}",
                member.id
            );
        }
    }

    #[test]
    fn bootstrap_interval_welcomes_everyone() {
        let (_, server, agents) = setup(8);
        assert_eq!(server.interval(), 1);
        assert_eq!(server.pending(), (0, 0));
        for agent in agents.values() {
            assert_eq!(agent.group_key(), server.tree().group_key());
        }
    }

    #[test]
    fn churn_interval_updates_every_agent() {
        let (net, mut server, mut agents) = setup(10);
        // Two leaves, one join.
        let victims: Vec<UserId> = server
            .group()
            .members()
            .iter()
            .take(2)
            .map(|m| m.id.clone())
            .collect();
        for v in &victims {
            server.request_leave(v, &net).unwrap();
            agents.remove(v);
        }
        server.request_join(HostId(12), &net, 99).unwrap();
        let outcome = server.end_interval();
        assert_eq!(outcome.departed, victims);
        for w in outcome.welcomes.clone() {
            agents.insert(w.id.clone(), UserAgent::from_welcome(w));
        }

        let delivered = server.deliver(&net, &outcome);
        for (i, member) in server.mesh().members().iter().enumerate() {
            let agent = agents.get_mut(&member.id).expect("agent per member");
            let status = agent.handle_rekey(outcome.interval, delivered.member(i));
            // The interval's joiner got its keys in the welcome packet, so
            // the rekey of its own interval is stale for it; everyone else
            // applies the message.
            if member.host == HostId(12) {
                assert_eq!(status, RekeyStatus::StaleInterval);
            } else {
                assert!(matches!(status, RekeyStatus::Applied { .. }));
            }
            assert_eq!(
                agent.group_key(),
                server.tree().group_key(),
                "{}",
                member.id
            );
            assert_eq!(agent.interval(), 2);
        }

        // Replaying the same interval is reported stale and changes nothing.
        let replay_victim = server.mesh().members()[0].id.clone();
        let agent = agents.get_mut(&replay_victim).unwrap();
        let key_before = agent.group_key().cloned();
        assert_eq!(
            agent.handle_rekey(outcome.interval, delivered.member(0)),
            RekeyStatus::StaleInterval
        );
        assert_eq!(agent.group_key().cloned(), key_before);
    }

    #[test]
    fn data_plane_round_trip_and_forward_secrecy() {
        let (net, mut server, mut agents) = setup(9);
        let mut rng = seeded_rng(1);

        // A member sends sealed data: everyone can open it.
        let sender = agents.values().next().unwrap().clone();
        let sealed = sender.seal_data(b"state update", &mut rng).unwrap();
        for agent in agents.values() {
            assert_eq!(agent.open_data(&sealed).unwrap(), b"state update");
        }

        // One member leaves; after the interval the departed agent cannot
        // open new traffic.
        let victim = server.group().members()[0].id.clone();
        server.request_leave(&victim, &net).unwrap();
        let departed = agents.remove(&victim).unwrap();
        let outcome = server.end_interval();
        let delivered = server.deliver(&net, &outcome);
        for (i, member) in server.mesh().members().iter().enumerate() {
            agents
                .get_mut(&member.id)
                .unwrap()
                .handle_rekey(outcome.interval, delivered.member(i));
        }
        let fresh = agents
            .values()
            .next()
            .unwrap()
            .seal_data(b"post-leave", &mut rng)
            .unwrap();
        for agent in agents.values() {
            assert_eq!(agent.open_data(&fresh).unwrap(), b"post-leave");
        }
        assert!(matches!(
            departed.open_data(&fresh),
            Err(AgentError::Open(_))
        ));
    }

    /// A member that joins and leaves within the same interval must not
    /// panic the server nor leak into the key tree.
    #[test]
    fn join_then_leave_within_one_interval_cancels() {
        let (net, mut server, _) = setup(4);
        let id = server.request_join(HostId(9), &net, 99).unwrap();
        server.request_leave(&id, &net).unwrap();
        let out = server.end_interval();
        assert!(out.welcomes.iter().all(|w| w.id != id));
        assert!(!server.tree().contains_user(&id));
        assert_eq!(server.group().member(&id), None);
        // The transient member's requests cancel; nothing to rekey.
        assert_eq!(out.cost(), 0);
    }

    /// The opposite order — a leave followed by a join that reuses the
    /// departed ID (forced here by a full ID space) — must keep both sides
    /// of the batch: the leaver's keys change and the newcomer is welcomed.
    #[test]
    fn leave_then_rejoin_reusing_the_id() {
        let mut rng = seeded_rng(0xF00);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let spec = IdSpec::new(2, 2).unwrap(); // 4 IDs total
        let mut server = GroupConfig::for_spec(&spec)
            .k(2)
            .seed(9)
            .build(HostId(net.host_count() - 1));
        for h in 0..4 {
            server.request_join(HostId(h), &net, h as u64).unwrap();
        }
        server.end_interval();
        let victim = server.group().members()[0].id.clone();
        let old_group_key = server.tree().group_key().unwrap().clone();
        server.request_leave(&victim, &net).unwrap();
        let reused = server.request_join(HostId(7), &net, 99).unwrap();
        assert_eq!(reused, victim, "a full ID space forces reuse");
        let out = server.end_interval();
        assert_eq!(out.departed, vec![victim.clone()]);
        assert_eq!(out.welcomes.len(), 1);
        assert_eq!(out.welcomes[0].id, victim);
        assert!(out.cost() > 0);
        assert_ne!(server.tree().group_key(), Some(&old_group_key));
    }

    #[test]
    fn empty_interval_is_cheap() {
        let (_, mut server, _) = setup(5);
        let outcome = server.end_interval();
        assert_eq!(outcome.cost(), 0);
        assert!(outcome.welcomes.is_empty());
        assert!(outcome.departed.is_empty());
    }

    /// Delivering an empty interval must not run a transport session nor
    /// allocate per-member payloads — the delivery borrows the (empty)
    /// encryption slice and every member's share is empty.
    #[test]
    fn empty_interval_delivery_allocates_no_payloads() {
        let (net, mut server, _) = setup(5);
        let outcome = server.end_interval();
        assert_eq!(outcome.cost(), 0);
        let delivered = server.deliver(&net, &outcome);
        assert_eq!(delivered.members(), 5);
        assert_eq!(delivered.total_received(), 0);
        assert!(delivered.encryptions().is_empty());
        for i in 0..delivered.members() {
            assert!(delivered.member_indices(i).is_empty());
            assert_eq!(delivered.member(i).count(), 0);
        }
    }
}
