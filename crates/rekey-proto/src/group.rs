//! Group membership lifecycle: joins with topology-aware ID assignment,
//! leaves, and incremental neighbor-table maintenance.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use rekey_id::{IdSpec, IdTree, UserId};
use rekey_net::{HostId, Micros, Network};
use rekey_table::{
    check_consistency, ConsistencyViolation, Member, NeighborRecord, NeighborTable, PrimaryPolicy,
    ServerTable,
};
use rekey_tmesh::TmeshGroup;

use crate::assign::{
    centralized_digits, probe_digits, server_complete, AssignParams, AssignStats, GroupView,
};

/// Errors produced by group lifecycle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GroupError {
    /// The ID space is exhausted — no unique ID can be assigned.
    IdSpaceFull,
    /// A leave named a user that is not in the group.
    NotMember(UserId),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::IdSpaceFull => write!(f, "user ID space is exhausted"),
            GroupError::NotMember(u) => write!(f, "user {u} is not a group member"),
        }
    }
}

impl std::error::Error for GroupError {}

/// The result of one join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutcome {
    /// The assigned user ID.
    pub id: UserId,
    /// Message-cost statistics of the assignment protocol.
    pub stats: AssignStats,
}

/// A secure group: the key server plus its members, with every member's
/// neighbor table maintained under churn (the simplified-Silk model the
/// paper's simulations use, §4).
///
/// `Group` owns membership, ID assignment and tables; key management lives
/// in `rekey_keytree` and is driven by the caller (see the protocol
/// harnesses and examples).
#[derive(Debug, Clone)]
pub struct Group {
    spec: IdSpec,
    k: usize,
    policy: PrimaryPolicy,
    assign: AssignParams,
    server_host: HostId,
    members: Vec<Member>,
    tables: Vec<NeighborTable>,
    server_table: ServerTable,
    id_tree: IdTree,
    index: HashMap<UserId, usize>,
}

impl Group {
    /// Creates an empty group.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(
        spec: &IdSpec,
        server_host: HostId,
        k: usize,
        policy: PrimaryPolicy,
        assign: AssignParams,
    ) -> Group {
        Group {
            spec: *spec,
            k,
            policy,
            assign,
            server_host,
            members: Vec::new(),
            tables: Vec::new(),
            server_table: ServerTable::new(spec, k),
            id_tree: IdTree::new(spec),
            index: HashMap::new(),
        }
    }

    /// The ID-space specification.
    pub fn spec(&self) -> &IdSpec {
        &self.spec
    }

    /// Current members, in join order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` iff the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The key server's host.
    pub fn server_host(&self) -> HostId {
        self.server_host
    }

    /// The member with the given ID, if present.
    pub fn member(&self, id: &UserId) -> Option<&Member> {
        self.index.get(id).map(|&i| &self.members[i])
    }

    /// The ID tree of the current membership.
    pub fn id_tree(&self) -> &IdTree {
        &self.id_tree
    }

    /// The neighbor table of the member at index `i`.
    pub fn table(&self, i: usize) -> &NeighborTable {
        &self.tables[i]
    }

    /// The join-order index of the member with the given ID.
    pub fn index_of(&self, id: &UserId) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// The neighbor table of the member with the given ID.
    pub fn table_of(&self, id: &UserId) -> Option<&NeighborTable> {
        self.index_of(id).map(|i| &self.tables[i])
    }

    /// The key server's neighbor table.
    pub fn server_table(&self) -> &ServerTable {
        &self.server_table
    }

    /// Per-entry capacity `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Joins `host`: runs the ID assignment protocol of §3.1 against the
    /// current membership, then installs the new member into every table.
    ///
    /// The first join receives the all-zero ID, as in §3.1: "If u is the
    /// first join in the group, the key server assigns its user ID as D
    /// digits of 0".
    ///
    /// # Errors
    ///
    /// [`GroupError::IdSpaceFull`] when no unique ID exists.
    pub fn join(
        &mut self,
        host: HostId,
        net: &impl Network,
        now: Micros,
    ) -> Result<JoinOutcome, GroupError> {
        let (id, stats) = if self.members.is_empty() {
            (
                UserId::new(&self.spec, vec![0; self.spec.depth()]).expect("zeros fit"),
                AssignStats::default(),
            )
        } else {
            // The key server hands the joiner the record of an existing
            // user; we use the member with the smallest RTT the server
            // knows of deterministically — any member works, the protocol
            // corrects from there. We pick by host index for determinism.
            let seed = (host.0) % self.members.len();
            let index = &self.index;
            let index_of = move |id: &UserId| index[id];
            let view = GroupView {
                spec: &self.spec,
                members: &self.members,
                tables: &self.tables,
                index_of: &index_of,
            };
            let (digits, stats) = probe_digits(&view, &self.assign, host, seed, net);
            let id = server_complete(&self.spec, &self.id_tree, &digits)
                .ok_or(GroupError::IdSpaceFull)?;
            (id, stats)
        };
        self.insert_member(
            Member {
                id: id.clone(),
                host,
                joined_at: now,
            },
            net,
        );
        Ok(JoinOutcome { id, stats })
    }

    /// Joins `host` using **centralized** ID assignment over network
    /// coordinates (§5's GNP extension): the joiner probes only the
    /// landmarks of `coords`; the server — which stores every member's
    /// coordinate — determines the digits by computing over RTT estimates.
    ///
    /// `AssignStats::probes` counts the landmark probes;
    /// `AssignStats::queries` is 0 (no user is queried).
    ///
    /// # Errors
    ///
    /// [`GroupError::IdSpaceFull`] when no unique ID exists.
    pub fn join_centralized(
        &mut self,
        host: HostId,
        net: &impl Network,
        coords: &rekey_net::CoordinateSystem,
        now: Micros,
    ) -> Result<JoinOutcome, GroupError> {
        let (id, stats) = if self.members.is_empty() {
            (
                UserId::new(&self.spec, vec![0; self.spec.depth()]).expect("zeros fit"),
                AssignStats::default(),
            )
        } else {
            let joiner_coord = coords.measure(host, net);
            let estimate = |h: HostId| {
                // The server holds each member's coordinate (measured when
                // the member joined); estimation is a local computation.
                joiner_coord.estimate_rtt(&coords.measure(h, net))
            };
            let (digits, _) =
                centralized_digits(&self.spec, &self.assign, &self.members, &estimate);
            let id = server_complete(&self.spec, &self.id_tree, &digits)
                .ok_or(GroupError::IdSpaceFull)?;
            let stats = AssignStats {
                queries: 0,
                probes: coords.probe_cost() as u64,
                digits_probed: digits.len(),
            };
            (id, stats)
        };
        self.insert_member(
            Member {
                id: id.clone(),
                host,
                joined_at: now,
            },
            net,
        );
        Ok(JoinOutcome { id, stats })
    }

    /// Adds a member with a caller-chosen ID (for tests and ablations, e.g.
    /// the random-ID ablation of §2.6).
    ///
    /// # Panics
    ///
    /// Panics if the ID is already taken.
    pub fn join_with_id(&mut self, id: UserId, host: HostId, net: &impl Network, now: Micros) {
        assert!(!self.index.contains_key(&id), "ID {id} already taken");
        self.insert_member(
            Member {
                id,
                host,
                joined_at: now,
            },
            net,
        );
    }

    /// Constructs a fully populated group in one shot — the million-member
    /// bootstrap path.
    ///
    /// [`Group::join`] costs O(N) table inserts per join (every existing
    /// member learns the newcomer), so building a large group by repeated
    /// joins is O(N²). `bootstrap` instead deals IDs directly and builds
    /// each table from a per-prefix directory, which is
    /// O(N · D · B) overall — a 1M-member group in seconds instead of days.
    ///
    /// Member `i` receives the ID whose digits are the base-B
    /// representation of `i` **least-significant digit first** (digit 0 is
    /// `i mod B`), so consecutive indices are dealt round-robin across the
    /// level-1 subtrees and the ID tree stays balanced at every level.
    /// This trades the paper's topology-aware assignment (§3.1) for
    /// construction speed; churn after bootstrap goes through the regular
    /// incremental paths.
    ///
    /// Tables are K-consistent by construction (each `(i, j)` entry takes
    /// the first `min(K, m)` members of the `(i, j)` subtree in deal
    /// order); [`Group::check`] verifies this in tests.
    ///
    /// # Errors
    ///
    /// [`GroupError::IdSpaceFull`] when `hosts.len()` exceeds the ID space.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `spec.depth() > 7`.
    pub fn bootstrap(
        spec: &IdSpec,
        server_host: HostId,
        k: usize,
        policy: PrimaryPolicy,
        assign: AssignParams,
        hosts: &[HostId],
        net: &impl Network,
    ) -> Result<Group, GroupError> {
        assert!(k > 0, "neighbor-table redundancy K must be at least 1");
        assert!(spec.depth() <= 7, "bootstrap packs ID prefixes into u128");
        if hosts.len() as u64 > spec.id_space() {
            return Err(GroupError::IdSpaceFull);
        }
        let depth = spec.depth();
        let base = spec.base() as u64;
        let members: Vec<Member> = hosts
            .iter()
            .enumerate()
            .map(|(i, &host)| {
                let mut digits = vec![0u16; depth];
                let mut rest = i as u64;
                for d in digits.iter_mut() {
                    *d = (rest % base) as u16;
                    rest /= base;
                }
                Member {
                    id: UserId::new(spec, digits).expect("digits below base"),
                    host,
                    joined_at: 0,
                }
            })
            .collect();

        // Directory: packed ID prefix → indices of the members under it,
        // in deal order. Packing (length tag, then 16 bits per digit) keeps
        // the hot lookup loop free of heap-allocated keys.
        let pack = |digits: &[u16], len: usize| -> u128 {
            let mut key = len as u128;
            for &d in &digits[..len] {
                key = (key << 16) | d as u128;
            }
            key
        };
        let mut dir: HashMap<u128, Vec<u32>> = HashMap::new();
        for (i, m) in members.iter().enumerate() {
            for len in 1..=depth {
                dir.entry(pack(m.id.digits(), len))
                    .or_default()
                    .push(i as u32);
            }
        }

        let mut tables = Vec::with_capacity(members.len());
        let mut prefix = vec![0u16; depth];
        for m in &members {
            let mut table = NeighborTable::new(spec, m.id.clone(), k, policy);
            for row in 0..depth {
                prefix[..row].copy_from_slice(&m.id.digits()[..row]);
                for j in 0..spec.base() {
                    if j == m.id.digit(row) {
                        continue;
                    }
                    prefix[row] = j;
                    let Some(bucket) = dir.get(&pack(&prefix, row + 1)) else {
                        continue;
                    };
                    // Everyone in the bucket differs from the owner at
                    // digit `row`, so the owner is never its own neighbor.
                    for &c in bucket.iter().take(k) {
                        let cand = &members[c as usize];
                        table.insert(NeighborRecord {
                            member: cand.clone(),
                            rtt: net.rtt(m.host, cand.host),
                        });
                    }
                }
            }
            tables.push(table);
        }

        let mut server_table = ServerTable::new(spec, k);
        for j in 0..spec.base() {
            prefix[0] = j;
            if let Some(bucket) = dir.get(&pack(&prefix, 1)) {
                for &c in bucket.iter().take(k) {
                    let cand = &members[c as usize];
                    server_table.insert(NeighborRecord {
                        member: cand.clone(),
                        rtt: net.rtt(server_host, cand.host),
                    });
                }
            }
        }

        let id_tree = IdTree::from_users(spec, members.iter().map(|m| m.id.clone()));
        let index = members
            .iter()
            .enumerate()
            .map(|(i, m)| (m.id.clone(), i))
            .collect();
        Ok(Group {
            spec: *spec,
            k,
            policy,
            assign,
            server_host,
            members,
            tables,
            server_table,
            id_tree,
            index,
        })
    }

    fn insert_member(&mut self, member: Member, net: &impl Network) {
        // Build the newcomer's table and insert it into everyone else's.
        let table = rekey_table::oracle::build_table(
            &self.spec,
            &member,
            &self.members,
            net,
            self.k,
            self.policy,
        );
        for (i, existing) in self.members.iter().enumerate() {
            let rtt = net.rtt(existing.host, member.host);
            self.tables[i].insert(NeighborRecord {
                member: member.clone(),
                rtt,
            });
        }
        self.server_table.insert(NeighborRecord {
            member: member.clone(),
            rtt: net.rtt(self.server_host, member.host),
        });
        self.id_tree.insert(&member.id);
        self.index.insert(member.id.clone(), self.members.len());
        self.members.push(member);
        self.tables.push(table);
    }

    /// Removes a member and repairs every table that referenced it, keeping
    /// K-consistency (Definition 3).
    ///
    /// # Errors
    ///
    /// [`GroupError::NotMember`] if `id` is not in the group.
    pub fn leave(&mut self, id: &UserId, net: &impl Network) -> Result<Member, GroupError> {
        let idx = *self
            .index
            .get(id)
            .ok_or_else(|| GroupError::NotMember(id.clone()))?;
        let departed = self.members.remove(idx);
        self.tables.remove(idx);
        self.index.remove(id);
        for (i, m) in self.members.iter().enumerate().skip(idx) {
            self.index.insert(m.id.clone(), i);
        }
        self.id_tree.remove(id);
        self.server_table.remove(id);
        // Remove from all tables, refilling entries from global knowledge
        // (the role Silk's failure-recovery protocol plays in the paper).
        for i in 0..self.members.len() {
            let owner = self.members[i].clone();
            if !self.tables[i].remove(id) {
                continue;
            }
            let Some((row, col)) = self.tables[i].slot_for(id) else {
                continue;
            };
            let candidates = self.id_tree.ij_subtree_users(&owner.id, row, col);
            for cand in candidates {
                let m = self.members[self.index[&cand]].clone();
                let rtt = net.rtt(owner.host, m.host);
                self.tables[i].insert(NeighborRecord { member: m, rtt });
            }
        }
        // Refill the server entry for the departed user's digit.
        for m in self
            .id_tree
            .ij_subtree_users(&departed.id, 0, departed.id.digit(0))
        {
            let member = self.members[self.index[&m]].clone();
            let rtt = net.rtt(self.server_host, member.host);
            self.server_table.insert(NeighborRecord { member, rtt });
        }
        Ok(departed)
    }

    /// Checks K-consistency of all current tables (Definition 3).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), ConsistencyViolation> {
        check_consistency(&self.spec, &self.members, &self.tables, self.k)
    }

    /// Snapshots the group as a [`TmeshGroup`] ready to run multicast
    /// sessions.
    pub fn tmesh(&self) -> TmeshGroup {
        TmeshGroup::from_tables(
            &self.spec,
            self.members.clone(),
            self.tables.iter().cloned().map(Rc::new).collect(),
            Rc::new(self.server_table.clone()),
            self.server_host,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    fn setup(n: usize, seed: u64) -> (Group, MatrixNetwork) {
        let spec = IdSpec::new(3, 4).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let mut group = Group::new(
            &spec,
            HostId(net.host_count() - 1),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(3),
        );
        for h in 0..n {
            group.join(HostId(h), &net, h as u64).unwrap();
        }
        (group, net)
    }

    #[test]
    fn first_join_gets_all_zero_id() {
        let (group, _) = setup(1, 1);
        assert_eq!(group.members()[0].id.digits(), &[0, 0, 0]);
    }

    #[test]
    fn joins_yield_unique_ids_and_consistent_tables() {
        let (group, _) = setup(14, 2);
        assert_eq!(group.len(), 14);
        let mut ids: Vec<_> = group.members().iter().map(|m| m.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 14, "IDs must be unique");
        group.check().expect("K-consistent after joins");
    }

    #[test]
    fn leaves_repair_tables() {
        let (mut group, net) = setup(14, 3);
        let victims: Vec<UserId> = group
            .members()
            .iter()
            .step_by(3)
            .map(|m| m.id.clone())
            .collect();
        for v in &victims {
            group.leave(v, &net).unwrap();
            group.check().expect("K-consistent after each leave");
        }
        assert_eq!(group.len(), 14 - victims.len());
        let missing = victims[0].clone();
        assert_eq!(
            group.leave(&missing, &net),
            Err(GroupError::NotMember(missing))
        );
    }

    #[test]
    fn colocated_hosts_share_subtrees() {
        // Two hosts on the same site should end up sharing a long prefix
        // when thresholds allow.
        let spec = IdSpec::new(3, 4).unwrap();
        let rtt = vec![
            vec![0, 1, 500_000, 500_000],
            vec![1, 0, 500_000, 500_000],
            vec![500_000, 500_000, 0, 1],
            vec![500_000, 500_000, 1, 0],
        ];
        let net = MatrixNetwork::from_matrix(rtt, vec![0; 4]);
        let mut group = Group::new(
            &spec,
            HostId(3),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams {
                p: 10,
                f_percentile: 80,
                thresholds: vec![150_000, 30_000],
            },
        );
        group.join(HostId(0), &net, 0).unwrap();
        group.join(HostId(2), &net, 1).unwrap();
        group.join(HostId(1), &net, 2).unwrap();
        let id0 = &group.members()[0].id;
        let id1 = &group.member(&group.members()[2].id.clone()).unwrap().id;
        let id2 = &group.members()[1].id;
        // Host 1 is 1 µs from host 0 → same level-2 subtree (2 shared digits).
        assert_eq!(id0.common_prefix_len(id1), 2, "{id0} vs {id1}");
        // Host 2 is 500 ms away → different level-1 subtree.
        assert_eq!(id0.common_prefix_len(id2), 0, "{id0} vs {id2}");
    }

    #[test]
    fn bootstrap_matches_incremental_invariants() {
        let spec = IdSpec::new(3, 4).unwrap();
        let net = rekey_net::GridNetwork::new(40, 1_000, 100);
        let hosts: Vec<HostId> = (0..39).map(HostId).collect();
        let group = Group::bootstrap(
            &spec,
            HostId(39),
            2,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(3),
            &hosts,
            &net,
        )
        .unwrap();
        assert_eq!(group.len(), 39);
        group.check().expect("bootstrap tables are K-consistent");
        // IDs are dealt least-significant digit first: consecutive indices
        // land in distinct level-1 subtrees.
        assert_eq!(group.members()[0].id.digits(), &[0, 0, 0]);
        assert_eq!(group.members()[1].id.digits(), &[1, 0, 0]);
        assert_eq!(group.members()[4].id.digits(), &[0, 1, 0]);
        // Unique IDs, index agrees, server table covers every level-1 digit
        // that has members.
        let mut ids: Vec<_> = group.members().iter().map(|m| m.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 39);
        for (i, m) in group.members().iter().enumerate() {
            assert_eq!(group.index_of(&m.id), Some(i));
        }
        assert_eq!(group.id_tree().user_count(), 39);
        // Churn after bootstrap goes through the incremental paths.
        let mut group = group;
        let victim = group.members()[7].id.clone();
        group.leave(&victim, &net).unwrap();
        group
            .check()
            .expect("K-consistent after post-bootstrap leave");
        group.join(HostId(39), &net, 1).unwrap();
        group
            .check()
            .expect("K-consistent after post-bootstrap join");
    }

    #[test]
    fn bootstrap_rejects_overfull_id_space() {
        let spec = IdSpec::new(2, 2).unwrap(); // 4 IDs
        let net = rekey_net::GridNetwork::new(6, 1_000, 100);
        let hosts: Vec<HostId> = (0..5).map(HostId).collect();
        let err = Group::bootstrap(
            &spec,
            HostId(5),
            1,
            PrimaryPolicy::SmallestRtt,
            AssignParams::for_depth(2),
            &hosts,
            &net,
        )
        .unwrap_err();
        assert_eq!(err, GroupError::IdSpaceFull);
    }

    #[test]
    fn tmesh_snapshot_multicasts_exactly_once() {
        let (group, net) = setup(12, 4);
        let mesh = group.tmesh();
        let outcome = mesh.multicast(&net, rekey_tmesh::Source::Server);
        assert!(outcome.exactly_once().is_ok());
    }

    #[test]
    fn join_stats_track_messages() {
        let (mut group, net) = setup(10, 5);
        let out = group.join(HostId(12), &net, 99).unwrap();
        assert!(out.stats.queries > 0);
        assert!(out.stats.probes > 0);
    }
}
