//! Group rekeying protocols: topology-aware user ID assignment, membership
//! lifecycle, rekey message splitting, and the seven rekey transport
//! protocols of Table 2 (Zhang, Lam & Liu, ICDCS 2005, §2.5, §3, §4.3).
//!
//! * [`assign`] / [`AssignParams`] — the four-step ID assignment protocol
//!   of §3.1 (`P = 10`, `F = 80`-percentile, thresholds
//!   `R = (150, 30, 9, 3)` ms) including the footnote-3 uniqueness
//!   fallback;
//! * [`Group`] — the key server's view: membership, ID assignment, and
//!   K-consistent neighbor-table maintenance under churn;
//! * [`split`] — `REKEY-MESSAGE-SPLIT` (Fig. 5) over T-mesh, plus the
//!   cluster-heuristic delivery of Appendix B;
//! * [`protocols`] — NICE- and IP-multicast-based baselines and the
//!   [`RekeyProtocol`] matrix, producing the per-user / per-link
//!   encryption counts of Fig. 13;
//! * [`concurrent`] — rekey and data transport sharing bandwidth-limited
//!   access links, measuring the data-latency inflation an unsplit rekey
//!   burst causes (the §1 motivation, quantified).
//!
//! ```
//! use rekey_id::IdSpec;
//! use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
//! use rekey_proto::{AssignParams, Group};
//! use rekey_table::PrimaryPolicy;
//! # use rand::SeedableRng;
//!
//! let spec = IdSpec::new(3, 4)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
//! let mut group = Group::new(
//!     &spec,
//!     HostId(15),
//!     4,
//!     PrimaryPolicy::SmallestRtt,
//!     AssignParams::for_depth(3),
//! );
//! for h in 0..8 {
//!     group.join(HostId(h), &net, h as u64)?;
//! }
//! group.check()?; // K-consistent tables (Definition 3)
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod assign;
pub mod chaos;
pub mod concurrent;
pub mod distributed;
mod facade;
mod group;
pub mod protocols;
mod recovery;
pub mod repair;
pub mod runtime;
pub mod split;
pub mod transport;

pub use assign::{AssignParams, AssignStats};
pub use facade::{
    AgentError, GroupConfig, GroupServer, IntervalOutcome, RekeyDelivery, RekeyError, RekeyStatus,
    UserAgent, WelcomePacket,
};
pub use group::{Group, GroupError, JoinOutcome};
pub use protocols::{ipmc_rekey_transport, nice_rekey_transport, RekeyProtocol};
pub use recovery::{lossy_rekey_transport, LossyReport};
pub use runtime::{
    ChurnEvent, ChurnOp, Driver, GroupRuntime, MetricsSnapshot, RuntimeConfig,
    RuntimeConfigBuilder, ShardedGroupRuntime, UdpGroupDriver,
};
pub use split::{cluster_rekey_transport, split_for_neighbor, tmesh_rekey_transport};
pub use transport::{
    BandwidthReport, MemberIndex, SplitIndex, SplitIndexMaintainer, SplitIndexStats,
    TransportOptions,
};

/// The types nearly every embedder needs, in one import: runtime
/// configuration, the facade entry points, metrics snapshots, and the
/// handle type of the arena key tree.
///
/// ```
/// use rekey_proto::prelude::*;
/// let cfg = RuntimeConfig::builder().build();
/// # let _ = cfg;
/// ```
pub mod prelude {
    pub use crate::facade::{GroupConfig, GroupServer, UserAgent};
    pub use crate::runtime::{
        Driver, GroupRuntime, MetricsSnapshot, RuntimeConfig, RuntimeConfigBuilder,
        ShardedGroupRuntime, UdpGroupDriver,
    };
    pub use rekey_keytree::NodeHandle;
}
