//! The seven rekey transport protocols of Table 2.
//!
//! | Variant | Key tree | Multicast | Cluster heuristic | Splitting |
//! |---|---|---|---|---|
//! | [`RekeyProtocol::P0`] | original | NICE | – | no |
//! | [`RekeyProtocol::P0Split`] | original | NICE | – | yes |
//! | [`RekeyProtocol::P1`] | modified | T-mesh | no | no |
//! | [`RekeyProtocol::P1Split`] | modified | T-mesh | no | yes |
//! | [`RekeyProtocol::P1Cluster`] | modified | T-mesh | yes | no |
//! | [`RekeyProtocol::P1ClusterSplit`] | modified | T-mesh | yes | yes |
//! | [`RekeyProtocol::IpMulticast`] | original | IP multicast (DVMRP) | – | no |
//!
//! To split in NICE (`P0Split`), "users need to maintain states for O(N)
//! downstream users" (§4.3) — the harness plays that role by deriving
//! downstream need-sets from the NICE delivery tree, and (as in the paper)
//! this maintenance cost is not charged to the protocol.

use std::collections::{HashMap, HashSet};

use rekey_net::{HostId, LinkLoad, Network, RoutedNetwork};
use rekey_nice::NiceHierarchy;

use crate::transport::BandwidthReport;

/// The seven rekey transport protocols compared in Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RekeyProtocol {
    /// Original key tree over NICE, no splitting (paper `P0`).
    P0,
    /// Original key tree over NICE with splitting (paper `P0′`).
    P0Split,
    /// Modified key tree over T-mesh, no splitting (paper `P1`).
    P1,
    /// Modified key tree over T-mesh with splitting (paper `P2`).
    P1Split,
    /// Modified tree + cluster heuristic over T-mesh, no splitting
    /// (paper `P3`).
    P1Cluster,
    /// Modified tree + cluster heuristic over T-mesh with splitting
    /// (paper `P4`).
    P1ClusterSplit,
    /// Original key tree over DVMRP-style IP multicast (paper `P_m`).
    IpMulticast,
}

impl RekeyProtocol {
    /// All seven protocols, in Table 2 order.
    pub const ALL: [RekeyProtocol; 7] = [
        RekeyProtocol::P0,
        RekeyProtocol::P0Split,
        RekeyProtocol::P1,
        RekeyProtocol::P1Split,
        RekeyProtocol::P1Cluster,
        RekeyProtocol::P1ClusterSplit,
        RekeyProtocol::IpMulticast,
    ];

    /// Short label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            RekeyProtocol::P0 => "P0(nice)",
            RekeyProtocol::P0Split => "P0'(nice+split)",
            RekeyProtocol::P1 => "P1(tmesh)",
            RekeyProtocol::P1Split => "P2(tmesh+split)",
            RekeyProtocol::P1Cluster => "P3(tmesh+cluster)",
            RekeyProtocol::P1ClusterSplit => "P4(tmesh+cluster+split)",
            RekeyProtocol::IpMulticast => "Pm(ipmc)",
        }
    }
}

/// Runs one rekey transport session over NICE (protocols `P0`/`P0′`).
///
/// `needs[h]` is the set of encryption indices host `h` needs (nodes on its
/// key-tree path); `total` is the full message size. With `split`, each
/// member forwards to a child only the encryptions needed somewhere in the
/// child's delivery subtree.
///
/// The returned report is keyed by position in `hosts`.
pub fn nice_rekey_transport(
    nice: &NiceHierarchy,
    net: &impl Network,
    server: HostId,
    hosts: &[HostId],
    needs: &HashMap<HostId, HashSet<usize>>,
    total: usize,
    split: bool,
) -> BandwidthReport {
    let outcome = nice.rekey_multicast(net, server);
    let host_index: HashMap<HostId, usize> =
        hosts.iter().enumerate().map(|(i, &h)| (h, i)).collect();
    let mut report = BandwidthReport {
        received: vec![0; hosts.len()],
        forwarded: vec![0; hosts.len()],
        link_load: (net.link_count() > 0).then(|| LinkLoad::new(net.link_count())),
        received_sets: None,
    };

    // Build the delivery tree (children lists) from the NICE outcome.
    let mut children: HashMap<HostId, Vec<HostId>> = HashMap::new();
    let root = outcome.server_unicast().expect("rekey session").1;
    for &h in hosts {
        if let Some(d) = outcome.delivery(h) {
            if let Some(parent) = d.from {
                children.entry(parent).or_default().push(h);
            }
        }
    }

    // Bottom-up subtree need-sets (only used when splitting).
    fn subtree_needs(
        h: HostId,
        children: &HashMap<HostId, Vec<HostId>>,
        needs: &HashMap<HostId, HashSet<usize>>,
        memo: &mut HashMap<HostId, HashSet<usize>>,
    ) -> HashSet<usize> {
        if let Some(s) = memo.get(&h) {
            return s.clone();
        }
        let mut set = needs.get(&h).cloned().unwrap_or_default();
        for &c in children.get(&h).map(Vec::as_slice).unwrap_or(&[]) {
            set.extend(subtree_needs(c, children, needs, memo));
        }
        memo.insert(h, set.clone());
        set
    }
    let mut memo = HashMap::new();

    // Server unicast to the root carries the full message.
    let root_units = if split {
        subtree_needs(root, &children, needs, &mut memo).len() as u64
    } else {
        total as u64
    };
    if let (Some(load), Some(path)) = (report.link_load.as_mut(), net.path_links(server, root)) {
        load.add_path(&path, root_units);
    }
    report.received[host_index[&root]] += root_units;

    // Each delivery-tree edge carries the (possibly split) message.
    let mut stack = vec![root];
    while let Some(p) = stack.pop() {
        for &c in children.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
            let units = if split {
                subtree_needs(c, &children, needs, &mut memo).len() as u64
            } else {
                total as u64
            };
            report.forwarded[host_index[&p]] += units;
            report.received[host_index[&c]] += units;
            if let (Some(load), Some(path)) = (report.link_load.as_mut(), net.path_links(p, c)) {
                load.add_path(&path, units);
            }
            stack.push(c);
        }
    }
    report
}

/// Runs one rekey transport session over IP multicast (protocol `P_m`):
/// every receiver gets the full message; each shortest-path-tree link
/// carries it exactly once; end hosts forward nothing.
pub fn ipmc_rekey_transport(
    net: &RoutedNetwork,
    server: HostId,
    hosts: &[HostId],
    total: usize,
) -> BandwidthReport {
    let tree = rekey_ipmc::source_tree(net, server, hosts);
    BandwidthReport {
        received: vec![total as u64; hosts.len()],
        forwarded: vec![0; hosts.len()],
        link_load: Some(tree.link_load(net.graph().link_count(), total as u64)),
        received_sets: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rekey_net::gtitm::{generate, GtItmParams};
    use rekey_nice::NiceParams;

    fn setup(n: usize, seed: u64) -> (RoutedNetwork, Vec<HostId>, NiceHierarchy) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = generate(&GtItmParams::small(), &mut rng);
        let net = RoutedNetwork::random_attachment(topo.into_graph(), n + 1, &mut rng);
        let hosts: Vec<HostId> = (0..n).map(HostId).collect();
        let mut nice = NiceHierarchy::new(NiceParams::default());
        for &h in &hosts {
            nice.join(h, &net);
        }
        (net, hosts, nice)
    }

    #[test]
    fn nice_no_split_floods_full_message() {
        let (net, hosts, nice) = setup(12, 1);
        let needs = HashMap::new();
        let report = nice_rekey_transport(&nice, &net, HostId(12), &hosts, &needs, 100, false);
        assert!(report.received.iter().all(|&r| r == 100));
        let fan: u64 = report.forwarded.iter().sum();
        assert_eq!(
            fan,
            100 * (hosts.len() as u64 - 1),
            "one full copy per non-root member"
        );
    }

    #[test]
    fn nice_split_carries_only_subtree_needs() {
        let (net, hosts, nice) = setup(12, 2);
        // Each host needs exactly one private encryption.
        let needs: HashMap<HostId, HashSet<usize>> =
            hosts.iter().map(|&h| (h, HashSet::from([h.0]))).collect();
        let report = nice_rekey_transport(&nice, &net, HostId(12), &hosts, &needs, 12, true);
        // Everyone receives at least its own encryption, far less than 12
        // in total across interior nodes.
        assert!(report.received.iter().all(|&r| r >= 1));
        let total_no_split: u64 = 12 * hosts.len() as u64;
        assert!(report.received.iter().sum::<u64>() < total_no_split);
        // Leaf members receive exactly their own encryption.
        let min = report.received.iter().min().copied().unwrap();
        assert_eq!(min, 1);
    }

    #[test]
    fn ipmc_receivers_get_everything_links_carry_once() {
        let (net, hosts, _) = setup(10, 3);
        let report = ipmc_rekey_transport(&net, HostId(10), &hosts, 250);
        assert!(report.received.iter().all(|&r| r == 250));
        assert!(report.forwarded.iter().all(|&f| f == 0));
        let load = report.link_load.unwrap();
        assert_eq!(load.max(), 250, "tree links carry the message exactly once");
    }

    #[test]
    fn protocol_labels_cover_all() {
        let labels: HashSet<&str> = RekeyProtocol::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 7);
    }
}
