//! Lossy rekey transport with limited unicast recovery.
//!
//! Rekey messages "require fast delivery to achieve tight group access
//! control" (§1) but real networks lose packets. The paper's companion
//! work — *Group rekeying with limited unicast recovery* \[31\] (Zhang, Lam
//! & Lee) — recovers exactly the way this module models: users that missed
//! (part of) the multicast rekey message fetch their missing encryptions
//! from the key server via unicast.
//!
//! [`lossy_rekey_transport`] runs the split T-mesh transport while each
//! overlay copy is independently lost with probability `loss`; a lost copy
//! silences the entire downstream subtree of that hop (the copy is the only
//! one they would get, Theorem 1). [`LossyReport`] then quantifies the
//! recovery pass: every member compares what it received against what it
//! needs (Lemma 3 makes this locally checkable — its own path prefixes)
//! and unicasts the server for the difference.

use rand::Rng;
use rekey_crypto::Encryption;
use rekey_net::Network;
use rekey_sim::SimRng;
use rekey_tmesh::forward::{server_next_hops, user_next_hops};
use rekey_tmesh::TmeshGroup;

use crate::transport::RekeySession;

/// Outcome of a lossy rekey transport plus its unicast recovery pass.
#[derive(Debug, Clone)]
pub struct LossyReport {
    /// Encryptions received via multicast, per member.
    pub received: Vec<u64>,
    /// Overlay copies lost in flight.
    pub copies_lost: u64,
    /// Members that needed recovery (missed at least one needed
    /// encryption).
    pub recovering_members: Vec<usize>,
    /// Encryptions the server re-sent via unicast, total.
    pub recovery_encryptions: u64,
    /// Per-member encryption indices held after recovery (multicast +
    /// unicast), for end-to-end verification.
    pub final_sets: Vec<Vec<usize>>,
}

impl LossyReport {
    /// Recovery unicast messages (one request plus one reply per
    /// recovering member).
    pub fn recovery_messages(&self) -> u64 {
        2 * self.recovering_members.len() as u64
    }
}

/// Runs the split rekey transport under independent per-copy loss with
/// probability `loss`, then the unicast recovery pass.
///
/// # Panics
///
/// Panics if `loss` is not within `[0, 1)`.
pub fn lossy_rekey_transport(
    group: &TmeshGroup,
    _net: &impl Network,
    message: &[Encryption],
    loss: f64,
    rng: &mut SimRng,
) -> LossyReport {
    assert!(
        (0.0..1.0).contains(&loss),
        "loss probability must be in [0, 1)"
    );
    let n = group.members().len();
    let mut session = RekeySession::new(group, message, true);
    let mut received: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut copies_lost = 0u64;

    // Which copies are delivered does not depend on payload contents, so
    // the loss draws here consume the RNG in the exact sequence the former
    // scan-per-hop implementation did.
    for hop in server_next_hops(group.server_table()) {
        let to = session.members.of_hop(&hop);
        let payload = session.initial_payload(&hop);
        if rng.gen_bool(loss) {
            copies_lost += 1;
            continue;
        }
        session.queue.push_back((to, hop.forward_level, payload, 0));
    }
    while let Some((member, level, payload, _)) = session.queue.pop_front() {
        session.payload_extend(payload, &mut received[member]);
        for hop in user_next_hops(group.table(member), level) {
            let to = session.members.of_hop(&hop);
            let next = session.payload_for(payload, &hop);
            if rng.gen_bool(loss) {
                copies_lost += 1;
                continue;
            }
            session.queue.push_back((to, hop.forward_level, next, 0));
        }
    }

    // Recovery: each member checks its *own* needs (Lemma 3) and fetches
    // the difference from the server via unicast. A member's needs are the
    // encryptions whose IDs lie on its path — exactly the related set of
    // its full-length ID, so the split index answers it directly.
    let mut recovering_members = Vec::new();
    let mut recovery_encryptions = 0u64;
    let mut final_sets = received.clone();
    for (i, member) in group.members().iter().enumerate() {
        let have: std::collections::BTreeSet<usize> = received[i].iter().copied().collect();
        let missing: Vec<usize> = session
            .index
            .indices(member.id.digits())
            .filter(|e| !have.contains(e))
            .collect();
        if !missing.is_empty() {
            recovery_encryptions += missing.len() as u64;
            final_sets[i].extend(missing);
            recovering_members.push(i);
        }
    }
    LossyReport {
        received: received.iter().map(|v| v.len() as u64).collect(),
        copies_lost,
        recovering_members,
        recovery_encryptions,
        final_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_keytree::{KeyRing, ModifiedKeyTree, RekeyArena};
    use rekey_net::{HostId, MatrixNetwork, PlanetLabParams};
    use rekey_sim::seeded_rng;
    use rekey_table::PrimaryPolicy;

    type Rings = std::collections::HashMap<rekey_id::UserId, KeyRing>;

    fn fixture(
        n: usize,
        seed: u64,
    ) -> (MatrixNetwork, crate::Group, ModifiedKeyTree, Rings, SimRng) {
        let mut rng = seeded_rng(seed);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::default(), &mut rng);
        let spec = IdSpec::new(3, 8).unwrap();
        let mut group = crate::Group::new(
            &spec,
            HostId(net.host_count() - 1),
            4,
            PrimaryPolicy::SmallestRtt,
            crate::AssignParams::for_depth(3),
        );
        let mut tree = ModifiedKeyTree::new(&spec);
        let mut arena = RekeyArena::new();
        for h in 0..n {
            let out = group.join(HostId(h), &net, h as u64).unwrap();
            tree.batch_rekey(&[out.id], &[], &mut rng, &mut arena)
                .unwrap();
        }
        let rings: Rings = group
            .members()
            .iter()
            .map(|m| {
                (
                    m.id.clone(),
                    KeyRing::new(m.id.clone(), tree.user_path_keys(&m.id)),
                )
            })
            .collect();
        (net, group, tree, rings, rng)
    }

    #[test]
    fn zero_loss_needs_no_recovery() {
        let (net, mut group, mut tree, _rings, mut rng) = fixture(30, 1);
        let leaver = group.members()[3].id.clone();
        group.leave(&leaver, &net).unwrap();
        let mut arena = RekeyArena::new();
        let out = tree
            .batch_rekey(&[], &[leaver], &mut rng, &mut arena)
            .unwrap();
        let report = lossy_rekey_transport(
            &group.tmesh(),
            &net,
            out.encryptions(),
            0.0,
            &mut seeded_rng(7),
        );
        assert_eq!(report.copies_lost, 0);
        assert!(report.recovering_members.is_empty());
        assert_eq!(report.recovery_encryptions, 0);
    }

    #[test]
    fn recovery_restores_every_member_key_state() {
        let (net, mut group, mut tree, mut rings, mut rng) = fixture(40, 2);
        let leavers: Vec<_> = group
            .members()
            .iter()
            .step_by(5)
            .map(|m| m.id.clone())
            .collect();
        for l in &leavers {
            group.leave(l, &net).unwrap();
            rings.remove(l);
        }
        let mut arena = RekeyArena::new();
        let out = tree
            .batch_rekey(&[], &leavers, &mut rng, &mut arena)
            .unwrap();
        let mesh = group.tmesh();
        let report =
            lossy_rekey_transport(&mesh, &net, out.encryptions(), 0.25, &mut seeded_rng(9));
        assert!(report.copies_lost > 0, "25% loss must drop something");
        assert!(!report.recovering_members.is_empty());

        // After multicast + recovery, every member can decrypt up to the
        // server's state from its pre-interval key ring.
        let spec = *group.spec();
        for (i, member) in mesh.members().iter().enumerate() {
            let ring = rings.get_mut(&member.id).expect("survivor has a ring");
            ring.absorb(report.final_sets[i].iter().map(|&e| &out.encryptions()[e]));
            assert!(
                ring.matches_path(&spec, tree.user_path_keys(&member.id)),
                "{} lacks keys after recovery",
                member.id
            );
        }

        // Recovery bandwidth is bounded: at most D+1 encryptions per
        // recovering member.
        assert!(
            report.recovery_encryptions
                <= (spec.depth() as u64 + 1) * report.recovering_members.len() as u64
        );
    }

    #[test]
    fn heavier_loss_recovers_more_members() {
        let (net, mut group, mut tree, _rings, mut rng) = fixture(40, 3);
        let leaver = group.members()[0].id.clone();
        group.leave(&leaver, &net).unwrap();
        let mut arena = RekeyArena::new();
        let out = tree
            .batch_rekey(&[], &[leaver], &mut rng, &mut arena)
            .unwrap();
        let mesh = group.tmesh();
        let low = lossy_rekey_transport(&mesh, &net, out.encryptions(), 0.05, &mut seeded_rng(11));
        let high = lossy_rekey_transport(&mesh, &net, out.encryptions(), 0.5, &mut seeded_rng(11));
        assert!(high.recovering_members.len() >= low.recovering_members.len());
        assert!(high.copies_lost > low.copies_lost);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_invalid_loss() {
        let (net, group, _, _, _) = fixture(5, 4);
        let _ = lossy_rekey_transport(&group.tmesh(), &net, &[], 1.5, &mut seeded_rng(1));
    }
}
