//! Server-assisted neighbor-table repair (§3.2).
//!
//! When a member departs (leave or detected failure), every surviving
//! member must drop the departed record from the `(i, j)`-entry that held
//! it and refill that entry to keep tables K-consistent. The key server
//! knows the full membership, so it computes — once per departure — the
//! candidate set any receiver needs: for every ID level `c` (deepest
//! first), up to `K` surviving members whose IDs share the first `c`
//! digits with the departed ID. A receiver at common-prefix length `c`
//! with the departed member finds its refill candidates among the
//! level-`c` picks; sending the union per level serves all receivers with
//! one computation.
//!
//! Both protocol drivers share this routine: the message-by-message join
//! protocol ([`crate::distributed`]) broadcasts the candidates in
//! `MemberLeft`, and the event-driven group runtime
//! ([`crate::runtime`]) uses it for leave, crash, and stale-record
//! repair.

use rekey_id::UserId;

/// Replacement candidates for `departed`, drawn from `members`: per level
/// `c` from `depth − 1` down to `0`, up to `k` members sharing the first
/// `c` digits with `departed`, deduplicated across levels. A record whose
/// ID equals `departed` is never picked, so a caller racing a departure
/// broadcast (the membership snapshot still lists the failed node) cannot
/// be handed the failed node as its own replacement. Iteration order of
/// `members` is preserved within a level, so a deterministic input yields
/// a deterministic candidate list.
pub fn replacement_candidates<'a, T, I>(
    depth: usize,
    k: usize,
    departed: &UserId,
    members: I,
    id_of: impl Fn(&T) -> &UserId,
) -> Vec<&'a T>
where
    I: Iterator<Item = &'a T> + Clone,
{
    let mut out: Vec<&'a T> = Vec::new();
    for level in (0..depth).rev() {
        let prefix = departed.prefix(level);
        let mut picked = 0;
        for r in members.clone() {
            if picked >= k {
                break;
            }
            let id = id_of(r);
            if id != departed && prefix.is_prefix_of_id(id) && !out.iter().any(|x| id_of(x) == id) {
                out.push(r);
                picked += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;

    fn uid(spec: &IdSpec, digits: [u16; 3]) -> UserId {
        UserId::new(spec, digits.to_vec()).unwrap()
    }

    #[test]
    fn deeper_levels_are_picked_first_and_deduped() {
        let spec = IdSpec::new(3, 4).unwrap();
        let departed = uid(&spec, [1, 2, 3]);
        let members = [
            uid(&spec, [0, 0, 0]),
            uid(&spec, [1, 0, 0]),
            uid(&spec, [1, 2, 0]), // shares 2 digits: level-2 pick
            uid(&spec, [1, 2, 1]), // shares 2 digits: level-2 pick
            uid(&spec, [3, 3, 3]),
        ];
        let picks = replacement_candidates(3, 1, &departed, members.iter(), |id| id);
        // Level 2 picks [1,2,0]; level 1 (prefix [1]) skips the already
        // picked [1,2,0] and takes [1,0,0]; level 0 takes [0,0,0].
        assert_eq!(
            picks,
            vec![&members[2], &members[1], &members[0]],
            "deepest level first, no duplicates"
        );
    }

    #[test]
    fn respects_k_per_level() {
        let spec = IdSpec::new(2, 4).unwrap();
        let departed = UserId::new(&spec, vec![0, 0]).unwrap();
        let members: Vec<UserId> = (1..4)
            .map(|d| UserId::new(&spec, vec![0, d]).unwrap())
            .collect();
        let picks = replacement_candidates(2, 2, &departed, members.iter(), |id| id);
        // Level 1 takes two of the three siblings; level 0 takes the third.
        assert_eq!(picks.len(), 3);
        let one = replacement_candidates(2, 1, &departed, members.iter(), |id| id);
        assert_eq!(one.len(), 2);
    }

    #[test]
    fn empty_membership_yields_no_candidates() {
        let spec = IdSpec::new(2, 4).unwrap();
        let departed = UserId::new(&spec, vec![0, 0]).unwrap();
        let members: Vec<UserId> = Vec::new();
        assert!(replacement_candidates(2, 4, &departed, members.iter(), |id| id).is_empty());
    }

    /// A level with no prefix-sharing survivor (an empty table row)
    /// contributes nothing, but shallower levels still fill in.
    #[test]
    fn empty_level_falls_through_to_shallower_levels() {
        let spec = IdSpec::new(3, 4).unwrap();
        let departed = uid(&spec, [1, 2, 3]);
        // Nobody shares the 2-digit prefix [1,2]; one member shares [1].
        let members = [uid(&spec, [1, 0, 0]), uid(&spec, [2, 2, 2])];
        let picks = replacement_candidates(3, 2, &departed, members.iter(), |id| id);
        assert_eq!(picks, vec![&members[0], &members[1]]);
    }

    /// Callers pass a pre-filtered iterator (e.g. suspects removed); when
    /// the filter removes everyone, the candidate list is empty rather
    /// than falling back to suspect records.
    #[test]
    fn fully_filtered_membership_yields_no_candidates() {
        let spec = IdSpec::new(2, 4).unwrap();
        let departed = UserId::new(&spec, vec![0, 0]).unwrap();
        let members: Vec<UserId> = (1..4)
            .map(|d| UserId::new(&spec, vec![0, d]).unwrap())
            .collect();
        let suspects: Vec<&UserId> = members.iter().collect();
        let picks = replacement_candidates(
            2,
            2,
            &departed,
            members.iter().filter(|m| !suspects.contains(m)),
            |id| id,
        );
        assert!(picks.is_empty());
    }

    /// A membership snapshot that still lists the departed member (the
    /// race between a failure notice and the departure broadcast) never
    /// hands the departed node back as its own replacement.
    #[test]
    fn departed_member_is_never_its_own_replacement() {
        let spec = IdSpec::new(2, 4).unwrap();
        let departed = UserId::new(&spec, vec![0, 0]).unwrap();
        let members = [departed.clone(), UserId::new(&spec, vec![0, 1]).unwrap()];
        let picks = replacement_candidates(2, 4, &departed, members.iter(), |id| id);
        assert_eq!(picks, vec![&members[1]], "departed id must be skipped");

        // Even when the departed id is the *only* entry at every level.
        let only_self = [departed.clone()];
        assert!(replacement_candidates(2, 4, &departed, only_self.iter(), |id| id).is_empty());
    }
}
