//! The event-driven group runtime: one long-lived simulation in which the
//! key server and every member are [`rekey_sim::Node`]s on a single clock.
//!
//! The synchronous [`GroupServer`]/[`UserAgent`] facade executes the
//! protocol one interval at a time with the caller as the clock; this
//! module drives the *same* state machines from a discrete-event schedule,
//! which is what the paper's own evaluation does (§4): "we simulate the
//! sending and the reception of a message as events". One implementation,
//! two drivers — the global-knowledge [`Group`] inside the server stays
//! the oracle that equivalence tests compare against.
//!
//! # Message taxonomy
//!
//! * **Timers** (`send_after`, immune to loss and jitter): `IntervalTick`
//!   fires the periodic rekey at the server (§1: "periodic batch
//!   rekeying"), `HeartbeatTick` drives each member's neighbor pings
//!   (§3.2), `IntervalCheck` is each member's NACK deadline per interval,
//!   `RetryTick` drives the bounded-retry machinery. Every timer carries a
//!   generation number so a restart can cancel a stale chain.
//! * **Membership control** (unicast, retransmitted until acknowledged):
//!   `JoinRequest` / `JoinAccepted` admit a member into the overlay
//!   mid-interval (its keys arrive in `Welcome` at the interval end);
//!   `LeaveRequest` / `LeaveAck` retire one — the ack is only sent after
//!   the departure reaches the crash journal, so an acknowledged leave can
//!   never roll back; `NewMember` / `MemberLeft` carry the server-assisted
//!   table updates of §3.2 under a per-mutation sequence number, so a
//!   member can detect (and resync across) any update it missed.
//! * **Rekey transport** (`Forward`, subject to per-copy loss): the
//!   `FORWARD` routine of Fig. 2 executed hop by hop, each copy carrying
//!   the split index plus the served prefix (Fig. 5). `Nack` / `Recover`
//!   implement the companion work's limited unicast recovery \[31\]: a
//!   member that misses an interval fetches exactly its related set —
//!   Lemma 3 makes the need locally checkable — from the server. NACKs
//!   retry with exponential backoff up to a cap, then escalate to a full
//!   `ResyncRequest` / `Resync` snapshot.
//! * **Failure detection** (`Ping` / `Pong`, `ServerPing` / `ServerPong`):
//!   members ping every stored neighbor each heartbeat period; an
//!   unanswered ping evicts the record ([`NeighborTable::evict_where`]),
//!   notifies the server (`FailureNotice`, re-sent each beat until the
//!   repair broadcast lands), and triggers the same repair as a leave.
//!   Evicted records stay on probation: a suspect that answers a later
//!   probe is reinstated, so a transient partition does not permanently
//!   shrink tables. Each beat also pings the *server*, which either
//!   vouches for the member (`ServerPong`, carrying the epoch, the
//!   mutation sequence number, and the current interval — the member's
//!   evidence for NACKs and resyncs) or disowns it (`NotMember`, after
//!   which the member rejoins from scratch).
//!
//! # Failure model and self-healing
//!
//! Crashed nodes are [`rekey_sim::Simulation::kill`]ed: they absorb all
//! traffic silently. Only `Forward` copies are subject to the *loss
//! model* (the bulk rekey payload on a UDP-like path); control traffic is
//! reliable on a healthy network, matching the paper's assumption that
//! notifications and unicast recovery ride TCP. On top of that,
//! [`GroupRuntime::with_faults`] wires a [`FaultPlan`] into the run:
//! partitions cut *all* traffic across cells, outages silence single
//! nodes (including the server) for a window, jitter reorders messages,
//! and i.i.d./burst loss thins the `Forward` stream. The protocol heals
//! from each of these without outside help:
//!
//! * a member behind a partition keeps retransmitting its join or leave
//!   with exponential backoff until the network heals;
//! * a member wrongfully evicted during a partition learns its fate from
//!   the server's `NotMember` and rejoins from scratch;
//! * a member that missed membership updates (sequence gap) or rekey
//!   intervals beyond the NACK retry cap resyncs from a server snapshot;
//! * the server checkpoints itself into a [`journal::Journal`] after
//!   every interval's multicast; a restart (modeled by a `Restart` event
//!   at the outage window's end) restores the latest checkpoint, bumps
//!   the *epoch*, and re-announces itself with an immediate interval, and
//!   every member that observes the new epoch resyncs.
//!
//! Every surviving member holds the current group key once
//! [`GroupRuntime::finish`] drains: the final flush rounds push each
//! member its latest related set, members NACK any gap immediately, and
//! the server answers from its per-interval history.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use rand::Rng;
use rekey_keytree::TreeMetrics;
use rekey_metrics::{json, Histogram, HistogramSnapshot, Registry, SpanRecord};
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{
    node_rng, seeded_rng, Ctx, FaultInjector, FaultPlan, Node, NodeId, SimTime, Simulation,
};
use rekey_table::{check_consistency, ConsistencyViolation, Member, NeighborTable};

use crate::transport::SplitIndexMaintainer;
use crate::{Group, GroupConfig, GroupServer, UserAgent};

pub mod journal;
pub mod shard;

pub use shard::ShardedGroupRuntime;

pub(crate) mod core;
pub mod socket;
pub mod wire;

#[allow(unused_imports)]
pub(crate) use self::core::{
    host_of_member_node, node_of_host, Knobs, ReplRole, Replication, RtMember, RtServer,
    SharedHandle, SERVER,
};
pub use self::core::{IntervalMessage, MemberStats, Outputs, ReplOp, RtMsg, ServerStats};
pub use socket::UdpGroupDriver;

/// Domain separator for the chaos injector's seed, so fault randomness is
/// decoupled from the legacy loss stream and the heartbeat stagger.
const CHAOS_SEED: u64 = 0x43_48_41_4F_53; // "CHAOS"

/// Timing, loss, retry, and seeding knobs of a [`GroupRuntime`].
///
/// Constructed through [`RuntimeConfig::builder`] (mirroring the
/// [`GroupConfig`] builder), which validates every knob in
/// [`RuntimeConfigBuilder::build`] — so a `RuntimeConfig` in hand is
/// valid by construction and [`GroupRuntime::new`] never has to reject
/// one. [`RuntimeConfig::default`] is the validated default set.
///
/// ```
/// use rekey_proto::RuntimeConfig;
///
/// let config = RuntimeConfig::builder()
///     .rekey_period(5_000_000)
///     .loss(0.02)
///     .seed(42)
///     .build();
/// assert_eq!(config.rekey_period(), 5_000_000);
/// assert_eq!(config.retry_cap(), RuntimeConfig::default().retry_cap());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    rekey_period: SimTime,
    heartbeat_period: SimTime,
    nack_grace: SimTime,
    loss: f64,
    retry_base: SimTime,
    retry_cap: u32,
    seed: u64,
    replicas: usize,
}

impl RuntimeConfig {
    /// Starts a builder from the default knobs.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder(RuntimeConfig::default())
    }

    /// Rekey interval length (µs): the server batch-rekeys on this period.
    pub fn rekey_period(&self) -> SimTime {
        self.rekey_period
    }

    /// Heartbeat period (µs): how often each member pings its stored
    /// neighbors. A ping unanswered by the next beat evicts the neighbor.
    pub fn heartbeat_period(&self) -> SimTime {
        self.heartbeat_period
    }

    /// Grace (µs) after an interval boundary before a member NACKs a
    /// missing rekey message.
    pub fn nack_grace(&self) -> SimTime {
        self.nack_grace
    }

    /// Independent per-copy loss probability applied to `Forward` copies.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// First retransmit timeout (µs) of the bounded-retry machinery; each
    /// further attempt doubles it.
    pub fn retry_base(&self) -> SimTime {
        self.retry_base
    }

    /// Retry attempt cap: the backoff exponent saturates here, and a NACK
    /// retried this many times escalates to a full resync.
    pub fn retry_cap(&self) -> u32 {
        self.retry_cap
    }

    /// Seed for the runtime's randomness (loss draws, heartbeat stagger,
    /// fault injection). Independent of the [`GroupConfig`]
    /// key-generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Key-server replicas (≥ 1). With more than one, the primary streams
    /// its mutation log to follower replicas and a deterministic election
    /// promotes the most-caught-up follower when the primary dies.
    pub fn replicas(&self) -> usize {
        self.replicas
    }
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            rekey_period: 10_000_000,
            heartbeat_period: 15_000_000,
            nack_grace: 2_000_000,
            loss: 0.0,
            retry_base: 1_000_000,
            retry_cap: 5,
            seed: 0,
            replicas: 1,
        }
    }
}

/// Fluent builder of a [`RuntimeConfig`]; every knob starts at its
/// default. Validation happens once, in [`RuntimeConfigBuilder::build`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfigBuilder(RuntimeConfig);

impl RuntimeConfigBuilder {
    /// Rekey interval length (µs). Must be positive.
    pub fn rekey_period(mut self, period: SimTime) -> RuntimeConfigBuilder {
        self.0.rekey_period = period;
        self
    }

    /// Heartbeat period (µs). Must be positive.
    pub fn heartbeat_period(mut self, period: SimTime) -> RuntimeConfigBuilder {
        self.0.heartbeat_period = period;
        self
    }

    /// NACK grace (µs). Must be positive and should exceed the worst
    /// overlay delivery delay (debug builds warn at runtime construction
    /// when it does not even cover a server round trip).
    pub fn nack_grace(mut self, grace: SimTime) -> RuntimeConfigBuilder {
        self.0.nack_grace = grace;
        self
    }

    /// Per-copy `Forward` loss probability. Must be in `[0, 1)`.
    pub fn loss(mut self, loss: f64) -> RuntimeConfigBuilder {
        self.0.loss = loss;
        self
    }

    /// First retransmit timeout (µs). Must be positive.
    pub fn retry_base(mut self, base: SimTime) -> RuntimeConfigBuilder {
        self.0.retry_base = base;
        self
    }

    /// Retry attempt cap.
    pub fn retry_cap(mut self, cap: u32) -> RuntimeConfigBuilder {
        self.0.retry_cap = cap;
        self
    }

    /// Runtime randomness seed.
    pub fn seed(mut self, seed: u64) -> RuntimeConfigBuilder {
        self.0.seed = seed;
        self
    }

    /// Key-server replica count (≥ 1; 1 means the classic single server).
    pub fn replicas(mut self, replicas: usize) -> RuntimeConfigBuilder {
        self.0.replicas = replicas;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)` or any of the periods
    /// (`rekey_period`, `heartbeat_period`, `nack_grace`, `retry_base`)
    /// is zero — a zero rekey interval or NACK grace would spin the event
    /// loop at a single instant.
    pub fn build(self) -> RuntimeConfig {
        let config = self.0;
        assert!(
            (0.0..1.0).contains(&config.loss),
            "loss probability must be in [0, 1)"
        );
        assert!(config.rekey_period > 0, "rekey period must be positive");
        assert!(config.nack_grace > 0, "nack grace must be positive");
        assert!(
            config.heartbeat_period > 0,
            "heartbeat period must be positive"
        );
        assert!(config.retry_base > 0, "retry base must be positive");
        assert!(config.replicas >= 1, "at least one key-server replica");
        config
    }
}

/// One scheduled churn action for [`GroupRuntime::run_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new host joins; it gets the next member handle (join order).
    Join,
    /// Member (by join handle) leaves voluntarily.
    Leave(usize),
    /// Member (by join handle) crashes silently: its node is killed and
    /// only heartbeat detection removes it from the group.
    Crash(usize),
}

/// A churn action with its simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Absolute simulated time of the action.
    pub at: SimTime,
    /// The action.
    pub op: ChurnOp,
}

impl ChurnEvent {
    /// A join at `at`.
    pub fn join(at: SimTime) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Join,
        }
    }

    /// A voluntary leave of join-handle `member` at `at`.
    pub fn leave(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Leave(member),
        }
    }

    /// A silent crash of join-handle `member` at `at`.
    pub fn crash(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Crash(member),
        }
    }
}

/// Metric handles shared by every node of one runtime, all registered in
/// one [`Registry`] (which the server's [`TreeMetrics`] also reports
/// into). Recording is O(1) per event, so the hot paths stay hot.
struct RuntimeMetrics {
    registry: Registry,
    /// µs from an interval's multicast to its local application.
    apply_delay_us: Histogram,
    /// Encryptions per `Forward` copy received (split payload sizes).
    split_payload: Histogram,
    /// Copies sent per forwarding occasion (server seeds and member
    /// forward duties alike).
    forward_fanout: Histogram,
    /// Encryptions per unicast `Recover` reply.
    recovery_size: Histogram,
}

impl RuntimeMetrics {
    fn new() -> RuntimeMetrics {
        let registry = Registry::new();
        RuntimeMetrics {
            apply_delay_us: registry.histogram("apply_delay_us"),
            split_payload: registry.histogram("split_payload"),
            forward_fanout: registry.histogram("forward_fanout"),
            recovery_size: registry.histogram("recovery_size"),
            registry,
        }
    }
}

/// Shared state of the classic single-queue runtime.
struct Shared {
    knobs: Knobs,
    /// Set by [`GroupRuntime::finish`]: timers stop re-arming so the
    /// event queue drains with all repairs and recoveries completed;
    /// retries fire immediately instead of waiting for a tick.
    shutdown: Cell<bool>,
    metrics: RuntimeMetrics,
}

impl SharedHandle for Rc<Shared> {
    fn knobs(&self) -> &Knobs {
        &self.knobs
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.get()
    }
    fn record_split_payload(&self, v: u64) {
        self.metrics.split_payload.record(v);
    }
    fn record_forward_fanout(&self, v: u64) {
        self.metrics.forward_fanout.record(v);
    }
    fn record_apply(&self, span: &'static str, sent_at: SimTime, now: SimTime, interval: u64) {
        self.metrics
            .apply_delay_us
            .record(now.saturating_sub(sent_at));
        self.metrics.registry.span(span, sent_at, now, interval);
    }
    fn record_recovery_size(&self, v: u64) {
        self.metrics.recovery_size.record(v);
    }
    fn span(&self, name: &'static str, start: SimTime, end: SimTime, detail: u64) {
        self.metrics.registry.span(name, start, end, detail);
    }
}

/// The deterministic sim driver's output boundary: `Ctx` already *is*
/// an outbox over `Outgoing`, so delegation is 1:1 and the scheduled
/// event sequence is bit-for-bit what the pre-split runtime produced.
impl Outputs for Ctx<'_, RtMsg> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }
    fn self_id(&self) -> NodeId {
        Ctx::self_id(self)
    }
    fn send(&mut self, to: NodeId, msg: RtMsg) {
        Ctx::send(self, to, msg);
    }
    fn timer(&mut self, delay: SimTime, msg: RtMsg) {
        let me = Ctx::self_id(self);
        Ctx::send_after(self, me, delay, msg);
    }
}

/// A protocol participant of the runtime: the server or a member.
pub struct RtActor<NET>(ActorKind<NET>);

enum ActorKind<NET> {
    Server(Box<RtServer<NET, Rc<Shared>>>),
    Member(Box<RtMember<Rc<Shared>>>),
}

impl<NET: Network> Node for RtActor<NET> {
    type Msg = RtMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        match &mut self.0 {
            ActorKind::Server(s) => s.receive(ctx, from, msg),
            ActorKind::Member(m) => m.receive(ctx, from, msg),
        }
    }
}

/// Aggregated outcome of a runtime session: counters, histogram
/// summaries, and the tracing-span tail, for reports and benches.
///
/// The counter fields are integers and the histogram/span types are
/// `Eq`, so two snapshots from identically seeded runs can be compared
/// wholesale in determinism tests; [`MetricsSnapshot::to_json`] renders
/// the same data as a byte-stable JSON document for bench artifacts.
///
/// The struct is `#[non_exhaustive]`: obtain one via
/// [`GroupRuntime::snapshot`] and read the fields you need — new series
/// may appear in later versions without breaking callers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Members in the group at the end.
    pub members: usize,
    /// Joins admitted by the server.
    pub joins: u64,
    /// Departures processed by the server.
    pub departures: u64,
    /// Departures that were detected by heartbeats (crashes).
    pub failures_detected: u64,
    /// `Forward` copies sent (server seeds + member forwards).
    pub forward_copies: u64,
    /// Copies dropped by the loss model (legacy i.i.d., fault-plan loss,
    /// and partition cuts).
    pub copies_lost: u64,
    /// Deliveries absorbed by crashed nodes.
    pub dead_letters: u64,
    /// Deliveries suppressed by outage windows (node temporarily down).
    pub suppressed: u64,
    /// NACKs received by the server.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Heartbeat pings sent by members.
    pub pings: u64,
    /// Neighbor evictions after unanswered pings.
    pub evictions: u64,
    /// Control retransmissions by members (join/leave/NACK/resync).
    pub retransmissions: u64,
    /// Highest retry attempt count any member reached (≤ the cap).
    pub max_retry_attempts: u32,
    /// Full state snapshots the server served.
    pub resyncs: u64,
    /// Members that rejoined after being disowned.
    pub rejoins: u64,
    /// Evicted neighbors reinstated after answering a probation probe.
    pub rehabilitations: u64,
    /// Server restarts (journal restores).
    pub restarts: u64,
    /// Checkpoints written to the crash journal.
    pub checkpoints: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Welcome packets issued by the server.
    pub welcomes: u64,
    /// Leave acknowledgements sent (each after a covering checkpoint).
    pub leave_acks: u64,
    /// Key-wrap encryptions produced by the key tree's batch rekeys.
    pub tree_encryptions: u64,
    /// Retired key versions resumed past a tombstone during rekeying.
    pub tombstone_hits: u64,
    /// Messages cut by fault-plan partitions (0 without a plan).
    pub partition_cuts: u64,
    /// `Forward` copies dropped by fault-plan loss (0 without a plan;
    /// excludes the legacy i.i.d. `loss` stream).
    pub fault_loss_drops: u64,
    /// Elections started by follower replicas (0 with one replica).
    pub elections: u64,
    /// Followers promoted to primary (0 with one replica).
    pub promotions: u64,
    /// Mutations lost to restarts/promotions (ops past the recovered
    /// watermark; the affected members re-request).
    pub lost_mutations: u64,
    /// Peak replication lag (entries) any primary observed at a tick.
    pub repl_lag_peak: u64,
    /// Peak in-flight event count inside the simulator.
    pub peak_queue_depth: usize,
    /// µs from each interval's multicast to its local application.
    pub apply_delay_us: HistogramSnapshot,
    /// Membership mutations folded into each batch rekey.
    pub batch_size: HistogramSnapshot,
    /// Encryptions carried per split `Forward` copy received.
    pub split_payload: HistogramSnapshot,
    /// Copies sent per forwarding step (server seeds + member duty).
    pub forward_fanout: HistogramSnapshot,
    /// Encryptions per unicast recovery reply.
    pub recovery_size: HistogramSnapshot,
    /// Tail of the tracing-span ring (oldest spans drop first).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring before this snapshot was taken.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a deterministic JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, p50, p95, p99}}, "spans_dropped": n, "spans": [...]}`.
    /// Identically seeded runs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.begin_object();
        w.begin_named_object("counters");
        w.field_u64("intervals", self.intervals);
        w.field_usize("members", self.members);
        w.field_u64("joins", self.joins);
        w.field_u64("departures", self.departures);
        w.field_u64("failures_detected", self.failures_detected);
        w.field_u64("forward_copies", self.forward_copies);
        w.field_u64("copies_lost", self.copies_lost);
        w.field_u64("dead_letters", self.dead_letters);
        w.field_u64("suppressed", self.suppressed);
        w.field_u64("nacks", self.nacks);
        w.field_u64("recovery_encryptions", self.recovery_encryptions);
        w.field_u64("pings", self.pings);
        w.field_u64("evictions", self.evictions);
        w.field_u64("retransmissions", self.retransmissions);
        w.field_u64("max_retry_attempts", u64::from(self.max_retry_attempts));
        w.field_u64("resyncs", self.resyncs);
        w.field_u64("rejoins", self.rejoins);
        w.field_u64("rehabilitations", self.rehabilitations);
        w.field_u64("restarts", self.restarts);
        w.field_u64("checkpoints", self.checkpoints);
        w.field_u64("delivered", self.delivered);
        w.field_u64("welcomes", self.welcomes);
        w.field_u64("leave_acks", self.leave_acks);
        w.field_u64("tree_encryptions", self.tree_encryptions);
        w.field_u64("tombstone_hits", self.tombstone_hits);
        w.field_u64("partition_cuts", self.partition_cuts);
        w.field_u64("fault_loss_drops", self.fault_loss_drops);
        w.field_u64("elections", self.elections);
        w.field_u64("promotions", self.promotions);
        w.field_u64("lost_mutations", self.lost_mutations);
        w.field_u64("repl_lag_peak", self.repl_lag_peak);
        w.field_usize("peak_queue_depth", self.peak_queue_depth);
        w.end_object();
        w.begin_named_object("histograms");
        for (name, histogram) in [
            ("apply_delay_us", &self.apply_delay_us),
            ("batch_size", &self.batch_size),
            ("split_payload", &self.split_payload),
            ("forward_fanout", &self.forward_fanout),
            ("recovery_size", &self.recovery_size),
        ] {
            w.begin_named_object(name);
            histogram.write_fields(&mut w);
            w.end_object();
        }
        w.end_object();
        w.field_u64("spans_dropped", self.spans_dropped);
        w.begin_named_array("spans");
        for span in &self.spans {
            w.begin_object();
            w.field_str("name", span.name);
            w.field_u64("start", span.start);
            w.field_u64("end", span.end);
            w.field_u64("detail", span.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

type DelayFn = Box<dyn FnMut(NodeId, NodeId) -> SimTime>;

/// One churn-and-advance surface over every execution engine of the
/// sans-I/O protocol core ([`runtime::core`](self)).
///
/// The core's state machines know nothing about clocks or wires; a
/// *driver* binds their `(destination, payload, deadline)` outputs to an
/// execution substrate. Three drivers exist:
///
/// * [`GroupRuntime`] — one virtual clock, one global event queue
///   (deterministic, fault-injectable);
/// * [`ShardedGroupRuntime`] — windowed shards on worker threads, still
///   byte-deterministic (the million-member engine);
/// * [`socket::UdpGroupDriver`] — real loopback UDP datagrams and the
///   wall clock (not reproducible, but *equivalent*: the
///   `socket_equivalence` integration test pins identical final key
///   trees for identical churn).
///
/// The trait deliberately speaks in *rekey intervals*, not clock units,
/// because interval numbering is the one notion of progress all three
/// substrates share. Time-based APIs (traces at microsecond offsets,
/// fault plans) remain on the concrete types.
pub trait Driver {
    /// The authoritative server state machine (and through it the
    /// membership oracle and key tree).
    fn server_fsm(&self) -> &GroupServer;

    /// Handles dealt so far, departed members included; handles are
    /// `0..member_count()`.
    fn member_count(&self) -> usize;

    /// Member `handle`'s key agent, where the driver can show it:
    /// `None` before admission, after departure — and, on the socket
    /// driver, until [`Driver::finish_run`] collects the members from
    /// their worker threads.
    fn agent_of(&self, handle: usize) -> Option<&UserAgent>;

    /// Requests a voluntary leave of member `handle`, effective as the
    /// driver processes it.
    fn leave(&mut self, handle: usize);

    /// Advances the session until the server has completed rekey
    /// interval `target` and every live member has applied it. Returns
    /// `false` if the driver gave up (timeout on the socket driver, an
    /// idle simulation otherwise).
    fn run_to_interval(&mut self, target: u64) -> bool;

    /// Shuts the session down: timers stop, queues drain, and the
    /// server's flush rounds fold any pending membership work into a
    /// final interval. Returns `false` if the flush failed to converge.
    fn finish_run(&mut self) -> bool;

    /// Verifies K-consistency of every live member's local table against
    /// the authoritative membership (call after [`Driver::finish_run`]).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    fn verify_consistency(&self) -> Result<(), ConsistencyViolation>;

    /// Aggregated session metrics.
    fn metrics(&self) -> MetricsSnapshot;
}

/// The event-driven group runtime: see the module docs.
///
/// Join handles are join-trace indices: the `k`-th [`ChurnOp::Join`] gets
/// handle `k` and runs on `HostId(k)`; the server runs on the substrate's
/// last host.
pub struct GroupRuntime<NET: Network + 'static> {
    sim: Simulation<RtActor<NET>, DelayFn>,
    shared: Rc<Shared>,
    loss: f64,
    joins: usize,
    server_host: HostId,
    /// The chaos injector, kept so [`GroupRuntime::snapshot`] can read
    /// its fault counters after the run.
    faults: Option<Rc<RefCell<FaultInjector>>>,
}

impl<NET: Network + 'static> GroupRuntime<NET> {
    /// Builds a runtime over `net` with the server on the last host.
    ///
    /// `config` is valid by construction ([`RuntimeConfigBuilder::build`]
    /// holds the validation), so this never panics on configuration.
    /// Debug builds warn when `nack_grace` does not cover a worst-case
    /// server round trip, which makes spurious NACKs likely.
    pub fn new(group: GroupConfig, config: RuntimeConfig, net: NET) -> GroupRuntime<NET> {
        let net = Rc::new(net);
        let server_host = HostId(net.host_count() - 1);
        #[cfg(debug_assertions)]
        {
            let worst_round_trip = (0..net.host_count())
                .map(HostId)
                .filter(|&h| h != server_host)
                .map(|h| net.one_way(server_host, h) + net.one_way(h, server_host))
                .max()
                .unwrap_or(0);
            if config.nack_grace < worst_round_trip {
                eprintln!(
                    "warning: nack_grace ({} µs) is below the worst-case server \
                     round trip ({} µs); expect spurious NACKs",
                    config.nack_grace, worst_round_trip
                );
            }
        }
        let shared = Rc::new(Shared {
            knobs: Knobs::of_config(&config),
            shutdown: Cell::new(false),
            metrics: RuntimeMetrics::new(),
        });
        // Replica 0 is the initial primary; further replicas build the
        // *same* seeded state machine (deterministic replication replays
        // ops, so identical seeds keep the RNG streams aligned) but only
        // the primary instruments the tree — one metrics stream per group.
        let replicas = config.replicas;
        let mut servers = Vec::with_capacity(replicas);
        for replica in 0..replicas {
            let mut server_fsm = group.clone().build(server_host);
            if replica == 0 {
                server_fsm.instrument_tree(TreeMetrics::in_registry(&shared.metrics.registry));
            }
            servers.push(RtActor(ActorKind::Server(Box::new(RtServer {
                net: Rc::clone(&net),
                shared: Rc::clone(&shared),
                server: server_fsm,
                epoch: 0,
                seq: 0,
                tick_gen: 0,
                next_interval_at: config.rekey_period,
                last_round_at: 0,
                history: BTreeMap::new(),
                split_index: SplitIndexMaintainer::default(),
                journal: journal::Journal::new(),
                pending_leave_acks: Vec::new(),
                repl: Replication::new(replica, replicas),
                stats: ServerStats::default(),
            }))));
        }
        let delay_net = Rc::clone(&net);
        let delay: DelayFn = Box::new(move |a, b| {
            let host = |n: NodeId| {
                if n.0 < replicas {
                    server_host
                } else {
                    HostId(n.0 - replicas)
                }
            };
            delay_net.one_way(host(a), host(b)).max(1)
        });
        let mut sim = Simulation::new(servers, delay);
        if config.loss > 0.0 {
            let mut rng = seeded_rng(config.seed ^ 0x4C4F_5353_u64);
            let loss = config.loss;
            sim.set_loss(move |_, _, _, msg: &RtMsg| {
                matches!(msg, RtMsg::Forward { .. }) && rng.gen_bool(loss)
            });
        }
        sim.inject_at(
            config.rekey_period,
            SERVER,
            SERVER,
            RtMsg::IntervalTick { gen: 0 },
        );
        if replicas > 1 {
            // Prime the replication machinery: the primary's stream tick,
            // and each follower's liveness check — staggered by replica
            // index so elections never fire in lockstep.
            let knobs = Knobs::of_config(&config);
            sim.inject_at(
                knobs.repl_period(),
                SERVER,
                SERVER,
                RtMsg::ReplTick { gen: 0 },
            );
            for replica in 1..replicas {
                let node = NodeId(replica);
                sim.inject_at(
                    config.rekey_period + replica as u64 * config.retry_base,
                    node,
                    node,
                    RtMsg::ReplCheck { gen: 0 },
                );
            }
        }
        GroupRuntime {
            sim,
            shared,
            loss: config.loss,
            joins: 0,
            server_host,
            faults: None,
        }
    }

    /// Wires a chaos [`FaultPlan`] into the runtime: partitions cut every
    /// message across cells, i.i.d./burst loss thins `Forward` copies (on
    /// top of the legacy `config.loss` draw, whose stream is unchanged),
    /// jitter delays and reorders network sends, and each outage window
    /// silences its node and ends with a `Restart` event at the window's
    /// close. Call before [`GroupRuntime::run_trace`]; the injector is
    /// seeded from `config.seed`, so a fixed seed and plan reproduce the
    /// run bit for bit.
    pub fn with_faults(mut self, plan: FaultPlan) -> GroupRuntime<NET> {
        let inj = Rc::new(RefCell::new(
            plan.injector(self.shared.knobs().seed ^ CHAOS_SEED),
        ));
        let loss = self.loss;
        let mut rng = seeded_rng(self.shared.knobs().seed ^ 0x4C4F_5353_u64);
        let drop_inj = Rc::clone(&inj);
        self.sim.set_loss(move |now, from, to, msg: &RtMsg| {
            let mut inj = drop_inj.borrow_mut();
            if inj.cut(now, from, to) {
                return true;
            }
            if !matches!(msg, RtMsg::Forward { .. }) {
                return false;
            }
            // `|` (not `||`): both streams must advance on every copy for
            // the draws to stay aligned across runs.
            (loss > 0.0 && rng.gen_bool(loss)) | inj.lose(from)
        });
        if plan.jitter_max() > 0 {
            let jitter_inj = Rc::clone(&inj);
            self.sim.set_jitter(move |_, from, to, _msg: &RtMsg| {
                jitter_inj.borrow_mut().extra_delay(from, to)
            });
        }
        let down_inj = Rc::clone(&inj);
        self.sim
            .set_downtime(move |now, node| down_inj.borrow_mut().is_down(now, node));
        for outage in plan.outages() {
            self.sim
                .inject_at(outage.until, outage.node, outage.node, RtMsg::Restart);
        }
        self.faults = Some(inj);
        self
    }

    /// Plays a churn trace: advances the clock to each event's time and
    /// applies it. Events are processed in time order (stable for ties).
    /// Returns the handles assigned to the trace's joins.
    ///
    /// # Panics
    ///
    /// Panics if an event refers to a handle that has not joined, lies in
    /// the past, or the substrate runs out of hosts.
    pub fn run_trace(&mut self, events: &[ChurnEvent]) -> Vec<usize> {
        let mut ordered: Vec<&ChurnEvent> = events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        let mut handles = Vec::new();
        for event in ordered {
            self.sim.run_until(event.at);
            match event.op {
                ChurnOp::Join => {
                    assert!(
                        self.joins < self.server_host.0,
                        "substrate has no free host for another join"
                    );
                    let node = self
                        .sim
                        .spawn(RtActor(ActorKind::Member(Box::new(RtMember::new(
                            Rc::clone(&self.shared),
                        )))));
                    handles.push(self.joins);
                    self.joins += 1;
                    debug_assert_eq!(node.0, self.joins - 1 + self.replicas());
                    self.sim.inject_at(event.at, node, node, RtMsg::JoinRequest);
                }
                ChurnOp::Leave(member) => {
                    let node = self.member_node(member);
                    self.sim
                        .inject_at(event.at, node, node, RtMsg::LeaveRequest);
                }
                ChurnOp::Crash(member) => {
                    let node = self.member_node(member);
                    self.sim.kill(node);
                }
            }
        }
        handles
    }

    /// Runs the clock to `until`, then shuts timers down and drains the
    /// event queue — in-flight repairs, recoveries, and detections all
    /// complete. After the drain the server runs *flush rounds*: each
    /// folds any pending membership work into a final interval and pushes
    /// every member its latest related set, so the last interval is
    /// discoverable even when every multicast copy of it was lost; rounds
    /// repeat until no membership work or leave ack is outstanding.
    /// Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the flush rounds fail to converge (e.g. a fault window
    /// extends past `until`, leaving the server unreachable forever).
    pub fn finish(&mut self, until: SimTime) -> SimTime {
        self.sim.run_until(until);
        self.shared.shutdown.set(true);
        self.sim.run_until_idle();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds <= 64, "shutdown flush did not converge");
            let now = self.sim.now();
            let primary = NodeId(self.acting_primary());
            self.sim.inject_at(now, primary, primary, RtMsg::Flush);
            self.sim.run_until_idle();
            let server = self.server_ref();
            let (joins, leaves) = server.server.pending();
            if joins == 0 && leaves == 0 && server.pending_leave_acks.is_empty() {
                break;
            }
        }
        self.sim.now()
    }

    /// Advances the simulated clock to `until` without shutting down
    /// (finer-grained than [`GroupRuntime::run_trace`] /
    /// [`GroupRuntime::finish`] for callers that steer by state, not
    /// time).
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Schedules member `handle`'s voluntary `LeaveRequest` at `at`
    /// (clamped to the present).
    ///
    /// # Panics
    ///
    /// Panics on a handle that never joined.
    pub fn leave_at(&mut self, at: SimTime, handle: usize) {
        let node = self.member_node(handle);
        let at = at.max(self.sim.now());
        self.sim.inject_at(at, node, node, RtMsg::LeaveRequest);
    }

    fn member_node(&self, handle: usize) -> NodeId {
        assert!(handle < self.joins, "member handle {handle} never joined");
        NodeId(handle + self.replicas())
    }

    fn replicas(&self) -> usize {
        self.shared.knobs().replicas
    }

    fn replica_ref(&self, replica: usize) -> &RtServer<NET, Rc<Shared>> {
        match &self.sim.nodes()[replica].0 {
            ActorKind::Server(s) => s.as_ref(),
            ActorKind::Member(_) => unreachable!("replica nodes precede member nodes"),
        }
    }

    /// The replica currently acting as primary: the active primary with
    /// the highest epoch (a just-stepped-down ex-primary is inactive, so
    /// split-brain windows resolve to the winner). Falls back to replica
    /// 0 when no replica is primary (mid-election).
    fn acting_primary(&self) -> usize {
        let mut best: Option<(u64, usize)> = None;
        for replica in 0..self.replicas() {
            let server = self.replica_ref(replica);
            if server.repl.role == ReplRole::Primary
                && server.repl.active
                && best.is_none_or(|(epoch, _)| server.epoch > epoch)
            {
                best = Some((server.epoch, replica));
            }
        }
        best.map_or(0, |(_, replica)| replica)
    }

    fn server_ref(&self) -> &RtServer<NET, Rc<Shared>> {
        self.replica_ref(self.acting_primary())
    }

    fn member_ref(&self, handle: usize) -> &RtMember<Rc<Shared>> {
        match &self.sim.nodes()[self.member_node(handle).0].0 {
            ActorKind::Member(m) => m,
            ActorKind::Server(_) => unreachable!("member nodes start at 1"),
        }
    }

    /// The server-side facade state machine (and through it the oracle
    /// [`Group`] and the key tree).
    pub fn server(&self) -> &GroupServer {
        &self.server_ref().server
    }

    /// The oracle membership view.
    pub fn group(&self) -> &Group {
        self.server().group()
    }

    /// The server's crash journal.
    pub fn journal(&self) -> &journal::Journal {
        &self.server_ref().journal
    }

    /// The server's epoch (0 until the first restart).
    pub fn server_epoch(&self) -> u64 {
        self.server_ref().epoch
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Members spawned so far (handles are `0..member_count()`).
    pub fn member_count(&self) -> usize {
        self.joins
    }

    /// The key agent of join-handle `member`, once welcomed.
    pub fn agent(&self, member: usize) -> Option<&UserAgent> {
        self.member_ref(member).agent.as_ref()
    }

    /// The local neighbor table of join-handle `member`, while active.
    pub fn member_table(&self, member: usize) -> Option<&NeighborTable> {
        self.member_ref(member).table.as_ref()
    }

    /// The member record of join-handle `member`, once admitted.
    pub fn member_record(&self, member: usize) -> Option<&Member> {
        self.member_ref(member).member.as_ref()
    }

    /// Per-member counters.
    pub fn member_stats(&self, member: usize) -> MemberStats {
        self.member_ref(member).stats
    }

    /// `false` once the member's node has been crashed.
    pub fn is_member_alive(&self, member: usize) -> bool {
        self.sim.is_alive(self.member_node(member))
    }

    /// Server-side counters (the acting primary's; `snapshot()` reports
    /// the whole replica set's sum).
    pub fn server_stats(&self) -> ServerStats {
        self.server_ref().stats
    }

    /// Server-side counters summed over every replica. Followers mutate
    /// no member-facing counters, so with one replica (or none ever
    /// promoted) this equals the primary's stats; after a failover it
    /// stitches the old and new primaries' tallies into one session view.
    fn summed_server_stats(&self) -> ServerStats {
        let mut sum = ServerStats::default();
        for replica in 0..self.replicas() {
            let s = self.replica_ref(replica).stats;
            sum.intervals += s.intervals;
            sum.joins += s.joins;
            sum.departures += s.departures;
            sum.failures_detected += s.failures_detected;
            sum.forward_copies += s.forward_copies;
            sum.nacks += s.nacks;
            sum.recovery_encryptions += s.recovery_encryptions;
            sum.welcomes += s.welcomes;
            sum.resyncs += s.resyncs;
            sum.restarts += s.restarts;
            sum.checkpoints += s.checkpoints;
            sum.leave_acks += s.leave_acks;
            sum.elections += s.elections;
            sum.promotions += s.promotions;
            sum.lost_mutations += s.lost_mutations;
            sum.repl_lag_peak = sum.repl_lag_peak.max(s.repl_lag_peak);
        }
        sum
    }

    /// Checks that the *members' local tables* (not the oracle's) are
    /// K-consistent for the oracle membership (Definition 3).
    ///
    /// # Panics
    ///
    /// Panics if an oracle member never received its overlay state (its
    /// node has no table) — that indicates a protocol bug, not a
    /// consistency violation.
    pub fn check_consistency(&self) -> Result<(), ConsistencyViolation> {
        let group = self.group();
        let members: Vec<Member> = group.members().to_vec();
        let tables: Vec<NeighborTable> = members
            .iter()
            .map(|m| {
                let node = NodeId(m.host.0 + self.replicas());
                match &self.sim.nodes()[node.0].0 {
                    ActorKind::Member(member) => {
                        member.table.clone().expect("admitted member holds a table")
                    }
                    ActorKind::Server(_) => unreachable!("member hosts map to member nodes"),
                }
            })
            .collect();
        check_consistency(group.spec(), &members, &tables, group.k())
    }

    /// The metrics registry shared by the server, members, and key tree.
    /// Use it to attach extra series before a run or to read raw
    /// histograms; [`GroupRuntime::snapshot`] is the aggregated view.
    pub fn registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// Aggregates the session's counters, histograms, and spans.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let server = self.summed_server_stats();
        let metrics = &self.shared.metrics;
        let registry = metrics.registry.snapshot();
        let counter = |name: &str| registry.counters.get(name).copied().unwrap_or(0);
        let fault_stats = self
            .faults
            .as_ref()
            .map(|inj| inj.borrow().stats())
            .unwrap_or_default();
        let mut snapshot = MetricsSnapshot {
            intervals: server.intervals,
            members: self.group().len(),
            joins: server.joins,
            departures: server.departures,
            failures_detected: server.failures_detected,
            forward_copies: server.forward_copies,
            copies_lost: self.sim.dropped(),
            dead_letters: self.sim.dead_letters(),
            suppressed: self.sim.suppressed(),
            nacks: server.nacks,
            recovery_encryptions: server.recovery_encryptions,
            pings: 0,
            evictions: 0,
            retransmissions: 0,
            max_retry_attempts: 0,
            resyncs: server.resyncs,
            rejoins: 0,
            rehabilitations: 0,
            restarts: server.restarts,
            checkpoints: server.checkpoints,
            delivered: self.sim.delivered(),
            welcomes: server.welcomes,
            leave_acks: server.leave_acks,
            tree_encryptions: counter("tree_encryptions"),
            tombstone_hits: counter("tree_tombstone_hits"),
            partition_cuts: fault_stats.partition_cuts,
            fault_loss_drops: fault_stats.loss_drops,
            elections: server.elections,
            promotions: server.promotions,
            lost_mutations: server.lost_mutations,
            repl_lag_peak: server.repl_lag_peak,
            peak_queue_depth: self.sim.peak_pending(),
            apply_delay_us: metrics.apply_delay_us.snapshot(),
            batch_size: registry
                .histograms
                .get("tree_batch_size")
                .cloned()
                .unwrap_or_default(),
            split_payload: metrics.split_payload.snapshot(),
            forward_fanout: metrics.forward_fanout.snapshot(),
            recovery_size: metrics.recovery_size.snapshot(),
            spans: registry.spans,
            spans_dropped: registry.spans_dropped,
        };
        for handle in 0..self.joins {
            let stats = self.member_stats(handle);
            snapshot.forward_copies += stats.copies_forwarded;
            snapshot.pings += stats.pings_sent;
            snapshot.evictions += stats.evictions;
            snapshot.retransmissions += stats.retransmissions;
            snapshot.max_retry_attempts = snapshot.max_retry_attempts.max(stats.max_retry_attempts);
            snapshot.rejoins += stats.rejoins;
            snapshot.rehabilitations += stats.rehabilitations;
        }
        snapshot
    }
}

impl<NET: Network + 'static> Driver for GroupRuntime<NET> {
    fn server_fsm(&self) -> &GroupServer {
        self.server()
    }

    fn member_count(&self) -> usize {
        self.joins
    }

    fn agent_of(&self, handle: usize) -> Option<&UserAgent> {
        self.agent(handle)
    }

    fn leave(&mut self, handle: usize) {
        let now = self.sim.now();
        self.leave_at(now, handle);
    }

    fn run_to_interval(&mut self, target: u64) -> bool {
        let period = self.shared.knobs().rekey_period.max(4);
        for _ in 0..100_000 {
            let reached = self.server().interval() >= target
                && (0..self.joins).all(|handle| {
                    let member = self.member_ref(handle);
                    member.departed
                        || !self.is_member_alive(handle)
                        || member
                            .agent
                            .as_ref()
                            .is_some_and(|a| a.interval() >= target)
                });
            if reached {
                return true;
            }
            let until = self.sim.now() + period / 4;
            self.sim.run_until(until);
        }
        false
    }

    fn finish_run(&mut self) -> bool {
        let now = self.sim.now();
        self.finish(now);
        true
    }

    fn verify_consistency(&self) -> Result<(), ConsistencyViolation> {
        self.check_consistency()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::{MatrixNetwork, PlanetLabParams};
    use rekey_sim::GilbertElliott;

    const SEC: SimTime = 1_000_000;

    fn small_net(seed: u64) -> MatrixNetwork {
        let mut rng = seeded_rng(seed);
        MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng)
    }

    fn config() -> GroupConfig {
        GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(7)
    }

    /// Every surviving member's agent is at the server's interval with the
    /// server's group key, and can open data sealed under it.
    fn assert_members_current(rt: &GroupRuntime<MatrixNetwork>, survivors: &[usize]) {
        let server_interval = rt.server().interval();
        let group_key = rt
            .server()
            .tree()
            .group_key()
            .expect("group is non-empty")
            .clone();
        let mut rng = seeded_rng(0xDA7A);
        for &m in survivors {
            let agent = rt.agent(m).expect("survivor was welcomed");
            assert_eq!(
                agent.interval(),
                server_interval,
                "member {m} lags the server"
            );
            assert_eq!(
                agent.group_key(),
                Some(&group_key),
                "member {m} holds a stale group key"
            );
            let sealed = agent.seal_data(b"pay-per-view frame", &mut rng).unwrap();
            assert_eq!(agent.open_data(&sealed).unwrap(), b"pay-per-view frame");
        }
        rt.check_consistency()
            .expect("local tables are K-consistent");
    }

    #[test]
    fn joins_then_steady_state_keeps_every_member_current() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(1));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        assert_eq!(handles, (0..10).collect::<Vec<_>>());
        rt.finish(61 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.joins, 10);
        assert!(report.intervals >= 6, "got {} intervals", report.intervals);
        assert_eq!(rt.group().len(), 10);
        assert_members_current(&rt, &handles);
        // Steady state is quiet: no NACKs, no evictions, no resyncs, no
        // retransmissions on a lossless run.
        assert_eq!(report.nacks, 0);
        assert_eq!(report.evictions, 0);
        assert_eq!(report.resyncs, 0);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.restarts, 0);
        assert!(report.pings > 0, "heartbeats ran");
        assert!(
            report.checkpoints >= report.intervals,
            "every interval checkpoints"
        );
    }

    #[test]
    fn voluntary_leaves_repair_every_surviving_table() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(2));
        let mut trace: Vec<ChurnEvent> = (0..12)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::leave(25 * SEC, 3));
        trace.push(ChurnEvent::leave(32 * SEC, 7));
        rt.run_trace(&trace);
        rt.finish(75 * SEC);
        assert_eq!(rt.group().len(), 10);
        let report = rt.snapshot();
        assert_eq!(report.departures, 2);
        assert_eq!(report.failures_detected, 0);
        let survivors: Vec<usize> = (0..12).filter(|m| *m != 3 && *m != 7).collect();
        assert_members_current(&rt, &survivors);
        // The departed members retired their local protocol state.
        assert!(rt.agent(3).is_none());
        assert!(rt.member_table(7).is_none());
    }

    #[test]
    fn forward_loss_is_recovered_by_nack_unicast() {
        let runtime_config = RuntimeConfig::builder().loss(0.3).seed(0xBEEF).build();
        let mut rt = GroupRuntime::new(config(), runtime_config, small_net(3));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        // Churn in the middle so rekey messages are non-trivial throughout.
        let mut trace = trace;
        trace.push(ChurnEvent::leave(35 * SEC, 2));
        trace.push(ChurnEvent::join(45 * SEC));
        rt.run_trace(&trace);
        rt.finish(101 * SEC);
        let report = rt.snapshot();
        assert!(report.copies_lost > 0, "loss model never fired");
        assert!(report.nacks > 0, "lost copies were never NACKed");
        assert!(
            report.max_retry_attempts <= RuntimeConfig::default().retry_cap(),
            "retry counter escaped its cap"
        );
        let survivors: Vec<usize> = (0..11).filter(|m| *m != 2).collect();
        assert_members_current(&rt, &survivors);
    }

    #[test]
    fn crashes_are_detected_evicted_and_repaired() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(4));
        let mut trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::crash(31 * SEC, 4));
        trace.push(ChurnEvent::crash(31 * SEC, 8));
        rt.run_trace(&trace);
        // Detection needs up to two heartbeat periods plus repair traffic.
        rt.finish(121 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.failures_detected, 2);
        assert_eq!(report.departures, 2);
        assert!(report.evictions > 0);
        assert!(report.dead_letters > 0, "crashed nodes absorbed traffic");
        assert_eq!(rt.group().len(), 8);
        assert!(!rt.is_member_alive(4));
        let survivors: Vec<usize> = (0..10).filter(|m| *m != 4 && *m != 8).collect();
        assert_members_current(&rt, &survivors);
    }

    /// The server dies mid-run (its rekey tick is swallowed by the outage
    /// window) and respawns from its crash journal: the epoch bumps, every
    /// member resyncs, and the group ends the run current and consistent.
    #[test]
    fn server_restart_resumes_from_journal() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(7))
            .with_faults(FaultPlan::new().outage(SERVER, 24 * SEC, 38 * SEC));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        rt.finish(90 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.restarts, 1);
        assert_eq!(rt.server_epoch(), 1);
        assert!(report.suppressed > 0, "the outage swallowed deliveries");
        assert!(
            report.resyncs >= 10,
            "every member resyncs across the epoch bump (got {})",
            report.resyncs
        );
        assert!(rt.journal().recorded() > 0);
        assert_eq!(rt.group().len(), 10);
        assert_members_current(&rt, &handles);
    }

    /// Two members are cut off by a partition long enough to be wrongfully
    /// departed; after the heal the server disowns them (`NotMember`) and
    /// they rejoin from scratch, converging with everyone else.
    #[test]
    fn partition_wrongful_departs_heal_by_rejoin() {
        let mut rt =
            GroupRuntime::new(config(), RuntimeConfig::default(), small_net(8)).with_faults(
                FaultPlan::new().partition(vec![vec![NodeId(1), NodeId(2)]], 20 * SEC, 56 * SEC),
            );
        let trace: Vec<ChurnEvent> = (0..8)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        rt.finish(150 * SEC);
        let report = rt.snapshot();
        assert_eq!(
            report.failures_detected, 2,
            "both isolated members are wrongfully departed"
        );
        assert_eq!(report.rejoins, 2, "both rejoin after the heal");
        assert!(report.evictions >= 2);
        assert!(report.copies_lost > 0, "the partition cut traffic");
        assert_eq!(rt.group().len(), 8);
        assert_members_current(&rt, &handles);
    }

    /// A joiner behind a partition retransmits its join with exponential
    /// backoff until the network heals, and its attempt counter never
    /// escapes the configured cap.
    #[test]
    fn join_behind_partition_retries_until_admitted() {
        let cfg = RuntimeConfig::default();
        let mut rt = GroupRuntime::new(config(), cfg, small_net(9))
            .with_faults(FaultPlan::new().partition(vec![vec![NodeId(1)]], 500_000, 20 * SEC));
        let mut trace = vec![ChurnEvent::join(SEC)];
        trace.extend((0..4).map(|i| ChurnEvent::join(22 * SEC + i * 200_000)));
        let handles = rt.run_trace(&trace);
        rt.finish(70 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.joins, 5, "the blocked join eventually lands");
        assert!(
            report.retransmissions >= 4,
            "the blocked joiner kept retrying (got {})",
            report.retransmissions
        );
        assert!(report.max_retry_attempts <= cfg.retry_cap());
        let stats = rt.member_stats(0);
        assert!(stats.retransmissions >= 4);
        assert_eq!(rt.group().len(), 5);
        assert_members_current(&rt, &handles);
    }

    #[test]
    fn identical_seeds_reproduce_the_run_exactly() {
        let run = |loss_seed: u64| {
            let runtime_config = RuntimeConfig::builder().loss(0.2).seed(loss_seed).build();
            let plan = FaultPlan::new()
                .jitter(30_000)
                .burst_loss(GilbertElliott::moderate());
            let mut rt =
                GroupRuntime::new(config(), runtime_config, small_net(5)).with_faults(plan);
            let trace: Vec<ChurnEvent> = (0..9)
                .map(|i| ChurnEvent::join(SEC + i * 300_000))
                .chain([
                    ChurnEvent::leave(33 * SEC, 1),
                    ChurnEvent::crash(37 * SEC, 5),
                ])
                .collect();
            rt.run_trace(&trace);
            rt.finish(90 * SEC);
            (rt.snapshot(), rt.server().tree().group_key().cloned())
        };
        assert_eq!(run(11), run(11), "same seed must reproduce exactly");
        let (report_a, _) = run(11);
        let (report_b, _) = run(12);
        assert!(report_a.copies_lost > 0 && report_b.copies_lost > 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_out_of_range_loss() {
        let _ = RuntimeConfig::builder().loss(1.5).build();
    }

    #[test]
    #[should_panic(expected = "rekey period must be positive")]
    fn rejects_zero_rekey_period() {
        let _ = RuntimeConfig::builder().rekey_period(0).build();
    }

    #[test]
    #[should_panic(expected = "nack grace must be positive")]
    fn rejects_zero_nack_grace() {
        let _ = RuntimeConfig::builder().nack_grace(0).build();
    }

    /// Two identically seeded runs yield byte-identical snapshot JSON —
    /// the whole observability surface (counters, histogram summaries,
    /// span tail) is deterministic, not just the counter totals.
    #[test]
    fn identical_seeds_reproduce_snapshot_json() {
        let run = || {
            let runtime_config = RuntimeConfig::builder().loss(0.15).seed(0x0B5E).build();
            let mut rt = GroupRuntime::new(config(), runtime_config, small_net(10));
            let trace: Vec<ChurnEvent> = (0..8)
                .map(|i| ChurnEvent::join(SEC + i * 250_000))
                .chain([ChurnEvent::leave(21 * SEC, 2)])
                .collect();
            rt.run_trace(&trace);
            rt.finish(45 * SEC);
            rt.snapshot().to_json()
        };
        let json = run();
        assert_eq!(json, run(), "snapshot JSON must be byte-identical");
        // The document carries real histogram and span data, not zeros.
        let snapshot_has = |key: &str| rekey_metrics::json::has_key(&json, key);
        assert!(snapshot_has("apply_delay_us"));
        assert!(snapshot_has("tree_encryptions"));
        assert!(
            json.contains("\"name\": \"interval\""),
            "interval spans present"
        );
        assert!(json.contains("\"name\": \"apply\""), "apply spans present");
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    const SEC: SimTime = 1_000_000;

    #[test]
    fn mid_interval_joiner_outage_resync() {
        let mut rng = seeded_rng(0xBEEF);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let group = GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(3);
        // Member handle 4 joins at t=4.2s (mid first interval, ends at 10s)
        // and its node goes down for [5s, 7s): on Restart it arms a Resync
        // that fires before its Welcome exists in the tree.
        let mut rt = GroupRuntime::new(group, RuntimeConfig::default(), net)
            .with_faults(FaultPlan::new().outage(NodeId(5), 5 * SEC, 7 * SEC));
        let trace: Vec<ChurnEvent> = (0..5)
            .map(|i| ChurnEvent::join(SEC + i * 800_000))
            .collect();
        rt.run_trace(&trace);
        rt.finish(40 * SEC);
    }
}
