//! The event-driven group runtime: one long-lived simulation in which the
//! key server and every member are [`rekey_sim::Node`]s on a single clock.
//!
//! The synchronous [`GroupServer`]/[`UserAgent`] facade executes the
//! protocol one interval at a time with the caller as the clock; this
//! module drives the *same* state machines from a discrete-event schedule,
//! which is what the paper's own evaluation does (§4): "we simulate the
//! sending and the reception of a message as events". One implementation,
//! two drivers — the global-knowledge [`Group`] inside the server stays
//! the oracle that equivalence tests compare against.
//!
//! # Message taxonomy
//!
//! * **Timers** (`send_after`, immune to loss and jitter): `IntervalTick`
//!   fires the periodic rekey at the server (§1: "periodic batch
//!   rekeying"), `HeartbeatTick` drives each member's neighbor pings
//!   (§3.2), `IntervalCheck` is each member's NACK deadline per interval,
//!   `RetryTick` drives the bounded-retry machinery. Every timer carries a
//!   generation number so a restart can cancel a stale chain.
//! * **Membership control** (unicast, retransmitted until acknowledged):
//!   `JoinRequest` / `JoinAccepted` admit a member into the overlay
//!   mid-interval (its keys arrive in `Welcome` at the interval end);
//!   `LeaveRequest` / `LeaveAck` retire one — the ack is only sent after
//!   the departure reaches the crash journal, so an acknowledged leave can
//!   never roll back; `NewMember` / `MemberLeft` carry the server-assisted
//!   table updates of §3.2 under a per-mutation sequence number, so a
//!   member can detect (and resync across) any update it missed.
//! * **Rekey transport** (`Forward`, subject to per-copy loss): the
//!   `FORWARD` routine of Fig. 2 executed hop by hop, each copy carrying
//!   the split index plus the served prefix (Fig. 5). `Nack` / `Recover`
//!   implement the companion work's limited unicast recovery \[31\]: a
//!   member that misses an interval fetches exactly its related set —
//!   Lemma 3 makes the need locally checkable — from the server. NACKs
//!   retry with exponential backoff up to a cap, then escalate to a full
//!   `ResyncRequest` / `Resync` snapshot.
//! * **Failure detection** (`Ping` / `Pong`, `ServerPing` / `ServerPong`):
//!   members ping every stored neighbor each heartbeat period; an
//!   unanswered ping evicts the record ([`NeighborTable::evict_where`]),
//!   notifies the server (`FailureNotice`, re-sent each beat until the
//!   repair broadcast lands), and triggers the same repair as a leave.
//!   Evicted records stay on probation: a suspect that answers a later
//!   probe is reinstated, so a transient partition does not permanently
//!   shrink tables. Each beat also pings the *server*, which either
//!   vouches for the member (`ServerPong`, carrying the epoch, the
//!   mutation sequence number, and the current interval — the member's
//!   evidence for NACKs and resyncs) or disowns it (`NotMember`, after
//!   which the member rejoins from scratch).
//!
//! # Failure model and self-healing
//!
//! Crashed nodes are [`rekey_sim::Simulation::kill`]ed: they absorb all
//! traffic silently. Only `Forward` copies are subject to the *loss
//! model* (the bulk rekey payload on a UDP-like path); control traffic is
//! reliable on a healthy network, matching the paper's assumption that
//! notifications and unicast recovery ride TCP. On top of that,
//! [`GroupRuntime::with_faults`] wires a [`FaultPlan`] into the run:
//! partitions cut *all* traffic across cells, outages silence single
//! nodes (including the server) for a window, jitter reorders messages,
//! and i.i.d./burst loss thins the `Forward` stream. The protocol heals
//! from each of these without outside help:
//!
//! * a member behind a partition keeps retransmitting its join or leave
//!   with exponential backoff until the network heals;
//! * a member wrongfully evicted during a partition learns its fate from
//!   the server's `NotMember` and rejoins from scratch;
//! * a member that missed membership updates (sequence gap) or rekey
//!   intervals beyond the NACK retry cap resyncs from a server snapshot;
//! * the server checkpoints itself into a [`journal::Journal`] after
//!   every interval's multicast; a restart (modeled by a `Restart` event
//!   at the outage window's end) restores the latest checkpoint, bumps
//!   the *epoch*, and re-announces itself with an immediate interval, and
//!   every member that observes the new epoch resyncs.
//!
//! Every surviving member holds the current group key once
//! [`GroupRuntime::finish`] drains: the final flush rounds push each
//! member its latest related set, members NACK any gap immediately, and
//! the server answers from its per-interval history.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::Arc;

use rand::Rng;
use rekey_crypto::Encryption;
use rekey_id::UserId;
use rekey_keytree::TreeMetrics;
use rekey_metrics::{json, Histogram, HistogramSnapshot, Registry, SpanRecord};
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{
    node_rng, seeded_rng, Ctx, FaultInjector, FaultPlan, Node, NodeId, SimTime, Simulation,
};
use rekey_table::{check_consistency, ConsistencyViolation, Member, NeighborRecord, NeighborTable};
use rekey_tmesh::forward::{server_next_hops, user_next_hops_with};

use crate::transport::{PrefixBuf, SplitIndex, SplitIndexMaintainer};
use crate::{Group, GroupConfig, GroupServer, UserAgent, WelcomePacket};

pub mod journal;
pub mod shard;

pub use shard::ShardedGroupRuntime;

/// The key server's node id: always node 0.
const SERVER: NodeId = NodeId(0);

/// Domain separator for the chaos injector's seed, so fault randomness is
/// decoupled from the legacy loss stream and the heartbeat stagger.
const CHAOS_SEED: u64 = 0x43_48_41_4F_53; // "CHAOS"

fn node_of_host(h: HostId) -> NodeId {
    NodeId(h.0 + 1)
}

fn host_of_member_node(n: NodeId) -> HostId {
    debug_assert!(n != SERVER, "the server has no member host");
    HostId(n.0 - 1)
}

/// Timing, loss, retry, and seeding knobs of a [`GroupRuntime`].
///
/// Constructed through [`RuntimeConfig::builder`] (mirroring the
/// [`GroupConfig`] builder), which validates every knob in
/// [`RuntimeConfigBuilder::build`] — so a `RuntimeConfig` in hand is
/// valid by construction and [`GroupRuntime::new`] never has to reject
/// one. [`RuntimeConfig::default`] is the validated default set.
///
/// ```
/// use rekey_proto::RuntimeConfig;
///
/// let config = RuntimeConfig::builder()
///     .rekey_period(5_000_000)
///     .loss(0.02)
///     .seed(42)
///     .build();
/// assert_eq!(config.rekey_period(), 5_000_000);
/// assert_eq!(config.retry_cap(), RuntimeConfig::default().retry_cap());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    rekey_period: SimTime,
    heartbeat_period: SimTime,
    nack_grace: SimTime,
    loss: f64,
    retry_base: SimTime,
    retry_cap: u32,
    seed: u64,
}

impl RuntimeConfig {
    /// Starts a builder from the default knobs.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder(RuntimeConfig::default())
    }

    /// Rekey interval length (µs): the server batch-rekeys on this period.
    pub fn rekey_period(&self) -> SimTime {
        self.rekey_period
    }

    /// Heartbeat period (µs): how often each member pings its stored
    /// neighbors. A ping unanswered by the next beat evicts the neighbor.
    pub fn heartbeat_period(&self) -> SimTime {
        self.heartbeat_period
    }

    /// Grace (µs) after an interval boundary before a member NACKs a
    /// missing rekey message.
    pub fn nack_grace(&self) -> SimTime {
        self.nack_grace
    }

    /// Independent per-copy loss probability applied to `Forward` copies.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// First retransmit timeout (µs) of the bounded-retry machinery; each
    /// further attempt doubles it.
    pub fn retry_base(&self) -> SimTime {
        self.retry_base
    }

    /// Retry attempt cap: the backoff exponent saturates here, and a NACK
    /// retried this many times escalates to a full resync.
    pub fn retry_cap(&self) -> u32 {
        self.retry_cap
    }

    /// Seed for the runtime's randomness (loss draws, heartbeat stagger,
    /// fault injection). Independent of the [`GroupConfig`]
    /// key-generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            rekey_period: 10_000_000,
            heartbeat_period: 15_000_000,
            nack_grace: 2_000_000,
            loss: 0.0,
            retry_base: 1_000_000,
            retry_cap: 5,
            seed: 0,
        }
    }
}

/// Fluent builder of a [`RuntimeConfig`]; every knob starts at its
/// default. Validation happens once, in [`RuntimeConfigBuilder::build`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfigBuilder(RuntimeConfig);

impl RuntimeConfigBuilder {
    /// Rekey interval length (µs). Must be positive.
    pub fn rekey_period(mut self, period: SimTime) -> RuntimeConfigBuilder {
        self.0.rekey_period = period;
        self
    }

    /// Heartbeat period (µs). Must be positive.
    pub fn heartbeat_period(mut self, period: SimTime) -> RuntimeConfigBuilder {
        self.0.heartbeat_period = period;
        self
    }

    /// NACK grace (µs). Must be positive and should exceed the worst
    /// overlay delivery delay (debug builds warn at runtime construction
    /// when it does not even cover a server round trip).
    pub fn nack_grace(mut self, grace: SimTime) -> RuntimeConfigBuilder {
        self.0.nack_grace = grace;
        self
    }

    /// Per-copy `Forward` loss probability. Must be in `[0, 1)`.
    pub fn loss(mut self, loss: f64) -> RuntimeConfigBuilder {
        self.0.loss = loss;
        self
    }

    /// First retransmit timeout (µs). Must be positive.
    pub fn retry_base(mut self, base: SimTime) -> RuntimeConfigBuilder {
        self.0.retry_base = base;
        self
    }

    /// Retry attempt cap.
    pub fn retry_cap(mut self, cap: u32) -> RuntimeConfigBuilder {
        self.0.retry_cap = cap;
        self
    }

    /// Runtime randomness seed.
    pub fn seed(mut self, seed: u64) -> RuntimeConfigBuilder {
        self.0.seed = seed;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1)` or any of the periods
    /// (`rekey_period`, `heartbeat_period`, `nack_grace`, `retry_base`)
    /// is zero — a zero rekey interval or NACK grace would spin the event
    /// loop at a single instant.
    pub fn build(self) -> RuntimeConfig {
        let config = self.0;
        assert!(
            (0.0..1.0).contains(&config.loss),
            "loss probability must be in [0, 1)"
        );
        assert!(config.rekey_period > 0, "rekey period must be positive");
        assert!(config.nack_grace > 0, "nack grace must be positive");
        assert!(
            config.heartbeat_period > 0,
            "heartbeat period must be positive"
        );
        assert!(config.retry_base > 0, "retry base must be positive");
        config
    }
}

/// One scheduled churn action for [`GroupRuntime::run_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new host joins; it gets the next member handle (join order).
    Join,
    /// Member (by join handle) leaves voluntarily.
    Leave(usize),
    /// Member (by join handle) crashes silently: its node is killed and
    /// only heartbeat detection removes it from the group.
    Crash(usize),
}

/// A churn action with its simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Absolute simulated time of the action.
    pub at: SimTime,
    /// The action.
    pub op: ChurnOp,
}

impl ChurnEvent {
    /// A join at `at`.
    pub fn join(at: SimTime) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Join,
        }
    }

    /// A voluntary leave of join-handle `member` at `at`.
    pub fn leave(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Leave(member),
        }
    }

    /// A silent crash of join-handle `member` at `at`.
    pub fn crash(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Crash(member),
        }
    }
}

/// One interval's rekey message as multicast over the overlay: the
/// encryptions plus the split index that addresses them (Fig. 5). Shared
/// by reference between all in-flight copies — forwarding a copy costs no
/// payload clone.
pub struct IntervalMessage {
    /// The interval this message keys.
    pub interval: u64,
    /// The server epoch that produced it (bumped on every restart).
    pub epoch: u64,
    /// When the server multicast it (recovery latency accounting).
    pub sent_at: SimTime,
    /// The batch rekey encryptions.
    pub encryptions: Vec<Encryption>,
    /// Split index over the encryption IDs.
    pub index: SplitIndex,
}

impl std::fmt::Debug for IntervalMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IntervalMessage")
            .field("interval", &self.interval)
            .field("epoch", &self.epoch)
            .field("sent_at", &self.sent_at)
            .field("encryptions", &self.encryptions.len())
            .finish_non_exhaustive()
    }
}

/// Runtime protocol messages. See the module docs for the taxonomy.
pub enum RtMsg {
    /// Server timer: end the current rekey interval.
    IntervalTick {
        /// Stale-chain guard; bumped on server restart.
        gen: u64,
    },
    /// Injected by [`GroupRuntime::finish`]: process pending membership
    /// work immediately and push every member its latest related set.
    Flush,
    /// Injected at a node when its outage window ends: the process comes
    /// back up and re-arms its timers (the server additionally restores
    /// its journal and bumps its epoch).
    Restart,
    /// Injected at a joining node; forwarded to the server and
    /// retransmitted with backoff until `JoinAccepted`.
    JoinRequest,
    /// Server → joiner: admission into the overlay with a ready table.
    JoinAccepted {
        /// The new member's record.
        member: Member,
        /// The joiner's neighbor table at admission time.
        table: Box<NeighborTable>,
        /// Server epoch of the snapshot.
        epoch: u64,
        /// Mutation sequence number the snapshot reflects.
        seq: u64,
    },
    /// Server → joiner at interval end: the key material.
    Welcome {
        /// Path keys and interval.
        welcome: WelcomePacket,
        /// Server epoch issuing the keys.
        epoch: u64,
        /// When the next interval ends, anchoring the NACK check timer.
        next_interval_at: SimTime,
    },
    /// Server → members: insert a just-admitted member (mutation `seq`).
    NewMember {
        /// The new member.
        record: Member,
        /// RTT from the receiver to the new member.
        rtt: Micros,
        /// Server epoch of the mutation.
        epoch: u64,
        /// Mutation sequence number; applied strictly in order.
        seq: u64,
    },
    /// Injected at a leaving node; forwarded to the server and
    /// retransmitted with backoff until `LeaveAck`.
    LeaveRequest,
    /// Server → leaver, once the departure has reached the journal.
    LeaveAck,
    /// Server → members: departure plus repair candidates (§3.2),
    /// mutation `seq`.
    MemberLeft {
        /// Who departed.
        departed: UserId,
        /// Replacement candidates with receiver-personalized RTTs.
        replacements: Vec<(Member, Micros)>,
        /// Server epoch of the mutation.
        epoch: u64,
        /// Mutation sequence number; applied strictly in order.
        seq: u64,
    },
    /// Member → server: a neighbor stopped answering pings. Re-sent every
    /// beat until the repair broadcast arrives, so a lost notice (server
    /// outage, partition) only delays detection.
    FailureNotice {
        /// The suspect.
        failed: UserId,
    },
    /// One overlay copy of an interval's rekey message (lossy).
    Forward {
        /// `forward_level` of Fig. 2 at the receiver.
        level: usize,
        /// The `(i, j)`-subtree prefix this copy serves (split key).
        prefix: PrefixBuf,
        /// The shared interval message.
        message: Arc<IntervalMessage>,
    },
    /// Member → server: interval missing past its deadline.
    Nack {
        /// The missing interval.
        interval: u64,
    },
    /// Server → member: the member's related set for a NACKed interval.
    Recover {
        /// The recovered interval.
        interval: u64,
        /// Exactly the requester's related encryptions (Lemma 3).
        encryptions: Vec<Encryption>,
        /// When the interval was originally multicast (latency
        /// accounting).
        sent_at: SimTime,
    },
    /// Member → neighbor: heartbeat probe.
    Ping {
        /// Correlation token.
        token: u64,
    },
    /// Neighbor → member: heartbeat reply.
    Pong {
        /// Correlation token.
        token: u64,
    },
    /// Member → server: heartbeat liveness/membership probe.
    ServerPing {
        /// The prober's own id, for the server to verify.
        id: UserId,
    },
    /// Server → member: the prober is a member in good standing. Carries
    /// the member's evidence triple.
    ServerPong {
        /// Current server epoch.
        epoch: u64,
        /// Latest mutation sequence number.
        seq: u64,
        /// Latest completed interval.
        interval: u64,
    },
    /// Server → node: the probed or requested id is not (or no longer) a
    /// member under this server. The node rejoins from scratch.
    NotMember {
        /// The id the server disowns.
        id: UserId,
    },
    /// Member → server: request a full state snapshot (sequence gap,
    /// epoch change, or NACK retries exhausted).
    ResyncRequest {
        /// The requester's id, for the server to verify.
        id: UserId,
    },
    /// Server → member: a full state snapshot — record, table, and
    /// current path keys.
    Resync {
        /// The member's record.
        member: Member,
        /// The member's neighbor table as the server computes it.
        table: Box<NeighborTable>,
        /// Current path keys and interval.
        welcome: WelcomePacket,
        /// Server epoch of the snapshot.
        epoch: u64,
        /// Mutation sequence number the snapshot reflects.
        seq: u64,
        /// When the next interval ends, re-anchoring the check timer.
        next_interval_at: SimTime,
    },
    /// Member timer: ping neighbors, evict the unresponsive.
    HeartbeatTick {
        /// Stale-chain guard; bumped on member restart or rejoin.
        gen: u64,
    },
    /// Member timer: NACK intervals still missing past their deadline.
    IntervalCheck {
        /// Stale-chain guard; bumped when the timer is re-anchored.
        gen: u64,
    },
    /// Member timer: fire due retry entries.
    RetryTick {
        /// Stale-chain guard; bumped on every re-schedule.
        gen: u64,
    },
}

/// Metric handles shared by every node of one runtime, all registered in
/// one [`Registry`] (which the server's [`TreeMetrics`] also reports
/// into). Recording is O(1) per event, so the hot paths stay hot.
struct RuntimeMetrics {
    registry: Registry,
    /// µs from an interval's multicast to its local application.
    apply_delay_us: Histogram,
    /// Encryptions per `Forward` copy received (split payload sizes).
    split_payload: Histogram,
    /// Copies sent per forwarding occasion (server seeds and member
    /// forward duties alike).
    forward_fanout: Histogram,
    /// Encryptions per unicast `Recover` reply.
    recovery_size: Histogram,
}

impl RuntimeMetrics {
    fn new() -> RuntimeMetrics {
        let registry = Registry::new();
        RuntimeMetrics {
            apply_delay_us: registry.histogram("apply_delay_us"),
            split_payload: registry.histogram("split_payload"),
            forward_fanout: registry.histogram("forward_fanout"),
            recovery_size: registry.histogram("recovery_size"),
            registry,
        }
    }
}

/// Copyable timing/retry knobs shared by every node of one runtime.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Knobs {
    rekey_period: SimTime,
    heartbeat_period: SimTime,
    nack_grace: SimTime,
    retry_base: SimTime,
    retry_cap: u32,
    seed: u64,
}

impl Knobs {
    fn of_config(config: &RuntimeConfig) -> Knobs {
        Knobs {
            rekey_period: config.rekey_period,
            heartbeat_period: config.heartbeat_period,
            nack_grace: config.nack_grace,
            retry_base: config.retry_base,
            retry_cap: config.retry_cap,
            seed: config.seed,
        }
    }

    /// Exponential backoff: `retry_base << attempts`, with the exponent
    /// saturated at the retry cap.
    fn backoff(&self, attempts: u32) -> SimTime {
        self.retry_base << attempts.min(self.retry_cap)
    }
}

/// Shared state of the classic single-queue runtime.
struct Shared {
    knobs: Knobs,
    /// Set by [`GroupRuntime::finish`]: timers stop re-arming so the
    /// event queue drains with all repairs and recoveries completed;
    /// retries fire immediately instead of waiting for a tick.
    shutdown: Cell<bool>,
    metrics: RuntimeMetrics,
}

/// What a member needs from its runtime: the knobs, the shutdown flag,
/// and metric sinks. The classic runtime hands every member an
/// `Rc<Shared>` (single-threaded, one registry); the sharded runtime
/// hands out `Arc<shard::ShardCore>` handles (`Send`, per-shard local
/// sinks merged deterministically after the workers join).
pub(crate) trait SharedHandle {
    /// The timing/retry knobs.
    fn knobs(&self) -> &Knobs;
    /// `true` once the runtime began its shutdown drain.
    fn is_shutdown(&self) -> bool;
    /// Records the encryption count of one received split copy.
    fn record_split_payload(&self, v: u64);
    /// Records the copies sent in one forwarding occasion.
    fn record_forward_fanout(&self, v: u64);
    /// Records one interval application: the apply-delay histogram plus
    /// an `"apply"`/`"recovery"` span (span sinks may be a no-op).
    fn record_apply(&self, span: &'static str, sent_at: SimTime, now: SimTime, interval: u64);
    /// Records the encryption count of one unicast `Recover` reply.
    fn record_recovery_size(&self, v: u64);
    /// Records a tracing span (no-op for handles without a span sink).
    fn span(&self, name: &'static str, start: SimTime, end: SimTime, detail: u64);
}

impl SharedHandle for Rc<Shared> {
    fn knobs(&self) -> &Knobs {
        &self.knobs
    }
    fn is_shutdown(&self) -> bool {
        self.shutdown.get()
    }
    fn record_split_payload(&self, v: u64) {
        self.metrics.split_payload.record(v);
    }
    fn record_forward_fanout(&self, v: u64) {
        self.metrics.forward_fanout.record(v);
    }
    fn record_apply(&self, span: &'static str, sent_at: SimTime, now: SimTime, interval: u64) {
        self.metrics
            .apply_delay_us
            .record(now.saturating_sub(sent_at));
        self.metrics.registry.span(span, sent_at, now, interval);
    }
    fn record_recovery_size(&self, v: u64) {
        self.metrics.recovery_size.record(v);
    }
    fn span(&self, name: &'static str, start: SimTime, end: SimTime, detail: u64) {
        self.metrics.registry.span(name, start, end, detail);
    }
}

/// Server-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Joins admitted.
    pub joins: u64,
    /// Departures processed (leaves + detected failures).
    pub departures: u64,
    /// Departures that arrived as failure notices.
    pub failures_detected: u64,
    /// `Forward` copies seeded by the server.
    pub forward_copies: u64,
    /// NACKs received.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Welcome packets issued.
    pub welcomes: u64,
    /// Full state snapshots served (`Resync` replies).
    pub resyncs: u64,
    /// Server restarts (journal restores + epoch bumps).
    pub restarts: u64,
    /// Checkpoints written to the journal.
    pub checkpoints: u64,
    /// Leave acknowledgements sent (each after a covering checkpoint).
    pub leave_acks: u64,
}

struct RtServer<NET, S: SharedHandle = Rc<Shared>> {
    net: Rc<NET>,
    shared: S,
    server: GroupServer,
    /// Bumped on every restart; members resync when they observe a bump.
    epoch: u64,
    /// Membership-mutation sequence number (one per join/leave/failure).
    seq: u64,
    /// Stale-timer guard for `IntervalTick`; bumped on restart.
    tick_gen: u64,
    /// When the current interval ends (anchors member check timers).
    next_interval_at: SimTime,
    /// When the previous rekey round ran (start anchor of the next
    /// "interval" span, so span durations show round spacing).
    last_round_at: SimTime,
    /// Interval messages kept for unicast recovery.
    history: BTreeMap<u64, Arc<IntervalMessage>>,
    /// Incrementally maintains the per-interval split index from the
    /// previous interval's sorted ID sequence instead of rebuilding it.
    split_index: SplitIndexMaintainer,
    /// The crash journal: one checkpoint per completed interval.
    journal: journal::Journal,
    /// Leavers to acknowledge once the next checkpoint covers their
    /// departure (an acknowledged leave must never roll back).
    pending_leave_acks: Vec<NodeId>,
    stats: ServerStats,
}

impl<NET: Network, S: SharedHandle> RtServer<NET, S> {
    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        match msg {
            RtMsg::IntervalTick { gen } if gen == self.tick_gen => self.end_interval(ctx),
            RtMsg::Flush => self.flush(ctx),
            RtMsg::Restart => self.restart(ctx),
            RtMsg::JoinRequest => self.admit(ctx, from),
            RtMsg::LeaveRequest => {
                let host = host_of_member_node(from);
                let id = self.member_by_host(host).map(|m| m.id.clone());
                if let Some(id) = id {
                    self.depart(ctx, id);
                }
                // Ack — even for an unknown host (the member's retransmit
                // after its departure was checkpointed but the ack lost) —
                // rides the next checkpoint, never earlier.
                if !self.pending_leave_acks.contains(&from) {
                    self.pending_leave_acks.push(from);
                }
            }
            RtMsg::FailureNotice { failed } => {
                // Ignore accusations from non-members: a wrongfully
                // departed member behind a healed partition would
                // otherwise depart half the group with its stale
                // suspicions before its own `NotMember` lands.
                if self.member_by_host(host_of_member_node(from)).is_none() {
                    return;
                }
                if self.server.group().member(&failed).is_some() {
                    self.stats.failures_detected += 1;
                    self.depart(ctx, failed);
                }
                // Already departed: the sequenced `MemberLeft` broadcast
                // is already on its way to the accuser; nothing to do.
            }
            RtMsg::Nack { interval } => {
                self.stats.nacks += 1;
                let host = host_of_member_node(from);
                let member = self.member_by_host(host).cloned();
                let (Some(member), Some(message)) = (member, self.history.get(&interval)) else {
                    // Unknown member or rolled-back interval: the prober's
                    // heartbeat will sort it out (`NotMember` / epoch).
                    return;
                };
                let encryptions: Vec<Encryption> = message
                    .index
                    .indices(member.id.digits())
                    .map(|e| message.encryptions[e].clone())
                    .collect();
                self.stats.recovery_encryptions += encryptions.len() as u64;
                self.shared.record_recovery_size(encryptions.len() as u64);
                ctx.send(
                    from,
                    RtMsg::Recover {
                        interval,
                        encryptions,
                        sent_at: message.sent_at,
                    },
                );
            }
            RtMsg::ServerPing { id } => {
                if self.verified(&id, from) {
                    ctx.send(
                        from,
                        RtMsg::ServerPong {
                            epoch: self.epoch,
                            seq: self.seq,
                            interval: self.server.interval(),
                        },
                    );
                } else {
                    ctx.send(from, RtMsg::NotMember { id });
                }
            }
            RtMsg::ResyncRequest { id } => {
                if !self.verified(&id, from) {
                    ctx.send(from, RtMsg::NotMember { id });
                    return;
                }
                self.stats.resyncs += 1;
                let group = self.server.group();
                let idx = group.index_of(&id).expect("verified member has an index");
                let member = group.members()[idx].clone();
                let table = group.table(idx).clone();
                let welcome = self
                    .server
                    .refresh_welcome(&id)
                    .expect("verified member holds path keys");
                ctx.send(
                    from,
                    RtMsg::Resync {
                        member,
                        table: Box::new(table),
                        welcome,
                        epoch: self.epoch,
                        seq: self.seq,
                        next_interval_at: self.next_interval_at,
                    },
                );
            }
            _ => {}
        }
    }

    fn member_by_host(&self, host: HostId) -> Option<&Member> {
        self.server
            .group()
            .members()
            .iter()
            .find(|m| m.host == host)
    }

    /// `true` iff `id` is a member AND the claim comes from its host.
    fn verified(&self, id: &UserId, from: NodeId) -> bool {
        self.server
            .group()
            .member(id)
            .is_some_and(|m| m.host == host_of_member_node(from))
    }

    fn end_interval(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        if self.shared.is_shutdown() {
            return;
        }
        self.rekey_round(ctx);
        ctx.send_after(
            SERVER,
            self.shared.knobs().rekey_period,
            RtMsg::IntervalTick { gen: self.tick_gen },
        );
    }

    /// Ends one interval: welcomes, multicast, checkpoint, leave acks.
    fn rekey_round(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        let outcome = self.server.end_interval();
        self.stats.intervals += 1;
        self.next_interval_at = ctx.now() + self.shared.knobs().rekey_period;
        for welcome in outcome.welcomes {
            self.stats.welcomes += 1;
            let host = self
                .server
                .group()
                .member(&welcome.id)
                .expect("welcomed member is in the group")
                .host;
            ctx.send(
                node_of_host(host),
                RtMsg::Welcome {
                    welcome,
                    epoch: self.epoch,
                    next_interval_at: self.next_interval_at,
                },
            );
        }
        let message = Arc::new(IntervalMessage {
            interval: outcome.interval,
            epoch: self.epoch,
            sent_at: ctx.now(),
            index: self.split_index.advance(&outcome.rekey.encryptions),
            encryptions: outcome.rekey.encryptions,
        });
        self.history.insert(outcome.interval, Arc::clone(&message));
        // Empty intervals still multicast: members advance their interval
        // counter from the (empty) related set, keeping NACK checks quiet.
        let mut fanout = 0u64;
        for hop in server_next_hops(self.server.group().server_table()) {
            self.stats.forward_copies += 1;
            fanout += 1;
            ctx.send(
                node_of_host(hop.neighbor.member.host),
                RtMsg::Forward {
                    level: hop.forward_level,
                    prefix: PrefixBuf::of_hop(&hop),
                    message: Arc::clone(&message),
                },
            );
        }
        self.shared.record_forward_fanout(fanout);
        self.shared
            .span("interval", self.last_round_at, ctx.now(), outcome.interval);
        self.last_round_at = ctx.now();
        self.checkpoint(ctx);
    }

    /// Records the interval-boundary checkpoint — *after* the multicast,
    /// so no member is ever ahead of the journal — then releases the
    /// leave acks it covers.
    fn checkpoint(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        // Guard *before* building the checkpoint: cloning the server is
        // O(members) per interval, which a disabled journal (the sharded
        // mega runtime) must never pay.
        if self.journal.is_enabled() {
            self.journal.record(journal::Checkpoint {
                server: self.server.clone(),
                seq: self.seq,
                history: self.history.clone(),
            });
            self.stats.checkpoints += 1;
        }
        for node in std::mem::take(&mut self.pending_leave_acks) {
            self.stats.leave_acks += 1;
            ctx.send(node, RtMsg::LeaveAck);
        }
    }

    /// Shutdown flush: fold any pending membership work into an interval,
    /// then push every member its latest related set so the final
    /// interval is discoverable even if every multicast copy was lost.
    fn flush(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        let (joins, leaves) = self.server.pending();
        if joins > 0 || leaves > 0 {
            self.rekey_round(ctx);
        }
        if let Some((&interval, message)) = self.history.iter().next_back() {
            let members: Vec<Member> = self.server.group().members().to_vec();
            for member in members {
                let encryptions: Vec<Encryption> = message
                    .index
                    .indices(member.id.digits())
                    .map(|e| message.encryptions[e].clone())
                    .collect();
                self.stats.recovery_encryptions += encryptions.len() as u64;
                self.shared.record_recovery_size(encryptions.len() as u64);
                ctx.send(
                    node_of_host(member.host),
                    RtMsg::Recover {
                        interval,
                        encryptions,
                        sent_at: message.sent_at,
                    },
                );
            }
        }
        self.checkpoint(ctx);
    }

    /// The server process respawns at the end of an outage window: it
    /// restores the latest checkpoint (mid-interval mutations since then
    /// are lost by design — the affected members re-request), bumps the
    /// epoch, and re-announces itself with an immediate interval.
    fn restart(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        self.stats.restarts += 1;
        self.epoch += 1;
        self.shared
            .span("restart", ctx.now(), ctx.now(), self.epoch);
        self.tick_gen += 1;
        self.pending_leave_acks.clear();
        if let Some(cp) = self.journal.restore() {
            self.server = cp.server;
            self.seq = cp.seq;
            self.history = cp.history;
        }
        // The maintainer's previous-interval sequence may describe an
        // interval the rollback discarded; start from a clean rebuild.
        self.split_index = SplitIndexMaintainer::default();
        // The immediate interval is the restart beacon: its `Forward`
        // copies carry the new epoch, and every member that sees it (or
        // the next `ServerPong`) resyncs.
        self.end_interval(ctx);
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId) {
        let host = host_of_member_node(from);
        if let Some(member) = self.member_by_host(host).cloned() {
            // Retransmitted join (the original accept was lost): resend
            // the current snapshot without a new mutation.
            let group = self.server.group();
            let idx = group.index_of(&member.id).expect("member has an index");
            let table = group.table(idx).clone();
            ctx.send(
                from,
                RtMsg::JoinAccepted {
                    member,
                    table: Box::new(table),
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
            return;
        }
        let id = self
            .server
            .request_join(host, &*self.net, ctx.now())
            .expect("ID space sized for the churn trace");
        self.stats.joins += 1;
        self.seq += 1;
        let group = self.server.group();
        let idx = group.index_of(&id).expect("member was just admitted");
        let member = group.members()[idx].clone();
        let table = group.table(idx).clone();
        for existing in group.members() {
            if existing.id == id {
                continue;
            }
            ctx.send(
                node_of_host(existing.host),
                RtMsg::NewMember {
                    record: member.clone(),
                    rtt: self.net.rtt(existing.host, member.host),
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
        }
        ctx.send(
            from,
            RtMsg::JoinAccepted {
                member,
                table: Box::new(table),
                epoch: self.epoch,
                seq: self.seq,
            },
        );
    }

    fn depart(&mut self, ctx: &mut Ctx<'_, RtMsg>, id: UserId) {
        self.server
            .request_leave(&id, &*self.net)
            .expect("departing member is in the group");
        self.stats.departures += 1;
        self.seq += 1;
        let group = self.server.group();
        let candidates = crate::repair::replacement_candidates(
            group.spec().depth(),
            group.k(),
            &id,
            group.members().iter(),
            |m| &m.id,
        );
        for existing in group.members() {
            let replacements: Vec<(Member, Micros)> = candidates
                .iter()
                .map(|c| ((*c).clone(), self.net.rtt(existing.host, c.host)))
                .collect();
            ctx.send(
                node_of_host(existing.host),
                RtMsg::MemberLeft {
                    departed: id.clone(),
                    replacements,
                    epoch: self.epoch,
                    seq: self.seq,
                },
            );
        }
    }
}

/// Member-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemberStats {
    /// `Forward` copies received.
    pub copies_received: u64,
    /// `Forward` copies sent onward.
    pub copies_forwarded: u64,
    /// Sum of copy payload sizes received (encryptions per split copy).
    pub payload_encryptions: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// Encryptions obtained via unicast recovery.
    pub recovered_encryptions: u64,
    /// Heartbeat pings sent.
    pub pings_sent: u64,
    /// Neighbors evicted after unanswered pings.
    pub evictions: u64,
    /// Control retransmissions (join/leave/NACK/resync retries).
    pub retransmissions: u64,
    /// Highest attempt count any retry entry reached (≤ the configured
    /// cap by construction).
    pub max_retry_attempts: u32,
    /// Full snapshots applied (`Resync` messages accepted).
    pub resyncs: u64,
    /// Times this node rejoined after the server disowned it.
    pub rejoins: u64,
    /// Evicted neighbors reinstated after answering a probation probe.
    pub rehabilitations: u64,
    /// Rekey intervals applied to the key agent.
    pub intervals_applied: u64,
    /// Summed µs from each interval's multicast to its local application
    /// (recovery latency numerator; divide by `intervals_applied`).
    pub apply_delay_total: u64,
}

/// A buffered rekey payload for one interval, applied strictly in order.
enum PendingPayload {
    /// A multicast copy (the member's related set is a subset, Lemma 3).
    Mesh(Arc<IntervalMessage>),
    /// A unicast recovery reply (already exactly the related set).
    Unicast {
        encryptions: Vec<Encryption>,
        sent_at: SimTime,
    },
}

/// A buffered membership mutation, applied strictly in `seq` order.
enum SeqUpdate {
    Insert {
        record: Member,
        rtt: Micros,
    },
    Remove {
        departed: UserId,
        replacements: Vec<(Member, Micros)>,
    },
}

/// What a retry entry is waiting for. Each kind exists at most once per
/// member (`Nack` once per interval), so the retry map stays tiny.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Retrying {
    /// `JoinRequest` unacknowledged (no `JoinAccepted` yet).
    Join,
    /// `LeaveRequest` unacknowledged (no `LeaveAck` yet).
    Leave,
    /// A full snapshot is needed (sequence gap, epoch bump, NACK cap
    /// exhausted, or a `Welcome` that never arrived).
    Resync,
    /// An interval missing past its deadline.
    Nack(u64),
}

/// One retry entry: how often it fired and when it next fires.
#[derive(Debug, Clone, Copy)]
struct RetryState {
    attempts: u32,
    due: SimTime,
}

struct RtMember<S: SharedHandle> {
    shared: S,
    member: Option<Member>,
    table: Option<NeighborTable>,
    agent: Option<UserAgent>,
    /// Last server epoch observed; any bump forces a resync.
    epoch: u64,
    /// Highest membership mutation applied in `epoch`.
    applied_seq: u64,
    /// Out-of-order membership mutations, keyed by `seq`.
    update_buf: BTreeMap<u64, SeqUpdate>,
    /// Set when an epoch bump invalidated `applied_seq`; only a snapshot
    /// clears it (sequenced updates alone cannot prove freshness).
    sync_stale: bool,
    /// This node asked to join and was not yet accepted.
    join_requested: bool,
    /// This node asked to leave and was not yet acknowledged.
    leave_pending: bool,
    departed: bool,
    /// Out-of-order rekey payloads, drained from `agent.interval + 1`.
    pending: BTreeMap<u64, PendingPayload>,
    /// Highest interval the server provably completed (from `Forward`,
    /// `Welcome`, `Recover`, `Resync`, `ServerPong`): the member never
    /// NACKs beyond its evidence, so it stays quiet through a server
    /// outage instead of flooding a dead server.
    server_interval_seen: u64,
    /// Highest interval whose copy this member has already forwarded.
    last_forwarded: u64,
    /// Neighbors evicted locally but possibly still in stale in-flight
    /// state; forwarding routes around them.
    suspected: BTreeSet<UserId>,
    /// Evicted records on probation: probed each beat, reinstated on a
    /// Pong, dropped when the server's repair broadcast confirms the
    /// departure.
    suspect_records: BTreeMap<UserId, NeighborRecord>,
    /// Ids the server has departed; a probation Pong cannot resurrect
    /// them.
    departed_seen: BTreeSet<UserId>,
    /// Outstanding heartbeat pings: token → target.
    outstanding: BTreeMap<u64, UserId>,
    next_token: u64,
    /// Stale-chain guard for `HeartbeatTick`.
    heartbeat_gen: u64,
    heartbeat_running: bool,
    /// Stale-chain guard for `IntervalCheck`.
    check_gen: u64,
    /// Stale-chain guard for `RetryTick`.
    retry_gen: u64,
    /// Live retry entries, fired by `RetryTick` at their due times.
    retries: BTreeMap<Retrying, RetryState>,
    /// Largest multicast-to-arrival delay observed on `Forward` copies
    /// since the last `IntervalCheck` rotation (adaptive NACK pipeline
    /// estimate, numerator of the current window).
    delay_seen: SimTime,
    /// The previous rotation window's largest observed delay.
    delay_seen_prev: SimTime,
    /// When the next rekey interval is expected to end (from the last
    /// `Welcome`/`Resync`, advanced each `IntervalCheck` firing).
    next_boundary: SimTime,
    /// The interval that ends at `next_boundary`: once the boundary
    /// passes, this interval exists even if no evidence of it arrived.
    expected_interval: u64,
    /// Intervals already NACKed during shutdown (the drain sends
    /// immediately instead of arming timers; this dedups).
    shutdown_nacked: BTreeSet<u64>,
    /// Whether the one-shot shutdown resync was already sent.
    shutdown_resynced: bool,
    stats: MemberStats,
}

impl<S: SharedHandle> RtMember<S> {
    fn new(shared: S) -> RtMember<S> {
        RtMember {
            shared,
            member: None,
            table: None,
            agent: None,
            epoch: 0,
            applied_seq: 0,
            update_buf: BTreeMap::new(),
            sync_stale: false,
            join_requested: false,
            leave_pending: false,
            departed: false,
            pending: BTreeMap::new(),
            server_interval_seen: 0,
            last_forwarded: 0,
            suspected: BTreeSet::new(),
            suspect_records: BTreeMap::new(),
            departed_seen: BTreeSet::new(),
            outstanding: BTreeMap::new(),
            next_token: 0,
            heartbeat_gen: 0,
            heartbeat_running: false,
            check_gen: 0,
            retry_gen: 0,
            retries: BTreeMap::new(),
            delay_seen: 0,
            delay_seen_prev: 0,
            next_boundary: 0,
            expected_interval: 0,
            shutdown_nacked: BTreeSet::new(),
            shutdown_resynced: false,
            stats: MemberStats::default(),
        }
    }

    /// Grace before NACKing a missing interval, adapted to the overlay
    /// pipeline this member actually observes: 1.5× the largest
    /// multicast-to-arrival delay of the last two check windows plus a
    /// small margin, clamped to `[100 ms, nack_grace]`. A member that has
    /// seen no copy yet (or none recently) falls back to the configured
    /// grace, so cold starts and outages stay conservative.
    fn adaptive_grace(&self) -> SimTime {
        let seen = self.delay_seen.max(self.delay_seen_prev);
        if seen == 0 {
            return self.shared.knobs().nack_grace;
        }
        (seen + seen / 2 + 50_000).clamp(100_000, self.shared.knobs().nack_grace)
    }

    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        if self.departed
            && !matches!(
                msg,
                RtMsg::LeaveAck | RtMsg::RetryTick { .. } | RtMsg::Restart
            )
        {
            return;
        }
        match msg {
            RtMsg::JoinRequest if self.member.is_none() && !self.join_requested => {
                self.join_requested = true;
                ctx.send(SERVER, RtMsg::JoinRequest);
                self.arm(
                    ctx,
                    Retrying::Join,
                    ctx.now() + self.shared.knobs().retry_base,
                );
            }
            RtMsg::JoinAccepted {
                member,
                table,
                epoch,
                seq,
            } => {
                // Duplicate or jitter-reordered stale accept: ignore.
                if self.member.is_some() && epoch == self.epoch && seq <= self.applied_seq {
                    return;
                }
                self.epoch = self.epoch.max(epoch);
                self.member = Some(member);
                self.table = Some(*table);
                self.applied_seq = seq;
                self.update_buf.retain(|&s, _| s > seq);
                self.sync_stale = false;
                self.retries.remove(&Retrying::Join);
                // Welcome safety net: if the key material never arrives
                // (lost to an outage window), fetch a snapshot instead.
                self.arm(
                    ctx,
                    Retrying::Resync,
                    ctx.now()
                        + 2 * self.shared.knobs().rekey_period
                        + self.shared.knobs().nack_grace,
                );
                self.drain_updates(ctx);
                self.start_heartbeat(ctx);
            }
            RtMsg::Welcome {
                welcome,
                epoch,
                next_interval_at,
            } => {
                if epoch < self.epoch || self.member.is_none() {
                    return;
                }
                self.note_epoch(ctx, epoch);
                let interval = welcome.interval;
                self.agent = Some(UserAgent::from_welcome(welcome));
                self.server_interval_seen = self.server_interval_seen.max(interval);
                self.pending.retain(|&i, _| i > interval);
                if !self.sync_stale {
                    self.retries.remove(&Retrying::Resync);
                }
                self.drain_payloads(ctx);
                self.arm_check(ctx, next_interval_at);
            }
            RtMsg::NewMember {
                record,
                rtt,
                epoch,
                seq,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch == self.epoch && self.member.is_some() {
                    self.on_sequenced(ctx, seq, SeqUpdate::Insert { record, rtt });
                }
            }
            RtMsg::MemberLeft {
                departed,
                replacements,
                epoch,
                seq,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch == self.epoch && self.member.is_some() {
                    self.on_sequenced(
                        ctx,
                        seq,
                        SeqUpdate::Remove {
                            departed,
                            replacements,
                        },
                    );
                }
            }
            RtMsg::LeaveRequest if self.member.is_some() && !self.leave_pending => {
                self.leave_pending = true;
                self.departed = true;
                self.retire();
                ctx.send(SERVER, RtMsg::LeaveRequest);
                // The ack rides the next checkpoint, so the first retry
                // only fires once a full rekey period has gone unanswered.
                self.arm(
                    ctx,
                    Retrying::Leave,
                    ctx.now() + self.shared.knobs().rekey_period + self.shared.knobs().retry_base,
                );
            }
            RtMsg::LeaveAck => {
                self.leave_pending = false;
                self.retries.remove(&Retrying::Leave);
            }
            RtMsg::Forward {
                level,
                prefix,
                message,
            } => {
                self.stats.copies_received += 1;
                self.delay_seen = self
                    .delay_seen
                    .max(ctx.now().saturating_sub(message.sent_at));
                let split_size = message.index.related_ranges(prefix.as_slice()).total() as u64;
                self.stats.payload_encryptions += split_size;
                self.shared.record_split_payload(split_size);
                self.note_epoch(ctx, message.epoch);
                self.server_interval_seen = self.server_interval_seen.max(message.interval);
                // Forward duty: once per interval, rows `level..D` of the
                // table (Fig. 2), routing around suspects (§2.3).
                if message.interval > self.last_forwarded {
                    if let Some(table) = &self.table {
                        self.last_forwarded = message.interval;
                        let suspected = &self.suspected;
                        let mut fanout = 0u64;
                        for hop in user_next_hops_with(table, level, &|id| !suspected.contains(id))
                        {
                            self.stats.copies_forwarded += 1;
                            fanout += 1;
                            ctx.send(
                                node_of_host(hop.neighbor.member.host),
                                RtMsg::Forward {
                                    level: hop.forward_level,
                                    prefix: PrefixBuf::of_hop(&hop),
                                    message: Arc::clone(&message),
                                },
                            );
                        }
                        self.shared.record_forward_fanout(fanout);
                    }
                }
                // Key state: any copy addressed to us carries our full
                // related set (Lemma 3 / Corollary 1), so one per interval
                // suffices. Buffer pre-welcome copies; Welcome prunes.
                let needed = self
                    .agent
                    .as_ref()
                    .is_none_or(|a| message.interval > a.interval());
                if needed {
                    self.pending
                        .entry(message.interval)
                        .or_insert(PendingPayload::Mesh(message));
                    self.drain_payloads(ctx);
                }
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::Recover {
                interval,
                encryptions,
                sent_at,
            } => {
                self.server_interval_seen = self.server_interval_seen.max(interval);
                let needed = self.agent.as_ref().is_some_and(|a| interval > a.interval())
                    && !self.pending.contains_key(&interval);
                if needed {
                    self.stats.recovered_encryptions += encryptions.len() as u64;
                    self.pending.insert(
                        interval,
                        PendingPayload::Unicast {
                            encryptions,
                            sent_at,
                        },
                    );
                    self.drain_payloads(ctx);
                }
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::IntervalCheck { gen } => {
                if gen != self.check_gen {
                    return;
                }
                self.scan_missing(ctx, 0);
                // This timer fires `adaptive_grace` past each expected
                // interval boundary. If the boundary passed without any
                // evidence of the interval (every copy to us and to our
                // upstream lost, or the server is down), probe for it
                // speculatively: a live server answers with the related
                // set, a dead one stays silent and the retry lineage
                // escalates into the existing resync machinery.
                if !self.shared.is_shutdown() {
                    if let (Some(agent), true) = (&self.agent, self.member.is_some()) {
                        let next = agent.interval() + 1;
                        if next > self.server_interval_seen
                            && next <= self.expected_interval
                            && !self.pending.contains_key(&next)
                            && !self.retries.contains_key(&Retrying::Nack(next))
                        {
                            self.arm(ctx, Retrying::Nack(next), ctx.now());
                        }
                    }
                }
                self.delay_seen_prev = self.delay_seen;
                self.delay_seen = 0;
                if !self.shared.is_shutdown() {
                    self.next_boundary += self.shared.knobs().rekey_period;
                    self.expected_interval += 1;
                    let deadline = self.next_boundary + self.adaptive_grace();
                    ctx.send_after(
                        ctx.self_id(),
                        deadline.saturating_sub(ctx.now()).max(1),
                        RtMsg::IntervalCheck { gen },
                    );
                }
            }
            RtMsg::RetryTick { gen } => {
                if gen != self.retry_gen {
                    return;
                }
                self.fire_due_retries(ctx);
                self.schedule_retry_tick(ctx);
            }
            RtMsg::HeartbeatTick { gen } => self.heartbeat(ctx, gen),
            RtMsg::Ping { token } => {
                // Answered whenever the process is up (even before our own
                // JoinAccepted lands — an established member may learn of
                // us via NewMember and ping first on a faster path).
                // Departed and crashed nodes absorb pings, which is what
                // the detector keys on.
                ctx.send(from, RtMsg::Pong { token });
            }
            RtMsg::Pong { token } => {
                let Some(id) = self.outstanding.remove(&token) else {
                    return;
                };
                // Probation: an evicted suspect that answers is
                // reinstated — unless the server already departed it.
                if let Some(record) = self.suspect_records.remove(&id) {
                    if !self.departed_seen.contains(&id) {
                        if let Some(table) = &mut self.table {
                            self.suspected.remove(&id);
                            table.insert(record);
                            self.stats.rehabilitations += 1;
                        }
                    }
                }
            }
            RtMsg::ServerPong {
                epoch,
                seq,
                interval,
            } => {
                self.note_epoch(ctx, epoch);
                if epoch != self.epoch {
                    return;
                }
                self.server_interval_seen = self.server_interval_seen.max(interval);
                if seq > self.applied_seq && self.member.is_some() {
                    // A membership broadcast never reached us (e.g. our
                    // own outage window). Give in-flight copies the grace
                    // period, then snapshot.
                    self.arm(
                        ctx,
                        Retrying::Resync,
                        ctx.now() + self.shared.knobs().nack_grace,
                    );
                }
                let grace = self.adaptive_grace();
                self.scan_missing(ctx, grace);
            }
            RtMsg::NotMember { id } if self.member.as_ref().is_some_and(|m| m.id == id) => {
                // Wrongfully departed (e.g. behind a healed partition):
                // start over from scratch.
                self.stats.rejoins += 1;
                self.reset_to_unjoined();
                self.join_requested = true;
                ctx.send(SERVER, RtMsg::JoinRequest);
                self.arm(
                    ctx,
                    Retrying::Join,
                    ctx.now() + self.shared.knobs().retry_base,
                );
            }
            RtMsg::Resync {
                member,
                table,
                welcome,
                epoch,
                seq,
                next_interval_at,
            } => {
                if epoch < self.epoch || self.departed {
                    return;
                }
                self.stats.resyncs += 1;
                self.epoch = epoch;
                self.member = Some(member);
                self.table = Some(*table);
                self.applied_seq = seq;
                self.update_buf.retain(|&s, _| s > seq);
                self.sync_stale = false;
                let interval = welcome.interval;
                self.agent = Some(UserAgent::from_welcome(welcome));
                self.server_interval_seen = self.server_interval_seen.max(interval);
                self.pending.retain(|&i, _| i > interval);
                // The snapshot table is authoritative; local suspicion
                // state against it is stale.
                self.suspected.clear();
                self.suspect_records.clear();
                self.outstanding.clear();
                self.retries.remove(&Retrying::Resync);
                self.retries.remove(&Retrying::Join);
                self.retries
                    .retain(|k, _| !matches!(k, Retrying::Nack(i) if *i <= interval));
                self.drain_updates(ctx);
                self.drain_payloads(ctx);
                self.arm_check(ctx, next_interval_at);
                self.start_heartbeat(ctx);
            }
            RtMsg::Restart => {
                // Our outage window ended: every timer chain died with the
                // suppressed deliveries, and any pong that was in flight
                // is gone — forget outstanding probes so we do not evict
                // healthy neighbors for our own downtime.
                self.outstanding.clear();
                self.schedule_retry_tick(ctx);
                if self.leave_pending {
                    self.arm(ctx, Retrying::Leave, ctx.now());
                } else if self.member.is_some() {
                    self.arm(ctx, Retrying::Resync, ctx.now());
                    self.heartbeat_running = false;
                    self.start_heartbeat(ctx);
                } else if self.join_requested {
                    self.arm(ctx, Retrying::Join, ctx.now());
                }
            }
            _ => {}
        }
    }
}

impl<S: SharedHandle> RtMember<S> {
    /// Observes a server epoch: any bump invalidates our sequence state
    /// and forces a snapshot resync (a restarted server rolled back to
    /// its last checkpoint, so no incremental path is trustworthy).
    fn note_epoch(&mut self, ctx: &mut Ctx<'_, RtMsg>, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            self.update_buf.clear();
            self.sync_stale = true;
            if self.member.is_some() {
                self.arm(ctx, Retrying::Resync, ctx.now());
            }
        }
    }

    /// Buffers a membership mutation and applies every consecutive one.
    fn on_sequenced(&mut self, ctx: &mut Ctx<'_, RtMsg>, seq: u64, update: SeqUpdate) {
        if seq <= self.applied_seq {
            return;
        }
        self.update_buf.insert(seq, update);
        self.drain_updates(ctx);
    }

    fn drain_updates(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        while let Some(update) = self.update_buf.remove(&(self.applied_seq + 1)) {
            self.applied_seq += 1;
            self.apply_update(update);
        }
        if !self.update_buf.is_empty() {
            // A gap: give the in-flight broadcast the grace period, then
            // fetch a snapshot. (If it lands in time, the armed resync
            // dissolves at fire time — see `fire_retry`.)
            self.arm(
                ctx,
                Retrying::Resync,
                ctx.now() + self.shared.knobs().nack_grace,
            );
        }
    }

    fn apply_update(&mut self, update: SeqUpdate) {
        match update {
            SeqUpdate::Insert { record, rtt } => {
                self.suspected.remove(&record.id);
                self.suspect_records.remove(&record.id);
                self.departed_seen.remove(&record.id);
                let own = self.member.as_ref().map(|m| &m.id);
                if let Some(table) = &mut self.table {
                    if own != Some(&record.id) {
                        table.insert(NeighborRecord {
                            member: record,
                            rtt,
                        });
                    }
                }
            }
            SeqUpdate::Remove {
                departed,
                replacements,
            } => {
                self.suspected.remove(&departed);
                self.suspect_records.remove(&departed);
                self.departed_seen.insert(departed.clone());
                self.outstanding.retain(|_, id| *id != departed);
                let own = self.member.as_ref().map(|m| m.id.clone());
                if let Some(table) = &mut self.table {
                    table.remove(&departed);
                    for (m, rtt) in replacements {
                        if Some(&m.id) != own.as_ref()
                            && m.id != departed
                            && !self.suspected.contains(&m.id)
                        {
                            table.insert(NeighborRecord { member: m, rtt });
                        }
                    }
                }
            }
        }
    }

    /// Applies buffered rekey payloads strictly in interval order,
    /// starting at `agent.interval + 1`; prunes anything at or below the
    /// agent, plus any NACK retry the application satisfied.
    fn drain_payloads(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        let now = ctx.now();
        let (Some(agent), Some(member)) = (self.agent.as_mut(), self.member.as_ref()) else {
            return;
        };
        loop {
            while let Some((&first, _)) = self.pending.first_key_value() {
                if first <= agent.interval() {
                    self.pending.remove(&first);
                } else {
                    break;
                }
            }
            let next = agent.interval() + 1;
            let (sent_at, span) = match self.pending.remove(&next) {
                None => break,
                Some(PendingPayload::Mesh(message)) => {
                    let related: Vec<usize> = message.index.indices(member.id.digits()).collect();
                    agent.handle_rekey(next, related.iter().map(|&e| &message.encryptions[e]));
                    (message.sent_at, "apply")
                }
                Some(PendingPayload::Unicast {
                    encryptions,
                    sent_at,
                }) => {
                    agent.handle_rekey(next, encryptions.iter());
                    (sent_at, "recovery")
                }
            };
            self.stats.intervals_applied += 1;
            let delay = now.saturating_sub(sent_at);
            self.stats.apply_delay_total += delay;
            self.shared.record_apply(span, sent_at, now, next);
        }
        let applied = agent.interval();
        self.retries
            .retain(|k, _| !matches!(k, Retrying::Nack(i) if *i <= applied));
    }

    /// Arms a NACK for every interval the evidence says exists but we
    /// neither hold nor have buffered. During shutdown the NACK goes out
    /// immediately (timers no longer fire), deduplicated per interval.
    fn scan_missing(&mut self, ctx: &mut Ctx<'_, RtMsg>, grace: SimTime) {
        let Some(agent) = &self.agent else { return };
        let start = agent.interval() + 1;
        let end = self.server_interval_seen;
        if start > end {
            return;
        }
        let due = ctx.now() + grace;
        for i in start..=end {
            if self.pending.contains_key(&i) {
                continue;
            }
            if !self.shared.is_shutdown() && self.retries.contains_key(&Retrying::Nack(i)) {
                continue;
            }
            self.arm(ctx, Retrying::Nack(i), due);
        }
    }

    /// Registers a retry entry (first fire at `due`) and makes sure a
    /// retry timer is running. During shutdown the action fires inline
    /// instead — the event queue is draining and timers are dead.
    fn arm(&mut self, ctx: &mut Ctx<'_, RtMsg>, kind: Retrying, due: SimTime) {
        if self.shared.is_shutdown() {
            self.fire_shutdown(ctx, kind);
            return;
        }
        self.retries
            .entry(kind)
            .or_insert(RetryState { attempts: 0, due });
        self.schedule_retry_tick(ctx);
    }

    /// The shutdown form of a retry: send once, immediately, deduplicated.
    fn fire_shutdown(&mut self, ctx: &mut Ctx<'_, RtMsg>, kind: Retrying) {
        match kind {
            Retrying::Nack(i) => {
                if self.shutdown_nacked.insert(i) {
                    self.stats.nacks_sent += 1;
                    ctx.send(SERVER, RtMsg::Nack { interval: i });
                }
            }
            Retrying::Resync => {
                if !self.shutdown_resynced {
                    if let Some(member) = &self.member {
                        self.shutdown_resynced = true;
                        let id = member.id.clone();
                        ctx.send(SERVER, RtMsg::ResyncRequest { id });
                    }
                }
            }
            Retrying::Join => ctx.send(SERVER, RtMsg::JoinRequest),
            Retrying::Leave => ctx.send(SERVER, RtMsg::LeaveRequest),
        }
    }

    /// (Re)schedules the single retry timer at the earliest due time.
    fn schedule_retry_tick(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        if self.shared.is_shutdown() {
            return;
        }
        let Some(min_due) = self.retries.values().map(|st| st.due).min() else {
            return;
        };
        self.retry_gen += 1;
        ctx.send_after(
            ctx.self_id(),
            min_due.saturating_sub(ctx.now()).max(1),
            RtMsg::RetryTick {
                gen: self.retry_gen,
            },
        );
    }

    fn fire_due_retries(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        let now = ctx.now();
        let due: Vec<Retrying> = self
            .retries
            .iter()
            .filter(|(_, st)| st.due <= now)
            .map(|(k, _)| *k)
            .collect();
        for kind in due {
            self.fire_retry(ctx, kind);
        }
    }

    fn fire_retry(&mut self, ctx: &mut Ctx<'_, RtMsg>, kind: Retrying) {
        let now = ctx.now();
        // Entries whose goal was met since arming dissolve silently.
        let satisfied = match kind {
            Retrying::Join => self.member.is_some(),
            Retrying::Leave => !self.leave_pending,
            Retrying::Resync => {
                self.member.is_none()
                    || (!self.sync_stale
                        && self.update_buf.is_empty()
                        && self
                            .agent
                            .as_ref()
                            .is_some_and(|a| a.interval() >= self.server_interval_seen))
            }
            Retrying::Nack(i) => {
                self.pending.contains_key(&i)
                    || self.agent.as_ref().is_none_or(|a| a.interval() >= i)
            }
        };
        if satisfied {
            self.retries.remove(&kind);
            return;
        }
        let Some(&st) = self.retries.get(&kind) else {
            return;
        };
        // A NACK that exhausted its attempts escalates to a snapshot:
        // the server-assisted resync replaces the whole retry lineage.
        if matches!(kind, Retrying::Nack(_)) && st.attempts >= self.shared.knobs().retry_cap {
            self.retries.remove(&kind);
            self.arm(ctx, Retrying::Resync, now);
            return;
        }
        let attempts = (st.attempts + 1).min(self.shared.knobs().retry_cap);
        let due = now + self.shared.knobs().backoff(attempts);
        self.retries.insert(kind, RetryState { attempts, due });
        self.stats.max_retry_attempts = self.stats.max_retry_attempts.max(attempts);
        if st.attempts > 0 || matches!(kind, Retrying::Join | Retrying::Leave) {
            // Join/leave send inline when first requested, so every fire
            // of those re-transmits; a NACK's or resync's first fire is
            // its scheduled first send, not a retransmission.
            self.stats.retransmissions += 1;
        }
        match kind {
            Retrying::Join => ctx.send(SERVER, RtMsg::JoinRequest),
            Retrying::Leave => ctx.send(SERVER, RtMsg::LeaveRequest),
            Retrying::Resync => {
                let id = self.member.as_ref().expect("checked above").id.clone();
                ctx.send(SERVER, RtMsg::ResyncRequest { id });
            }
            Retrying::Nack(i) => {
                self.stats.nacks_sent += 1;
                ctx.send(SERVER, RtMsg::Nack { interval: i });
            }
        }
    }

    fn start_heartbeat(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        if self.heartbeat_running || self.shared.is_shutdown() {
            return;
        }
        self.heartbeat_running = true;
        self.heartbeat_gen += 1;
        // Stagger first beats across the membership so a join burst does
        // not synchronize every ping burst.
        let mut rng = node_rng(self.shared.knobs().seed, ctx.self_id());
        let jitter = rng.gen_range(1..=self.shared.knobs().heartbeat_period.max(1));
        ctx.send_after(
            ctx.self_id(),
            jitter,
            RtMsg::HeartbeatTick {
                gen: self.heartbeat_gen,
            },
        );
    }

    fn heartbeat(&mut self, ctx: &mut Ctx<'_, RtMsg>, gen: u64) {
        if gen != self.heartbeat_gen {
            return;
        }
        if self.table.is_none() {
            self.heartbeat_running = false;
            return;
        }
        // Evict neighbors whose previous ping went unanswered; they go on
        // probation and the server is notified (and re-notified every
        // beat until its repair broadcast lands).
        let timed_out: BTreeSet<UserId> = std::mem::take(&mut self.outstanding)
            .into_values()
            .collect();
        let mut evicted: Vec<NeighborRecord> = Vec::new();
        if let Some(table) = &mut self.table {
            if !timed_out.is_empty() {
                evicted = table
                    .iter_all()
                    .filter(|r| timed_out.contains(&r.member.id))
                    .cloned()
                    .collect();
                for _ in table.evict_where(|r| timed_out.contains(&r.member.id)) {}
            }
        }
        for record in evicted {
            self.stats.evictions += 1;
            self.suspected.insert(record.member.id.clone());
            self.suspect_records
                .insert(record.member.id.clone(), record);
        }
        for id in self.suspect_records.keys() {
            ctx.send(SERVER, RtMsg::FailureNotice { failed: id.clone() });
        }
        if self.shared.is_shutdown() {
            self.heartbeat_running = false;
            return;
        }
        // Ping every stored neighbor plus every probation suspect.
        let mut targets: Vec<(HostId, UserId)> = Vec::new();
        if let Some(table) = &self.table {
            for record in table.iter_all() {
                targets.push((record.member.host, record.member.id.clone()));
            }
        }
        for record in self.suspect_records.values() {
            targets.push((record.member.host, record.member.id.clone()));
        }
        for (host, id) in targets {
            let token = self.next_token;
            self.next_token += 1;
            self.outstanding.insert(token, id);
            self.stats.pings_sent += 1;
            ctx.send(node_of_host(host), RtMsg::Ping { token });
        }
        // Probe the server: its pong is our NACK evidence and our
        // membership certificate; a NotMember reply triggers a rejoin.
        if let Some(member) = &self.member {
            ctx.send(
                SERVER,
                RtMsg::ServerPing {
                    id: member.id.clone(),
                },
            );
        }
        ctx.send_after(
            ctx.self_id(),
            self.shared.knobs().heartbeat_period,
            RtMsg::HeartbeatTick { gen },
        );
    }

    /// (Re)anchors the NACK check timer at `next_interval_at` plus the
    /// adaptive grace. Each firing then re-anchors at the next expected
    /// boundary, so the offset tracks the observed pipeline delay instead
    /// of staying at the configured worst case.
    fn arm_check(&mut self, ctx: &mut Ctx<'_, RtMsg>, next_interval_at: SimTime) {
        if self.shared.is_shutdown() {
            return;
        }
        self.check_gen += 1;
        self.next_boundary = next_interval_at;
        self.expected_interval = self
            .agent
            .as_ref()
            .map_or(self.server_interval_seen, |a| a.interval())
            + 1;
        let deadline = next_interval_at + self.adaptive_grace();
        ctx.send_after(
            ctx.self_id(),
            deadline.saturating_sub(ctx.now()).max(1),
            RtMsg::IntervalCheck {
                gen: self.check_gen,
            },
        );
    }

    /// Clears every trace of membership so the node can rejoin from
    /// scratch (after the server disowned it).
    fn reset_to_unjoined(&mut self) {
        self.member = None;
        self.table = None;
        self.agent = None;
        self.applied_seq = 0;
        self.update_buf.clear();
        self.sync_stale = false;
        self.join_requested = false;
        self.pending.clear();
        self.server_interval_seen = 0;
        self.last_forwarded = 0;
        self.suspected.clear();
        self.suspect_records.clear();
        self.departed_seen.clear();
        self.outstanding.clear();
        self.heartbeat_gen += 1;
        self.heartbeat_running = false;
        self.check_gen += 1;
        self.retries.clear();
        self.retry_gen += 1;
    }

    /// Drops the local protocol state on a voluntary leave (the leave
    /// retry entry itself is armed by the caller).
    fn retire(&mut self) {
        self.table = None;
        self.agent = None;
        self.pending.clear();
        self.update_buf.clear();
        self.suspected.clear();
        self.suspect_records.clear();
        self.outstanding.clear();
        self.heartbeat_gen += 1;
        self.heartbeat_running = false;
        self.check_gen += 1;
        self.retries.clear();
        self.retry_gen += 1;
    }
}

/// A protocol participant of the runtime: the server or a member.
pub struct RtActor<NET>(ActorKind<NET>);

enum ActorKind<NET> {
    Server(Box<RtServer<NET>>),
    Member(Box<RtMember<Rc<Shared>>>),
}

impl<NET: Network> Node for RtActor<NET> {
    type Msg = RtMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        match &mut self.0 {
            ActorKind::Server(s) => s.receive(ctx, from, msg),
            ActorKind::Member(m) => m.receive(ctx, from, msg),
        }
    }
}

/// Aggregated outcome of a runtime session: counters, histogram
/// summaries, and the tracing-span tail, for reports and benches.
///
/// The counter fields are integers and the histogram/span types are
/// `Eq`, so two snapshots from identically seeded runs can be compared
/// wholesale in determinism tests; [`MetricsSnapshot::to_json`] renders
/// the same data as a byte-stable JSON document for bench artifacts.
///
/// The struct is `#[non_exhaustive]`: obtain one via
/// [`GroupRuntime::snapshot`] and read the fields you need — new series
/// may appear in later versions without breaking callers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct MetricsSnapshot {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Members in the group at the end.
    pub members: usize,
    /// Joins admitted by the server.
    pub joins: u64,
    /// Departures processed by the server.
    pub departures: u64,
    /// Departures that were detected by heartbeats (crashes).
    pub failures_detected: u64,
    /// `Forward` copies sent (server seeds + member forwards).
    pub forward_copies: u64,
    /// Copies dropped by the loss model (legacy i.i.d., fault-plan loss,
    /// and partition cuts).
    pub copies_lost: u64,
    /// Deliveries absorbed by crashed nodes.
    pub dead_letters: u64,
    /// Deliveries suppressed by outage windows (node temporarily down).
    pub suppressed: u64,
    /// NACKs received by the server.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Heartbeat pings sent by members.
    pub pings: u64,
    /// Neighbor evictions after unanswered pings.
    pub evictions: u64,
    /// Control retransmissions by members (join/leave/NACK/resync).
    pub retransmissions: u64,
    /// Highest retry attempt count any member reached (≤ the cap).
    pub max_retry_attempts: u32,
    /// Full state snapshots the server served.
    pub resyncs: u64,
    /// Members that rejoined after being disowned.
    pub rejoins: u64,
    /// Evicted neighbors reinstated after answering a probation probe.
    pub rehabilitations: u64,
    /// Server restarts (journal restores).
    pub restarts: u64,
    /// Checkpoints written to the crash journal.
    pub checkpoints: u64,
    /// Total messages delivered.
    pub delivered: u64,
    /// Welcome packets issued by the server.
    pub welcomes: u64,
    /// Leave acknowledgements sent (each after a covering checkpoint).
    pub leave_acks: u64,
    /// Key-wrap encryptions produced by the key tree's batch rekeys.
    pub tree_encryptions: u64,
    /// Retired key versions resumed past a tombstone during rekeying.
    pub tombstone_hits: u64,
    /// Messages cut by fault-plan partitions (0 without a plan).
    pub partition_cuts: u64,
    /// `Forward` copies dropped by fault-plan loss (0 without a plan;
    /// excludes the legacy i.i.d. `loss` stream).
    pub fault_loss_drops: u64,
    /// Peak in-flight event count inside the simulator.
    pub peak_queue_depth: usize,
    /// µs from each interval's multicast to its local application.
    pub apply_delay_us: HistogramSnapshot,
    /// Membership mutations folded into each batch rekey.
    pub batch_size: HistogramSnapshot,
    /// Encryptions carried per split `Forward` copy received.
    pub split_payload: HistogramSnapshot,
    /// Copies sent per forwarding step (server seeds + member duty).
    pub forward_fanout: HistogramSnapshot,
    /// Encryptions per unicast recovery reply.
    pub recovery_size: HistogramSnapshot,
    /// Tail of the tracing-span ring (oldest spans drop first).
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring before this snapshot was taken.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// Renders the snapshot as a deterministic JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, p50, p95, p99}}, "spans_dropped": n, "spans": [...]}`.
    /// Identically seeded runs produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.begin_object();
        w.begin_named_object("counters");
        w.field_u64("intervals", self.intervals);
        w.field_usize("members", self.members);
        w.field_u64("joins", self.joins);
        w.field_u64("departures", self.departures);
        w.field_u64("failures_detected", self.failures_detected);
        w.field_u64("forward_copies", self.forward_copies);
        w.field_u64("copies_lost", self.copies_lost);
        w.field_u64("dead_letters", self.dead_letters);
        w.field_u64("suppressed", self.suppressed);
        w.field_u64("nacks", self.nacks);
        w.field_u64("recovery_encryptions", self.recovery_encryptions);
        w.field_u64("pings", self.pings);
        w.field_u64("evictions", self.evictions);
        w.field_u64("retransmissions", self.retransmissions);
        w.field_u64("max_retry_attempts", u64::from(self.max_retry_attempts));
        w.field_u64("resyncs", self.resyncs);
        w.field_u64("rejoins", self.rejoins);
        w.field_u64("rehabilitations", self.rehabilitations);
        w.field_u64("restarts", self.restarts);
        w.field_u64("checkpoints", self.checkpoints);
        w.field_u64("delivered", self.delivered);
        w.field_u64("welcomes", self.welcomes);
        w.field_u64("leave_acks", self.leave_acks);
        w.field_u64("tree_encryptions", self.tree_encryptions);
        w.field_u64("tombstone_hits", self.tombstone_hits);
        w.field_u64("partition_cuts", self.partition_cuts);
        w.field_u64("fault_loss_drops", self.fault_loss_drops);
        w.field_usize("peak_queue_depth", self.peak_queue_depth);
        w.end_object();
        w.begin_named_object("histograms");
        for (name, histogram) in [
            ("apply_delay_us", &self.apply_delay_us),
            ("batch_size", &self.batch_size),
            ("split_payload", &self.split_payload),
            ("forward_fanout", &self.forward_fanout),
            ("recovery_size", &self.recovery_size),
        ] {
            w.begin_named_object(name);
            histogram.write_fields(&mut w);
            w.end_object();
        }
        w.end_object();
        w.field_u64("spans_dropped", self.spans_dropped);
        w.begin_named_array("spans");
        for span in &self.spans {
            w.begin_object();
            w.field_str("name", span.name);
            w.field_u64("start", span.start);
            w.field_u64("end", span.end);
            w.field_u64("detail", span.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

type DelayFn = Box<dyn FnMut(NodeId, NodeId) -> SimTime>;

/// The event-driven group runtime: see the module docs.
///
/// Join handles are join-trace indices: the `k`-th [`ChurnOp::Join`] gets
/// handle `k` and runs on `HostId(k)`; the server runs on the substrate's
/// last host.
pub struct GroupRuntime<NET: Network + 'static> {
    sim: Simulation<RtActor<NET>, DelayFn>,
    shared: Rc<Shared>,
    loss: f64,
    joins: usize,
    server_host: HostId,
    /// The chaos injector, kept so [`GroupRuntime::snapshot`] can read
    /// its fault counters after the run.
    faults: Option<Rc<RefCell<FaultInjector>>>,
}

impl<NET: Network + 'static> GroupRuntime<NET> {
    /// Builds a runtime over `net` with the server on the last host.
    ///
    /// `config` is valid by construction ([`RuntimeConfigBuilder::build`]
    /// holds the validation), so this never panics on configuration.
    /// Debug builds warn when `nack_grace` does not cover a worst-case
    /// server round trip, which makes spurious NACKs likely.
    pub fn new(group: GroupConfig, config: RuntimeConfig, net: NET) -> GroupRuntime<NET> {
        let net = Rc::new(net);
        let server_host = HostId(net.host_count() - 1);
        #[cfg(debug_assertions)]
        {
            let worst_round_trip = (0..net.host_count())
                .map(HostId)
                .filter(|&h| h != server_host)
                .map(|h| net.one_way(server_host, h) + net.one_way(h, server_host))
                .max()
                .unwrap_or(0);
            if config.nack_grace < worst_round_trip {
                eprintln!(
                    "warning: nack_grace ({} µs) is below the worst-case server \
                     round trip ({} µs); expect spurious NACKs",
                    config.nack_grace, worst_round_trip
                );
            }
        }
        let shared = Rc::new(Shared {
            knobs: Knobs::of_config(&config),
            shutdown: Cell::new(false),
            metrics: RuntimeMetrics::new(),
        });
        let mut server_fsm = group.build(server_host);
        server_fsm.instrument_tree(TreeMetrics::in_registry(&shared.metrics.registry));
        let server = RtActor(ActorKind::Server(Box::new(RtServer {
            net: Rc::clone(&net),
            shared: Rc::clone(&shared),
            server: server_fsm,
            epoch: 0,
            seq: 0,
            tick_gen: 0,
            next_interval_at: config.rekey_period,
            last_round_at: 0,
            history: BTreeMap::new(),
            split_index: SplitIndexMaintainer::default(),
            journal: journal::Journal::new(),
            pending_leave_acks: Vec::new(),
            stats: ServerStats::default(),
        })));
        let delay_net = Rc::clone(&net);
        let delay: DelayFn = Box::new(move |a, b| {
            let host = |n: NodeId| {
                if n == SERVER {
                    server_host
                } else {
                    host_of_member_node(n)
                }
            };
            delay_net.one_way(host(a), host(b)).max(1)
        });
        let mut sim = Simulation::new(vec![server], delay);
        if config.loss > 0.0 {
            let mut rng = seeded_rng(config.seed ^ 0x4C4F_5353_u64);
            let loss = config.loss;
            sim.set_loss(move |_, _, _, msg: &RtMsg| {
                matches!(msg, RtMsg::Forward { .. }) && rng.gen_bool(loss)
            });
        }
        sim.inject_at(
            config.rekey_period,
            SERVER,
            SERVER,
            RtMsg::IntervalTick { gen: 0 },
        );
        GroupRuntime {
            sim,
            shared,
            loss: config.loss,
            joins: 0,
            server_host,
            faults: None,
        }
    }

    /// Wires a chaos [`FaultPlan`] into the runtime: partitions cut every
    /// message across cells, i.i.d./burst loss thins `Forward` copies (on
    /// top of the legacy `config.loss` draw, whose stream is unchanged),
    /// jitter delays and reorders network sends, and each outage window
    /// silences its node and ends with a `Restart` event at the window's
    /// close. Call before [`GroupRuntime::run_trace`]; the injector is
    /// seeded from `config.seed`, so a fixed seed and plan reproduce the
    /// run bit for bit.
    pub fn with_faults(mut self, plan: FaultPlan) -> GroupRuntime<NET> {
        let inj = Rc::new(RefCell::new(
            plan.injector(self.shared.knobs().seed ^ CHAOS_SEED),
        ));
        let loss = self.loss;
        let mut rng = seeded_rng(self.shared.knobs().seed ^ 0x4C4F_5353_u64);
        let drop_inj = Rc::clone(&inj);
        self.sim.set_loss(move |now, from, to, msg: &RtMsg| {
            let mut inj = drop_inj.borrow_mut();
            if inj.cut(now, from, to) {
                return true;
            }
            if !matches!(msg, RtMsg::Forward { .. }) {
                return false;
            }
            // `|` (not `||`): both streams must advance on every copy for
            // the draws to stay aligned across runs.
            (loss > 0.0 && rng.gen_bool(loss)) | inj.lose(from)
        });
        if plan.jitter_max() > 0 {
            let jitter_inj = Rc::clone(&inj);
            self.sim.set_jitter(move |_, from, to, _msg: &RtMsg| {
                jitter_inj.borrow_mut().extra_delay(from, to)
            });
        }
        let down_inj = Rc::clone(&inj);
        self.sim
            .set_downtime(move |now, node| down_inj.borrow_mut().is_down(now, node));
        for outage in plan.outages() {
            self.sim
                .inject_at(outage.until, outage.node, outage.node, RtMsg::Restart);
        }
        self.faults = Some(inj);
        self
    }

    /// Plays a churn trace: advances the clock to each event's time and
    /// applies it. Events are processed in time order (stable for ties).
    /// Returns the handles assigned to the trace's joins.
    ///
    /// # Panics
    ///
    /// Panics if an event refers to a handle that has not joined, lies in
    /// the past, or the substrate runs out of hosts.
    pub fn run_trace(&mut self, events: &[ChurnEvent]) -> Vec<usize> {
        let mut ordered: Vec<&ChurnEvent> = events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        let mut handles = Vec::new();
        for event in ordered {
            self.sim.run_until(event.at);
            match event.op {
                ChurnOp::Join => {
                    assert!(
                        self.joins < self.server_host.0,
                        "substrate has no free host for another join"
                    );
                    let node = self
                        .sim
                        .spawn(RtActor(ActorKind::Member(Box::new(RtMember::new(
                            Rc::clone(&self.shared),
                        )))));
                    handles.push(self.joins);
                    self.joins += 1;
                    debug_assert_eq!(node.0, self.joins);
                    self.sim.inject_at(event.at, node, node, RtMsg::JoinRequest);
                }
                ChurnOp::Leave(member) => {
                    let node = self.member_node(member);
                    self.sim
                        .inject_at(event.at, node, node, RtMsg::LeaveRequest);
                }
                ChurnOp::Crash(member) => {
                    let node = self.member_node(member);
                    self.sim.kill(node);
                }
            }
        }
        handles
    }

    /// Runs the clock to `until`, then shuts timers down and drains the
    /// event queue — in-flight repairs, recoveries, and detections all
    /// complete. After the drain the server runs *flush rounds*: each
    /// folds any pending membership work into a final interval and pushes
    /// every member its latest related set, so the last interval is
    /// discoverable even when every multicast copy of it was lost; rounds
    /// repeat until no membership work or leave ack is outstanding.
    /// Returns the final simulated time.
    ///
    /// # Panics
    ///
    /// Panics if the flush rounds fail to converge (e.g. a fault window
    /// extends past `until`, leaving the server unreachable forever).
    pub fn finish(&mut self, until: SimTime) -> SimTime {
        self.sim.run_until(until);
        self.shared.shutdown.set(true);
        self.sim.run_until_idle();
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds <= 64, "shutdown flush did not converge");
            let now = self.sim.now();
            self.sim.inject_at(now, SERVER, SERVER, RtMsg::Flush);
            self.sim.run_until_idle();
            let server = self.server_ref();
            let (joins, leaves) = server.server.pending();
            if joins == 0 && leaves == 0 && server.pending_leave_acks.is_empty() {
                break;
            }
        }
        self.sim.now()
    }

    fn member_node(&self, handle: usize) -> NodeId {
        assert!(handle < self.joins, "member handle {handle} never joined");
        NodeId(handle + 1)
    }

    fn server_ref(&self) -> &RtServer<NET> {
        match &self.sim.nodes()[SERVER.0].0 {
            ActorKind::Server(s) => s,
            ActorKind::Member(_) => unreachable!("node 0 is the server"),
        }
    }

    fn member_ref(&self, handle: usize) -> &RtMember<Rc<Shared>> {
        match &self.sim.nodes()[self.member_node(handle).0].0 {
            ActorKind::Member(m) => m,
            ActorKind::Server(_) => unreachable!("member nodes start at 1"),
        }
    }

    /// The server-side facade state machine (and through it the oracle
    /// [`Group`] and the key tree).
    pub fn server(&self) -> &GroupServer {
        &self.server_ref().server
    }

    /// The oracle membership view.
    pub fn group(&self) -> &Group {
        self.server().group()
    }

    /// The server's crash journal.
    pub fn journal(&self) -> &journal::Journal {
        &self.server_ref().journal
    }

    /// The server's epoch (0 until the first restart).
    pub fn server_epoch(&self) -> u64 {
        self.server_ref().epoch
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Members spawned so far (handles are `0..member_count()`).
    pub fn member_count(&self) -> usize {
        self.joins
    }

    /// The key agent of join-handle `member`, once welcomed.
    pub fn agent(&self, member: usize) -> Option<&UserAgent> {
        self.member_ref(member).agent.as_ref()
    }

    /// The local neighbor table of join-handle `member`, while active.
    pub fn member_table(&self, member: usize) -> Option<&NeighborTable> {
        self.member_ref(member).table.as_ref()
    }

    /// The member record of join-handle `member`, once admitted.
    pub fn member_record(&self, member: usize) -> Option<&Member> {
        self.member_ref(member).member.as_ref()
    }

    /// Per-member counters.
    pub fn member_stats(&self, member: usize) -> MemberStats {
        self.member_ref(member).stats
    }

    /// `false` once the member's node has been crashed.
    pub fn is_member_alive(&self, member: usize) -> bool {
        self.sim.is_alive(self.member_node(member))
    }

    /// Server-side counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server_ref().stats
    }

    /// Checks that the *members' local tables* (not the oracle's) are
    /// K-consistent for the oracle membership (Definition 3).
    ///
    /// # Panics
    ///
    /// Panics if an oracle member never received its overlay state (its
    /// node has no table) — that indicates a protocol bug, not a
    /// consistency violation.
    pub fn check_consistency(&self) -> Result<(), ConsistencyViolation> {
        let group = self.group();
        let members: Vec<Member> = group.members().to_vec();
        let tables: Vec<NeighborTable> = members
            .iter()
            .map(|m| {
                let node = node_of_host(m.host);
                match &self.sim.nodes()[node.0].0 {
                    ActorKind::Member(member) => {
                        member.table.clone().expect("admitted member holds a table")
                    }
                    ActorKind::Server(_) => unreachable!("member hosts map to member nodes"),
                }
            })
            .collect();
        check_consistency(group.spec(), &members, &tables, group.k())
    }

    /// The metrics registry shared by the server, members, and key tree.
    /// Use it to attach extra series before a run or to read raw
    /// histograms; [`GroupRuntime::snapshot`] is the aggregated view.
    pub fn registry(&self) -> &Registry {
        &self.shared.metrics.registry
    }

    /// Aggregates the session's counters, histograms, and spans.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let server = self.server_stats();
        let metrics = &self.shared.metrics;
        let registry = metrics.registry.snapshot();
        let counter = |name: &str| registry.counters.get(name).copied().unwrap_or(0);
        let fault_stats = self
            .faults
            .as_ref()
            .map(|inj| inj.borrow().stats())
            .unwrap_or_default();
        let mut snapshot = MetricsSnapshot {
            intervals: server.intervals,
            members: self.group().len(),
            joins: server.joins,
            departures: server.departures,
            failures_detected: server.failures_detected,
            forward_copies: server.forward_copies,
            copies_lost: self.sim.dropped(),
            dead_letters: self.sim.dead_letters(),
            suppressed: self.sim.suppressed(),
            nacks: server.nacks,
            recovery_encryptions: server.recovery_encryptions,
            pings: 0,
            evictions: 0,
            retransmissions: 0,
            max_retry_attempts: 0,
            resyncs: server.resyncs,
            rejoins: 0,
            rehabilitations: 0,
            restarts: server.restarts,
            checkpoints: server.checkpoints,
            delivered: self.sim.delivered(),
            welcomes: server.welcomes,
            leave_acks: server.leave_acks,
            tree_encryptions: counter("tree_encryptions"),
            tombstone_hits: counter("tree_tombstone_hits"),
            partition_cuts: fault_stats.partition_cuts,
            fault_loss_drops: fault_stats.loss_drops,
            peak_queue_depth: self.sim.peak_pending(),
            apply_delay_us: metrics.apply_delay_us.snapshot(),
            batch_size: registry
                .histograms
                .get("tree_batch_size")
                .cloned()
                .unwrap_or_default(),
            split_payload: metrics.split_payload.snapshot(),
            forward_fanout: metrics.forward_fanout.snapshot(),
            recovery_size: metrics.recovery_size.snapshot(),
            spans: registry.spans,
            spans_dropped: registry.spans_dropped,
        };
        for handle in 0..self.joins {
            let stats = self.member_stats(handle);
            snapshot.forward_copies += stats.copies_forwarded;
            snapshot.pings += stats.pings_sent;
            snapshot.evictions += stats.evictions;
            snapshot.retransmissions += stats.retransmissions;
            snapshot.max_retry_attempts = snapshot.max_retry_attempts.max(stats.max_retry_attempts);
            snapshot.rejoins += stats.rejoins;
            snapshot.rehabilitations += stats.rehabilitations;
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::{MatrixNetwork, PlanetLabParams};
    use rekey_sim::GilbertElliott;

    const SEC: SimTime = 1_000_000;

    fn small_net(seed: u64) -> MatrixNetwork {
        let mut rng = seeded_rng(seed);
        MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng)
    }

    fn config() -> GroupConfig {
        GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(7)
    }

    /// Every surviving member's agent is at the server's interval with the
    /// server's group key, and can open data sealed under it.
    fn assert_members_current(rt: &GroupRuntime<MatrixNetwork>, survivors: &[usize]) {
        let server_interval = rt.server().interval();
        let group_key = rt
            .server()
            .tree()
            .group_key()
            .expect("group is non-empty")
            .clone();
        let mut rng = seeded_rng(0xDA7A);
        for &m in survivors {
            let agent = rt.agent(m).expect("survivor was welcomed");
            assert_eq!(
                agent.interval(),
                server_interval,
                "member {m} lags the server"
            );
            assert_eq!(
                agent.group_key(),
                Some(&group_key),
                "member {m} holds a stale group key"
            );
            let sealed = agent.seal_data(b"pay-per-view frame", &mut rng).unwrap();
            assert_eq!(agent.open_data(&sealed).unwrap(), b"pay-per-view frame");
        }
        rt.check_consistency()
            .expect("local tables are K-consistent");
    }

    #[test]
    fn joins_then_steady_state_keeps_every_member_current() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(1));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        assert_eq!(handles, (0..10).collect::<Vec<_>>());
        rt.finish(61 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.joins, 10);
        assert!(report.intervals >= 6, "got {} intervals", report.intervals);
        assert_eq!(rt.group().len(), 10);
        assert_members_current(&rt, &handles);
        // Steady state is quiet: no NACKs, no evictions, no resyncs, no
        // retransmissions on a lossless run.
        assert_eq!(report.nacks, 0);
        assert_eq!(report.evictions, 0);
        assert_eq!(report.resyncs, 0);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.restarts, 0);
        assert!(report.pings > 0, "heartbeats ran");
        assert!(
            report.checkpoints >= report.intervals,
            "every interval checkpoints"
        );
    }

    #[test]
    fn voluntary_leaves_repair_every_surviving_table() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(2));
        let mut trace: Vec<ChurnEvent> = (0..12)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::leave(25 * SEC, 3));
        trace.push(ChurnEvent::leave(32 * SEC, 7));
        rt.run_trace(&trace);
        rt.finish(75 * SEC);
        assert_eq!(rt.group().len(), 10);
        let report = rt.snapshot();
        assert_eq!(report.departures, 2);
        assert_eq!(report.failures_detected, 0);
        let survivors: Vec<usize> = (0..12).filter(|m| *m != 3 && *m != 7).collect();
        assert_members_current(&rt, &survivors);
        // The departed members retired their local protocol state.
        assert!(rt.agent(3).is_none());
        assert!(rt.member_table(7).is_none());
    }

    #[test]
    fn forward_loss_is_recovered_by_nack_unicast() {
        let runtime_config = RuntimeConfig::builder().loss(0.3).seed(0xBEEF).build();
        let mut rt = GroupRuntime::new(config(), runtime_config, small_net(3));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        // Churn in the middle so rekey messages are non-trivial throughout.
        let mut trace = trace;
        trace.push(ChurnEvent::leave(35 * SEC, 2));
        trace.push(ChurnEvent::join(45 * SEC));
        rt.run_trace(&trace);
        rt.finish(101 * SEC);
        let report = rt.snapshot();
        assert!(report.copies_lost > 0, "loss model never fired");
        assert!(report.nacks > 0, "lost copies were never NACKed");
        assert!(
            report.max_retry_attempts <= RuntimeConfig::default().retry_cap(),
            "retry counter escaped its cap"
        );
        let survivors: Vec<usize> = (0..11).filter(|m| *m != 2).collect();
        assert_members_current(&rt, &survivors);
    }

    #[test]
    fn crashes_are_detected_evicted_and_repaired() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(4));
        let mut trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::crash(31 * SEC, 4));
        trace.push(ChurnEvent::crash(31 * SEC, 8));
        rt.run_trace(&trace);
        // Detection needs up to two heartbeat periods plus repair traffic.
        rt.finish(121 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.failures_detected, 2);
        assert_eq!(report.departures, 2);
        assert!(report.evictions > 0);
        assert!(report.dead_letters > 0, "crashed nodes absorbed traffic");
        assert_eq!(rt.group().len(), 8);
        assert!(!rt.is_member_alive(4));
        let survivors: Vec<usize> = (0..10).filter(|m| *m != 4 && *m != 8).collect();
        assert_members_current(&rt, &survivors);
    }

    /// The server dies mid-run (its rekey tick is swallowed by the outage
    /// window) and respawns from its crash journal: the epoch bumps, every
    /// member resyncs, and the group ends the run current and consistent.
    #[test]
    fn server_restart_resumes_from_journal() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(7))
            .with_faults(FaultPlan::new().outage(SERVER, 24 * SEC, 38 * SEC));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        rt.finish(90 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.restarts, 1);
        assert_eq!(rt.server_epoch(), 1);
        assert!(report.suppressed > 0, "the outage swallowed deliveries");
        assert!(
            report.resyncs >= 10,
            "every member resyncs across the epoch bump (got {})",
            report.resyncs
        );
        assert!(rt.journal().recorded() > 0);
        assert_eq!(rt.group().len(), 10);
        assert_members_current(&rt, &handles);
    }

    /// Two members are cut off by a partition long enough to be wrongfully
    /// departed; after the heal the server disowns them (`NotMember`) and
    /// they rejoin from scratch, converging with everyone else.
    #[test]
    fn partition_wrongful_departs_heal_by_rejoin() {
        let mut rt =
            GroupRuntime::new(config(), RuntimeConfig::default(), small_net(8)).with_faults(
                FaultPlan::new().partition(vec![vec![NodeId(1), NodeId(2)]], 20 * SEC, 56 * SEC),
            );
        let trace: Vec<ChurnEvent> = (0..8)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        rt.finish(150 * SEC);
        let report = rt.snapshot();
        assert_eq!(
            report.failures_detected, 2,
            "both isolated members are wrongfully departed"
        );
        assert_eq!(report.rejoins, 2, "both rejoin after the heal");
        assert!(report.evictions >= 2);
        assert!(report.copies_lost > 0, "the partition cut traffic");
        assert_eq!(rt.group().len(), 8);
        assert_members_current(&rt, &handles);
    }

    /// A joiner behind a partition retransmits its join with exponential
    /// backoff until the network heals, and its attempt counter never
    /// escapes the configured cap.
    #[test]
    fn join_behind_partition_retries_until_admitted() {
        let cfg = RuntimeConfig::default();
        let mut rt = GroupRuntime::new(config(), cfg, small_net(9))
            .with_faults(FaultPlan::new().partition(vec![vec![NodeId(1)]], 500_000, 20 * SEC));
        let mut trace = vec![ChurnEvent::join(SEC)];
        trace.extend((0..4).map(|i| ChurnEvent::join(22 * SEC + i * 200_000)));
        let handles = rt.run_trace(&trace);
        rt.finish(70 * SEC);
        let report = rt.snapshot();
        assert_eq!(report.joins, 5, "the blocked join eventually lands");
        assert!(
            report.retransmissions >= 4,
            "the blocked joiner kept retrying (got {})",
            report.retransmissions
        );
        assert!(report.max_retry_attempts <= cfg.retry_cap());
        let stats = rt.member_stats(0);
        assert!(stats.retransmissions >= 4);
        assert_eq!(rt.group().len(), 5);
        assert_members_current(&rt, &handles);
    }

    #[test]
    fn identical_seeds_reproduce_the_run_exactly() {
        let run = |loss_seed: u64| {
            let runtime_config = RuntimeConfig::builder().loss(0.2).seed(loss_seed).build();
            let plan = FaultPlan::new()
                .jitter(30_000)
                .burst_loss(GilbertElliott::moderate());
            let mut rt =
                GroupRuntime::new(config(), runtime_config, small_net(5)).with_faults(plan);
            let trace: Vec<ChurnEvent> = (0..9)
                .map(|i| ChurnEvent::join(SEC + i * 300_000))
                .chain([
                    ChurnEvent::leave(33 * SEC, 1),
                    ChurnEvent::crash(37 * SEC, 5),
                ])
                .collect();
            rt.run_trace(&trace);
            rt.finish(90 * SEC);
            (rt.snapshot(), rt.server().tree().group_key().cloned())
        };
        assert_eq!(run(11), run(11), "same seed must reproduce exactly");
        let (report_a, _) = run(11);
        let (report_b, _) = run(12);
        assert!(report_a.copies_lost > 0 && report_b.copies_lost > 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_out_of_range_loss() {
        let _ = RuntimeConfig::builder().loss(1.5).build();
    }

    #[test]
    #[should_panic(expected = "rekey period must be positive")]
    fn rejects_zero_rekey_period() {
        let _ = RuntimeConfig::builder().rekey_period(0).build();
    }

    #[test]
    #[should_panic(expected = "nack grace must be positive")]
    fn rejects_zero_nack_grace() {
        let _ = RuntimeConfig::builder().nack_grace(0).build();
    }

    /// Two identically seeded runs yield byte-identical snapshot JSON —
    /// the whole observability surface (counters, histogram summaries,
    /// span tail) is deterministic, not just the counter totals.
    #[test]
    fn identical_seeds_reproduce_snapshot_json() {
        let run = || {
            let runtime_config = RuntimeConfig::builder().loss(0.15).seed(0x0B5E).build();
            let mut rt = GroupRuntime::new(config(), runtime_config, small_net(10));
            let trace: Vec<ChurnEvent> = (0..8)
                .map(|i| ChurnEvent::join(SEC + i * 250_000))
                .chain([ChurnEvent::leave(21 * SEC, 2)])
                .collect();
            rt.run_trace(&trace);
            rt.finish(45 * SEC);
            rt.snapshot().to_json()
        };
        let json = run();
        assert_eq!(json, run(), "snapshot JSON must be byte-identical");
        // The document carries real histogram and span data, not zeros.
        let snapshot_has = |key: &str| rekey_metrics::json::has_key(&json, key);
        assert!(snapshot_has("apply_delay_us"));
        assert!(snapshot_has("tree_encryptions"));
        assert!(
            json.contains("\"name\": \"interval\""),
            "interval spans present"
        );
        assert!(json.contains("\"name\": \"apply\""), "apply spans present");
    }
}

#[cfg(test)]
mod review_repro {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    const SEC: SimTime = 1_000_000;

    #[test]
    fn mid_interval_joiner_outage_resync() {
        let mut rng = seeded_rng(0xBEEF);
        let net = MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng);
        let group = GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(3);
        // Member handle 4 joins at t=4.2s (mid first interval, ends at 10s)
        // and its node goes down for [5s, 7s): on Restart it arms a Resync
        // that fires before its Welcome exists in the tree.
        let mut rt = GroupRuntime::new(group, RuntimeConfig::default(), net)
            .with_faults(FaultPlan::new().outage(NodeId(5), 5 * SEC, 7 * SEC));
        let trace: Vec<ChurnEvent> = (0..5)
            .map(|i| ChurnEvent::join(SEC + i * 800_000))
            .collect();
        rt.run_trace(&trace);
        rt.finish(40 * SEC);
    }
}
