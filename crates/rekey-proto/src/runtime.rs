//! The event-driven group runtime: one long-lived simulation in which the
//! key server and every member are [`rekey_sim::Node`]s on a single clock.
//!
//! The synchronous [`GroupServer`]/[`UserAgent`] facade executes the
//! protocol one interval at a time with the caller as the clock; this
//! module drives the *same* state machines from a discrete-event schedule,
//! which is what the paper's own evaluation does (§4): "we simulate the
//! sending and the reception of a message as events". One implementation,
//! two drivers — the global-knowledge [`Group`] inside the server stays
//! the oracle that equivalence tests compare against.
//!
//! # Message taxonomy
//!
//! * **Timers** (`send_after`, immune to loss): `IntervalTick` fires the
//!   periodic rekey at the server (§1: "periodic batch rekeying"),
//!   `HeartbeatTick` drives each member's neighbor pings (§3.2),
//!   `IntervalCheck` is each member's NACK deadline per interval.
//! * **Membership control** (reliable unicast): `JoinRequest` /
//!   `JoinAccepted` admit a member into the overlay mid-interval (its keys
//!   arrive in `Welcome` at the interval end); `LeaveRequest` retires one;
//!   `NewMember` / `MemberLeft` carry the server-assisted table updates of
//!   §3.2, the latter with [`crate::repair`] replacement candidates.
//! * **Rekey transport** (`Forward`, subject to per-copy loss): the
//!   `FORWARD` routine of Fig. 2 executed hop by hop, each copy carrying
//!   the split index plus the served prefix (Fig. 5). `Nack` / `Recover`
//!   implement the companion work's limited unicast recovery \[31\]: a
//!   member that misses an interval fetches exactly its related set —
//!   Lemma 3 makes the need locally checkable — from the server.
//! * **Failure detection** (`Ping` / `Pong`): members ping every stored
//!   neighbor each heartbeat period; an unanswered ping evicts the record
//!   ([`NeighborTable::evict_where`]), notifies the server
//!   (`FailureNotice`), and triggers the same repair broadcast as a leave.
//!   Until eviction, forwarding routes around suspects by falling back to
//!   the next neighbor in the same `(i, j)` bucket (§2.3).
//!
//! # Failure model
//!
//! Crashed nodes are [`rekey_sim::Simulation::kill`]ed: they absorb all
//! traffic silently. Only `Forward` copies are lossy (the bulk rekey
//! payload on a UDP-like path); control traffic is reliable, matching the
//! paper's assumption that notifications and unicast recovery ride TCP.
//! Every surviving member holds the current group key once the run
//! drains: a member with a pending gap NACKs it at its next check, and
//! the server answers from its per-interval history.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use rand::Rng;
use rekey_crypto::Encryption;
use rekey_id::UserId;
use rekey_net::{HostId, Micros, Network};
use rekey_sim::{node_rng, seeded_rng, Ctx, Node, NodeId, SimTime, Simulation};
use rekey_table::{check_consistency, ConsistencyViolation, Member, NeighborRecord, NeighborTable};
use rekey_tmesh::forward::{server_next_hops, user_next_hops_with};

use crate::transport::{PrefixBuf, SplitIndex};
use crate::{Group, GroupConfig, GroupServer, UserAgent, WelcomePacket};

/// The key server's node id: always node 0.
const SERVER: NodeId = NodeId(0);

fn node_of_host(h: HostId) -> NodeId {
    NodeId(h.0 + 1)
}

fn host_of_member_node(n: NodeId) -> HostId {
    debug_assert!(n != SERVER, "the server has no member host");
    HostId(n.0 - 1)
}

/// Timing, loss, and seeding knobs of a [`GroupRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Rekey interval length (µs). The server batch-rekeys on this period.
    pub rekey_period: SimTime,
    /// Heartbeat period (µs): how often each member pings its stored
    /// neighbors. A ping unanswered by the next beat evicts the neighbor.
    pub heartbeat_period: SimTime,
    /// Grace after an interval boundary before a member NACKs a missing
    /// rekey message; must exceed the worst overlay delivery delay.
    pub nack_grace: SimTime,
    /// Independent per-copy loss probability applied to `Forward` copies.
    pub loss: f64,
    /// Seed for the runtime's randomness (loss draws, heartbeat stagger).
    /// Independent of the [`GroupConfig`] key-generation seed.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            rekey_period: 10_000_000,
            heartbeat_period: 15_000_000,
            nack_grace: 2_000_000,
            loss: 0.0,
            seed: 0,
        }
    }
}

/// One scheduled churn action for [`GroupRuntime::run_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnOp {
    /// A new host joins; it gets the next member handle (join order).
    Join,
    /// Member (by join handle) leaves voluntarily.
    Leave(usize),
    /// Member (by join handle) crashes silently: its node is killed and
    /// only heartbeat detection removes it from the group.
    Crash(usize),
}

/// A churn action with its simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Absolute simulated time of the action.
    pub at: SimTime,
    /// The action.
    pub op: ChurnOp,
}

impl ChurnEvent {
    /// A join at `at`.
    pub fn join(at: SimTime) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Join,
        }
    }

    /// A voluntary leave of join-handle `member` at `at`.
    pub fn leave(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Leave(member),
        }
    }

    /// A silent crash of join-handle `member` at `at`.
    pub fn crash(at: SimTime, member: usize) -> ChurnEvent {
        ChurnEvent {
            at,
            op: ChurnOp::Crash(member),
        }
    }
}

/// One interval's rekey message as multicast over the overlay: the
/// encryptions plus the split index that addresses them (Fig. 5). Shared
/// by reference between all in-flight copies — forwarding a copy costs no
/// payload clone.
pub struct IntervalMessage {
    /// The interval this message keys.
    pub interval: u64,
    /// The batch rekey encryptions.
    pub encryptions: Vec<Encryption>,
    /// Split index over the encryption IDs.
    pub index: SplitIndex,
}

/// Runtime protocol messages. See the module docs for the taxonomy.
pub enum RtMsg {
    /// Server timer: end the current rekey interval.
    IntervalTick,
    /// Member timer: ping neighbors, evict the unresponsive.
    HeartbeatTick,
    /// Member timer: NACK intervals still missing past their deadline.
    IntervalCheck,
    /// Injected at a joining node; forwarded to the server.
    JoinRequest,
    /// Server → joiner: admission into the overlay with a ready table.
    JoinAccepted {
        /// The new member's record.
        member: Member,
        /// The joiner's neighbor table at admission time.
        table: Box<NeighborTable>,
    },
    /// Server → joiner at interval end: the key material.
    Welcome {
        /// Path keys and interval.
        welcome: WelcomePacket,
        /// When the next interval ends, anchoring the NACK check timer.
        next_interval_at: SimTime,
    },
    /// Server → members: insert a just-admitted member.
    NewMember {
        /// The new member.
        record: Member,
        /// RTT from the receiver to the new member.
        rtt: Micros,
    },
    /// Injected at a leaving node; forwarded to the server.
    LeaveRequest,
    /// Server → members: departure plus repair candidates (§3.2).
    MemberLeft {
        /// Who departed.
        departed: UserId,
        /// Replacement candidates with receiver-personalized RTTs.
        replacements: Vec<(Member, Micros)>,
    },
    /// Member → server: a neighbor stopped answering pings.
    FailureNotice {
        /// The suspect.
        failed: UserId,
    },
    /// One overlay copy of an interval's rekey message (lossy).
    Forward {
        /// `forward_level` of Fig. 2 at the receiver.
        level: usize,
        /// The `(i, j)`-subtree prefix this copy serves (split key).
        prefix: PrefixBuf,
        /// The shared interval message.
        message: Rc<IntervalMessage>,
    },
    /// Member → server: interval missing past its deadline.
    Nack {
        /// The missing interval.
        interval: u64,
    },
    /// Server → member: the member's related set for a NACKed interval.
    Recover {
        /// The recovered interval.
        interval: u64,
        /// Exactly the requester's related encryptions (Lemma 3).
        encryptions: Vec<Encryption>,
    },
    /// Member → neighbor: heartbeat probe.
    Ping {
        /// Correlation token.
        token: u64,
    },
    /// Neighbor → member: heartbeat reply.
    Pong {
        /// Correlation token.
        token: u64,
    },
}

/// Knobs shared by every node of one runtime.
struct Shared {
    rekey_period: SimTime,
    heartbeat_period: SimTime,
    nack_grace: SimTime,
    seed: u64,
    /// Set by [`GroupRuntime::finish`]: timers stop re-arming so the
    /// event queue drains with all repairs and recoveries completed.
    shutdown: Cell<bool>,
}

/// Server-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Joins admitted.
    pub joins: u64,
    /// Departures processed (leaves + detected failures).
    pub departures: u64,
    /// Departures that arrived as failure notices.
    pub failures_detected: u64,
    /// `Forward` copies seeded by the server.
    pub forward_copies: u64,
    /// NACKs received.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Welcome packets issued.
    pub welcomes: u64,
}

struct RtServer<NET> {
    net: Rc<NET>,
    shared: Rc<Shared>,
    server: GroupServer,
    /// Interval messages kept for unicast recovery.
    history: BTreeMap<u64, Rc<IntervalMessage>>,
    stats: ServerStats,
}

impl<NET: Network> RtServer<NET> {
    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        match msg {
            RtMsg::IntervalTick => self.end_interval(ctx),
            RtMsg::JoinRequest => self.admit(ctx, from),
            RtMsg::LeaveRequest => {
                let host = host_of_member_node(from);
                let id = self
                    .server
                    .group()
                    .members()
                    .iter()
                    .find(|m| m.host == host)
                    .map(|m| m.id.clone());
                if let Some(id) = id {
                    self.depart(ctx, id);
                }
            }
            RtMsg::FailureNotice { failed } => {
                if self.server.group().member(&failed).is_some() {
                    self.stats.failures_detected += 1;
                    self.depart(ctx, failed);
                } else {
                    // Already departed: the repair broadcast raced the
                    // detector's stale observation. Answer it directly so
                    // its table converges.
                    let group = self.server.group();
                    let host = host_of_member_node(from);
                    let replacements: Vec<(Member, Micros)> =
                        crate::repair::replacement_candidates(
                            group.spec().depth(),
                            group.k(),
                            &failed,
                            group.members().iter(),
                            |m| &m.id,
                        )
                        .into_iter()
                        .map(|c| (c.clone(), self.net.rtt(host, c.host)))
                        .collect();
                    ctx.send(
                        from,
                        RtMsg::MemberLeft {
                            departed: failed,
                            replacements,
                        },
                    );
                }
            }
            RtMsg::Nack { interval } => {
                self.stats.nacks += 1;
                let host = host_of_member_node(from);
                let member = self
                    .server
                    .group()
                    .members()
                    .iter()
                    .find(|m| m.host == host)
                    .cloned();
                let (Some(member), Some(message)) = (member, self.history.get(&interval)) else {
                    return;
                };
                let encryptions: Vec<Encryption> = message
                    .index
                    .indices(member.id.digits())
                    .map(|e| message.encryptions[e].clone())
                    .collect();
                self.stats.recovery_encryptions += encryptions.len() as u64;
                ctx.send(
                    from,
                    RtMsg::Recover {
                        interval,
                        encryptions,
                    },
                );
            }
            _ => {}
        }
    }

    fn end_interval(&mut self, ctx: &mut Ctx<'_, RtMsg>) {
        if self.shared.shutdown.get() {
            return;
        }
        let outcome = self.server.end_interval();
        self.stats.intervals += 1;
        let next_interval_at = ctx.now() + self.shared.rekey_period;
        for welcome in outcome.welcomes {
            self.stats.welcomes += 1;
            let host = self
                .server
                .group()
                .member(&welcome.id)
                .expect("welcomed member is in the group")
                .host;
            ctx.send(
                node_of_host(host),
                RtMsg::Welcome {
                    welcome,
                    next_interval_at,
                },
            );
        }
        let message = Rc::new(IntervalMessage {
            interval: outcome.interval,
            index: SplitIndex::build(&outcome.rekey.encryptions),
            encryptions: outcome.rekey.encryptions,
        });
        self.history.insert(outcome.interval, Rc::clone(&message));
        // Empty intervals still multicast: members advance their interval
        // counter from the (empty) related set, keeping NACK checks quiet.
        for hop in server_next_hops(self.server.group().server_table()) {
            self.stats.forward_copies += 1;
            ctx.send(
                node_of_host(hop.neighbor.member.host),
                RtMsg::Forward {
                    level: hop.forward_level,
                    prefix: PrefixBuf::of_hop(&hop),
                    message: Rc::clone(&message),
                },
            );
        }
        ctx.send_after(SERVER, self.shared.rekey_period, RtMsg::IntervalTick);
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId) {
        let host = host_of_member_node(from);
        let id = self
            .server
            .request_join(host, &*self.net, ctx.now())
            .expect("ID space sized for the churn trace");
        self.stats.joins += 1;
        let group = self.server.group();
        let idx = group.index_of(&id).expect("member was just admitted");
        let member = group.members()[idx].clone();
        let table = group.table(idx).clone();
        for existing in group.members() {
            if existing.id == id {
                continue;
            }
            ctx.send(
                node_of_host(existing.host),
                RtMsg::NewMember {
                    record: member.clone(),
                    rtt: self.net.rtt(existing.host, member.host),
                },
            );
        }
        ctx.send(
            from,
            RtMsg::JoinAccepted {
                member,
                table: Box::new(table),
            },
        );
    }

    fn depart(&mut self, ctx: &mut Ctx<'_, RtMsg>, id: UserId) {
        self.server
            .request_leave(&id, &*self.net)
            .expect("departing member is in the group");
        self.stats.departures += 1;
        let group = self.server.group();
        let candidates = crate::repair::replacement_candidates(
            group.spec().depth(),
            group.k(),
            &id,
            group.members().iter(),
            |m| &m.id,
        );
        for existing in group.members() {
            let replacements: Vec<(Member, Micros)> = candidates
                .iter()
                .map(|c| ((*c).clone(), self.net.rtt(existing.host, c.host)))
                .collect();
            ctx.send(
                node_of_host(existing.host),
                RtMsg::MemberLeft {
                    departed: id.clone(),
                    replacements,
                },
            );
        }
    }
}

/// Member-side counters of one runtime session.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemberStats {
    /// `Forward` copies received.
    pub copies_received: u64,
    /// `Forward` copies sent onward.
    pub copies_forwarded: u64,
    /// Sum of copy payload sizes received (encryptions per split copy).
    pub payload_encryptions: u64,
    /// NACKs sent.
    pub nacks_sent: u64,
    /// Encryptions obtained via unicast recovery.
    pub recovered_encryptions: u64,
    /// Heartbeat pings sent.
    pub pings_sent: u64,
    /// Neighbors evicted after unanswered pings.
    pub evictions: u64,
}

/// A buffered rekey payload for one interval, applied strictly in order.
enum PendingPayload {
    /// A multicast copy (the member's related set is a subset, Lemma 3).
    Mesh(Rc<IntervalMessage>),
    /// A unicast recovery reply (already exactly the related set).
    Unicast(Vec<Encryption>),
}

struct RtMember {
    shared: Rc<Shared>,
    member: Option<Member>,
    table: Option<NeighborTable>,
    agent: Option<UserAgent>,
    departed: bool,
    /// Out-of-order rekey payloads, drained from `agent.interval + 1`.
    pending: BTreeMap<u64, PendingPayload>,
    /// Next interval the `IntervalCheck` timer will cover.
    next_check: u64,
    /// Highest interval whose copy this member has already forwarded.
    last_forwarded: u64,
    /// Neighbors evicted locally but possibly still in stale in-flight
    /// state; forwarding routes around them.
    suspected: BTreeSet<UserId>,
    /// Outstanding heartbeat pings: token → target.
    outstanding: BTreeMap<u64, UserId>,
    next_token: u64,
    heartbeat_running: bool,
    stats: MemberStats,
}

impl RtMember {
    fn new(shared: Rc<Shared>) -> RtMember {
        RtMember {
            shared,
            member: None,
            table: None,
            agent: None,
            departed: false,
            pending: BTreeMap::new(),
            next_check: 0,
            last_forwarded: 0,
            suspected: BTreeSet::new(),
            outstanding: BTreeMap::new(),
            next_token: 0,
            heartbeat_running: false,
            stats: MemberStats::default(),
        }
    }

    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        if self.departed {
            return;
        }
        match msg {
            RtMsg::JoinRequest if self.member.is_none() => {
                ctx.send(SERVER, RtMsg::JoinRequest);
            }
            RtMsg::JoinAccepted { member, table } => {
                self.member = Some(member);
                self.table = Some(*table);
                if !self.heartbeat_running {
                    self.heartbeat_running = true;
                    // Stagger first beats across the membership so a join
                    // burst does not synchronize every ping burst.
                    let mut rng = node_rng(self.shared.seed, ctx.self_id());
                    let jitter = rng.gen_range(1..=self.shared.heartbeat_period.max(1));
                    ctx.send_after(ctx.self_id(), jitter, RtMsg::HeartbeatTick);
                }
            }
            RtMsg::Welcome {
                welcome,
                next_interval_at,
            } => {
                let interval = welcome.interval;
                self.agent = Some(UserAgent::from_welcome(welcome));
                self.next_check = interval + 1;
                let deadline = next_interval_at + self.shared.nack_grace;
                ctx.send_after(
                    ctx.self_id(),
                    deadline.saturating_sub(ctx.now()).max(1),
                    RtMsg::IntervalCheck,
                );
                self.drain();
            }
            RtMsg::NewMember { record, rtt } => {
                self.suspected.remove(&record.id);
                let own = self.member.as_ref().map(|m| &m.id);
                if let Some(table) = &mut self.table {
                    if own != Some(&record.id) {
                        table.insert(NeighborRecord {
                            member: record,
                            rtt,
                        });
                    }
                }
            }
            RtMsg::MemberLeft {
                departed,
                replacements,
            } => {
                self.suspected.remove(&departed);
                self.outstanding.retain(|_, id| *id != departed);
                let own = self.member.as_ref().map(|m| m.id.clone());
                if let Some(table) = &mut self.table {
                    table.remove(&departed);
                    for (m, rtt) in replacements {
                        if Some(&m.id) != own.as_ref() && m.id != departed {
                            table.insert(NeighborRecord { member: m, rtt });
                        }
                    }
                }
            }
            RtMsg::LeaveRequest if self.member.is_some() => {
                self.departed = true;
                self.table = None;
                self.agent = None;
                self.pending.clear();
                self.outstanding.clear();
                ctx.send(SERVER, RtMsg::LeaveRequest);
            }
            RtMsg::Forward {
                level,
                prefix,
                message,
            } => {
                self.stats.copies_received += 1;
                self.stats.payload_encryptions +=
                    message.index.related_ranges(prefix.as_slice()).total() as u64;
                // Forward duty: once per interval, rows `level..D` of the
                // table (Fig. 2), routing around suspects (§2.3).
                if message.interval > self.last_forwarded {
                    if let Some(table) = &self.table {
                        self.last_forwarded = message.interval;
                        let suspected = &self.suspected;
                        for hop in user_next_hops_with(table, level, &|id| !suspected.contains(id))
                        {
                            self.stats.copies_forwarded += 1;
                            ctx.send(
                                node_of_host(hop.neighbor.member.host),
                                RtMsg::Forward {
                                    level: hop.forward_level,
                                    prefix: PrefixBuf::of_hop(&hop),
                                    message: Rc::clone(&message),
                                },
                            );
                        }
                    }
                }
                // Key state: any copy addressed to us carries our full
                // related set (Lemma 3 / Corollary 1), so one per interval
                // suffices. Buffer pre-welcome copies; Welcome prunes.
                let needed = self
                    .agent
                    .as_ref()
                    .is_none_or(|a| message.interval > a.interval());
                if needed {
                    self.pending
                        .entry(message.interval)
                        .or_insert(PendingPayload::Mesh(message));
                    self.drain();
                }
            }
            RtMsg::Recover {
                interval,
                encryptions,
            } => {
                let needed = self.agent.as_ref().is_some_and(|a| interval > a.interval())
                    && !self.pending.contains_key(&interval);
                if needed {
                    self.stats.recovered_encryptions += encryptions.len() as u64;
                    self.pending
                        .insert(interval, PendingPayload::Unicast(encryptions));
                    self.drain();
                }
            }
            RtMsg::IntervalCheck => {
                let Some(agent) = &self.agent else { return };
                for missing in agent.interval() + 1..=self.next_check {
                    if !self.pending.contains_key(&missing) {
                        self.stats.nacks_sent += 1;
                        ctx.send(SERVER, RtMsg::Nack { interval: missing });
                    }
                }
                self.next_check += 1;
                if !self.shared.shutdown.get() {
                    ctx.send_after(
                        ctx.self_id(),
                        self.shared.rekey_period,
                        RtMsg::IntervalCheck,
                    );
                }
            }
            RtMsg::HeartbeatTick => {
                let Some(table) = &mut self.table else {
                    self.heartbeat_running = false;
                    return;
                };
                // Evict neighbors whose previous ping went unanswered and
                // report them; the server broadcasts the repair.
                let timed_out: BTreeSet<UserId> = std::mem::take(&mut self.outstanding)
                    .into_values()
                    .collect();
                if !timed_out.is_empty() {
                    for id in table.evict_where(|r| timed_out.contains(&r.member.id)) {
                        self.stats.evictions += 1;
                        self.suspected.insert(id.clone());
                        ctx.send(SERVER, RtMsg::FailureNotice { failed: id });
                    }
                }
                if self.shared.shutdown.get() {
                    self.heartbeat_running = false;
                    return;
                }
                for record in table.iter_all() {
                    let token = self.next_token;
                    self.next_token += 1;
                    self.outstanding.insert(token, record.member.id.clone());
                    self.stats.pings_sent += 1;
                    ctx.send(node_of_host(record.member.host), RtMsg::Ping { token });
                }
                ctx.send_after(
                    ctx.self_id(),
                    self.shared.heartbeat_period,
                    RtMsg::HeartbeatTick,
                );
            }
            RtMsg::Ping { token } => {
                // Answered whenever the process is up (even before our own
                // JoinAccepted lands — an established member may learn of
                // us via NewMember and ping first on a faster path).
                // Departed and crashed nodes absorb pings, which is what
                // the detector keys on.
                ctx.send(from, RtMsg::Pong { token });
            }
            RtMsg::Pong { token } => {
                self.outstanding.remove(&token);
            }
            _ => {}
        }
    }

    /// Applies buffered payloads strictly in interval order, starting at
    /// `agent.interval + 1`; prunes anything at or below the agent.
    fn drain(&mut self) {
        let (Some(agent), Some(member)) = (self.agent.as_mut(), self.member.as_ref()) else {
            return;
        };
        loop {
            while let Some((&first, _)) = self.pending.first_key_value() {
                if first <= agent.interval() {
                    self.pending.remove(&first);
                } else {
                    break;
                }
            }
            let next = agent.interval() + 1;
            match self.pending.remove(&next) {
                None => break,
                Some(PendingPayload::Mesh(message)) => {
                    let related: Vec<usize> = message.index.indices(member.id.digits()).collect();
                    agent.handle_rekey(next, related.iter().map(|&e| &message.encryptions[e]));
                }
                Some(PendingPayload::Unicast(encryptions)) => {
                    agent.handle_rekey(next, encryptions.iter());
                }
            }
        }
    }
}

/// A protocol participant of the runtime: the server or a member.
pub struct RtActor<NET>(ActorKind<NET>);

enum ActorKind<NET> {
    Server(Box<RtServer<NET>>),
    Member(Box<RtMember>),
}

impl<NET: Network> Node for RtActor<NET> {
    type Msg = RtMsg;

    fn receive(&mut self, ctx: &mut Ctx<'_, RtMsg>, from: NodeId, msg: RtMsg) {
        match &mut self.0 {
            ActorKind::Server(s) => s.receive(ctx, from, msg),
            ActorKind::Member(m) => m.receive(ctx, from, msg),
        }
    }
}

/// Aggregated outcome of a runtime session, for reports and benches.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuntimeReport {
    /// Completed rekey intervals.
    pub intervals: u64,
    /// Members in the group at the end.
    pub members: usize,
    /// Joins admitted / departures processed / failures detected.
    pub joins: u64,
    /// Departures processed by the server.
    pub departures: u64,
    /// Departures that were detected by heartbeats (crashes).
    pub failures_detected: u64,
    /// `Forward` copies sent (server seeds + member forwards).
    pub forward_copies: u64,
    /// Copies dropped by the loss model.
    pub copies_lost: u64,
    /// Deliveries absorbed by crashed nodes.
    pub dead_letters: u64,
    /// NACKs received by the server.
    pub nacks: u64,
    /// Encryptions re-sent via unicast recovery.
    pub recovery_encryptions: u64,
    /// Heartbeat pings sent by members.
    pub pings: u64,
    /// Neighbor evictions after unanswered pings.
    pub evictions: u64,
    /// Total messages delivered.
    pub delivered: u64,
}

type DelayFn = Box<dyn FnMut(NodeId, NodeId) -> SimTime>;

/// The event-driven group runtime: see the module docs.
///
/// Join handles are join-trace indices: the `k`-th [`ChurnOp::Join`] gets
/// handle `k` and runs on `HostId(k)`; the server runs on the substrate's
/// last host.
pub struct GroupRuntime<NET: Network + 'static> {
    sim: Simulation<RtActor<NET>, DelayFn>,
    shared: Rc<Shared>,
    joins: usize,
    server_host: HostId,
}

impl<NET: Network + 'static> GroupRuntime<NET> {
    /// Builds a runtime over `net` with the server on the last host.
    ///
    /// # Panics
    ///
    /// Panics if `config.loss` is outside `[0, 1)`.
    pub fn new(group: GroupConfig, config: RuntimeConfig, net: NET) -> GroupRuntime<NET> {
        assert!(
            (0.0..1.0).contains(&config.loss),
            "loss probability must be in [0, 1)"
        );
        let net = Rc::new(net);
        let server_host = HostId(net.host_count() - 1);
        let shared = Rc::new(Shared {
            rekey_period: config.rekey_period,
            heartbeat_period: config.heartbeat_period,
            nack_grace: config.nack_grace,
            seed: config.seed,
            shutdown: Cell::new(false),
        });
        let server = RtActor(ActorKind::Server(Box::new(RtServer {
            net: Rc::clone(&net),
            shared: Rc::clone(&shared),
            server: group.build(server_host),
            history: BTreeMap::new(),
            stats: ServerStats::default(),
        })));
        let delay_net = Rc::clone(&net);
        let delay: DelayFn = Box::new(move |a, b| {
            let host = |n: NodeId| {
                if n == SERVER {
                    server_host
                } else {
                    host_of_member_node(n)
                }
            };
            delay_net.one_way(host(a), host(b)).max(1)
        });
        let mut sim = Simulation::new(vec![server], delay);
        if config.loss > 0.0 {
            let mut rng = seeded_rng(config.seed ^ 0x4C4F_5353_u64);
            let loss = config.loss;
            sim = sim.with_loss(move |_, _, msg: &RtMsg| {
                matches!(msg, RtMsg::Forward { .. }) && rng.gen_bool(loss)
            });
        }
        sim.inject_at(config.rekey_period, SERVER, SERVER, RtMsg::IntervalTick);
        GroupRuntime {
            sim,
            shared,
            joins: 0,
            server_host,
        }
    }

    /// Plays a churn trace: advances the clock to each event's time and
    /// applies it. Events are processed in time order (stable for ties).
    /// Returns the handles assigned to the trace's joins.
    ///
    /// # Panics
    ///
    /// Panics if an event refers to a handle that has not joined, lies in
    /// the past, or the substrate runs out of hosts.
    pub fn run_trace(&mut self, events: &[ChurnEvent]) -> Vec<usize> {
        let mut ordered: Vec<&ChurnEvent> = events.iter().collect();
        ordered.sort_by_key(|e| e.at);
        let mut handles = Vec::new();
        for event in ordered {
            self.sim.run_until(event.at);
            match event.op {
                ChurnOp::Join => {
                    assert!(
                        self.joins < self.server_host.0,
                        "substrate has no free host for another join"
                    );
                    let node = self
                        .sim
                        .spawn(RtActor(ActorKind::Member(Box::new(RtMember::new(
                            Rc::clone(&self.shared),
                        )))));
                    handles.push(self.joins);
                    self.joins += 1;
                    debug_assert_eq!(node.0, self.joins);
                    self.sim.inject_at(event.at, node, node, RtMsg::JoinRequest);
                }
                ChurnOp::Leave(member) => {
                    let node = self.member_node(member);
                    self.sim
                        .inject_at(event.at, node, node, RtMsg::LeaveRequest);
                }
                ChurnOp::Crash(member) => {
                    let node = self.member_node(member);
                    self.sim.kill(node);
                }
            }
        }
        handles
    }

    /// Runs the clock to `until`, then shuts timers down and drains the
    /// event queue — in-flight repairs, recoveries, and detections all
    /// complete. Returns the final simulated time.
    pub fn finish(&mut self, until: SimTime) -> SimTime {
        self.sim.run_until(until);
        self.shared.shutdown.set(true);
        self.sim.run_until_idle()
    }

    fn member_node(&self, handle: usize) -> NodeId {
        assert!(handle < self.joins, "member handle {handle} never joined");
        NodeId(handle + 1)
    }

    fn server_ref(&self) -> &RtServer<NET> {
        match &self.sim.nodes()[SERVER.0].0 {
            ActorKind::Server(s) => s,
            ActorKind::Member(_) => unreachable!("node 0 is the server"),
        }
    }

    fn member_ref(&self, handle: usize) -> &RtMember {
        match &self.sim.nodes()[self.member_node(handle).0].0 {
            ActorKind::Member(m) => m,
            ActorKind::Server(_) => unreachable!("member nodes start at 1"),
        }
    }

    /// The server-side facade state machine (and through it the oracle
    /// [`Group`] and the key tree).
    pub fn server(&self) -> &GroupServer {
        &self.server_ref().server
    }

    /// The oracle membership view.
    pub fn group(&self) -> &Group {
        self.server().group()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Members spawned so far (handles are `0..member_count()`).
    pub fn member_count(&self) -> usize {
        self.joins
    }

    /// The key agent of join-handle `member`, once welcomed.
    pub fn agent(&self, member: usize) -> Option<&UserAgent> {
        self.member_ref(member).agent.as_ref()
    }

    /// The local neighbor table of join-handle `member`, while active.
    pub fn member_table(&self, member: usize) -> Option<&NeighborTable> {
        self.member_ref(member).table.as_ref()
    }

    /// The member record of join-handle `member`, once admitted.
    pub fn member_record(&self, member: usize) -> Option<&Member> {
        self.member_ref(member).member.as_ref()
    }

    /// Per-member counters.
    pub fn member_stats(&self, member: usize) -> MemberStats {
        self.member_ref(member).stats
    }

    /// `false` once the member's node has been crashed.
    pub fn is_member_alive(&self, member: usize) -> bool {
        self.sim.is_alive(self.member_node(member))
    }

    /// Server-side counters.
    pub fn server_stats(&self) -> ServerStats {
        self.server_ref().stats
    }

    /// Checks that the *members' local tables* (not the oracle's) are
    /// K-consistent for the oracle membership (Definition 3).
    ///
    /// # Panics
    ///
    /// Panics if an oracle member never received its overlay state (its
    /// node has no table) — that indicates a protocol bug, not a
    /// consistency violation.
    pub fn check_consistency(&self) -> Result<(), ConsistencyViolation> {
        let group = self.group();
        let members: Vec<Member> = group.members().to_vec();
        let tables: Vec<NeighborTable> = members
            .iter()
            .map(|m| {
                let node = node_of_host(m.host);
                match &self.sim.nodes()[node.0].0 {
                    ActorKind::Member(member) => {
                        member.table.clone().expect("admitted member holds a table")
                    }
                    ActorKind::Server(_) => unreachable!("member hosts map to member nodes"),
                }
            })
            .collect();
        check_consistency(group.spec(), &members, &tables, group.k())
    }

    /// Aggregates the session's counters.
    pub fn report(&self) -> RuntimeReport {
        let server = self.server_stats();
        let mut report = RuntimeReport {
            intervals: server.intervals,
            members: self.group().len(),
            joins: server.joins,
            departures: server.departures,
            failures_detected: server.failures_detected,
            forward_copies: server.forward_copies,
            copies_lost: self.sim.dropped(),
            dead_letters: self.sim.dead_letters(),
            nacks: server.nacks,
            recovery_encryptions: server.recovery_encryptions,
            pings: 0,
            evictions: 0,
            delivered: self.sim.delivered(),
        };
        for handle in 0..self.joins {
            let stats = self.member_stats(handle);
            report.forward_copies += stats.copies_forwarded;
            report.pings += stats.pings_sent;
            report.evictions += stats.evictions;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_id::IdSpec;
    use rekey_net::{MatrixNetwork, PlanetLabParams};

    const SEC: SimTime = 1_000_000;

    fn small_net(seed: u64) -> MatrixNetwork {
        let mut rng = seeded_rng(seed);
        MatrixNetwork::synthetic_planetlab(&PlanetLabParams::small(), &mut rng)
    }

    fn config() -> GroupConfig {
        GroupConfig::for_spec(&IdSpec::new(3, 8).unwrap())
            .k(2)
            .seed(7)
    }

    /// Every surviving member's agent is at the server's interval with the
    /// server's group key, and can open data sealed under it.
    fn assert_members_current(rt: &GroupRuntime<MatrixNetwork>, survivors: &[usize]) {
        let server_interval = rt.server().interval();
        let group_key = rt
            .server()
            .tree()
            .group_key()
            .expect("group is non-empty")
            .clone();
        let mut rng = seeded_rng(0xDA7A);
        for &m in survivors {
            let agent = rt.agent(m).expect("survivor was welcomed");
            assert_eq!(
                agent.interval(),
                server_interval,
                "member {m} lags the server"
            );
            assert_eq!(
                agent.group_key(),
                Some(&group_key),
                "member {m} holds a stale group key"
            );
            let sealed = agent.seal_data(b"pay-per-view frame", &mut rng).unwrap();
            assert_eq!(agent.open_data(&sealed).unwrap(), b"pay-per-view frame");
        }
        rt.check_consistency()
            .expect("local tables are K-consistent");
    }

    #[test]
    fn joins_then_steady_state_keeps_every_member_current() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(1));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        let handles = rt.run_trace(&trace);
        assert_eq!(handles, (0..10).collect::<Vec<_>>());
        rt.finish(61 * SEC);
        let report = rt.report();
        assert_eq!(report.joins, 10);
        assert!(report.intervals >= 6, "got {} intervals", report.intervals);
        assert_eq!(rt.group().len(), 10);
        assert_members_current(&rt, &handles);
        // Steady state is quiet: no NACKs, no evictions on a lossless run.
        assert_eq!(report.nacks, 0);
        assert_eq!(report.evictions, 0);
        assert!(report.pings > 0, "heartbeats ran");
    }

    #[test]
    fn voluntary_leaves_repair_every_surviving_table() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(2));
        let mut trace: Vec<ChurnEvent> = (0..12)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::leave(25 * SEC, 3));
        trace.push(ChurnEvent::leave(32 * SEC, 7));
        rt.run_trace(&trace);
        rt.finish(75 * SEC);
        assert_eq!(rt.group().len(), 10);
        let report = rt.report();
        assert_eq!(report.departures, 2);
        assert_eq!(report.failures_detected, 0);
        let survivors: Vec<usize> = (0..12).filter(|m| *m != 3 && *m != 7).collect();
        assert_members_current(&rt, &survivors);
        // The departed members retired their local protocol state.
        assert!(rt.agent(3).is_none());
        assert!(rt.member_table(7).is_none());
    }

    #[test]
    fn forward_loss_is_recovered_by_nack_unicast() {
        let runtime_config = RuntimeConfig {
            loss: 0.3,
            seed: 0xBEEF,
            ..RuntimeConfig::default()
        };
        let mut rt = GroupRuntime::new(config(), runtime_config, small_net(3));
        let trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        // Churn in the middle so rekey messages are non-trivial throughout.
        let mut trace = trace;
        trace.push(ChurnEvent::leave(35 * SEC, 2));
        trace.push(ChurnEvent::join(45 * SEC));
        rt.run_trace(&trace);
        rt.finish(101 * SEC);
        let report = rt.report();
        assert!(report.copies_lost > 0, "loss model never fired");
        assert!(report.nacks > 0, "lost copies were never NACKed");
        let survivors: Vec<usize> = (0..11).filter(|m| *m != 2).collect();
        assert_members_current(&rt, &survivors);
    }

    #[test]
    fn crashes_are_detected_evicted_and_repaired() {
        let mut rt = GroupRuntime::new(config(), RuntimeConfig::default(), small_net(4));
        let mut trace: Vec<ChurnEvent> = (0..10)
            .map(|i| ChurnEvent::join(SEC + i * 200_000))
            .collect();
        trace.push(ChurnEvent::crash(31 * SEC, 4));
        trace.push(ChurnEvent::crash(31 * SEC, 8));
        rt.run_trace(&trace);
        // Detection needs up to two heartbeat periods plus repair traffic.
        rt.finish(121 * SEC);
        let report = rt.report();
        assert_eq!(report.failures_detected, 2);
        assert_eq!(report.departures, 2);
        assert!(report.evictions > 0);
        assert!(report.dead_letters > 0, "crashed nodes absorbed traffic");
        assert_eq!(rt.group().len(), 8);
        assert!(!rt.is_member_alive(4));
        let survivors: Vec<usize> = (0..10).filter(|m| *m != 4 && *m != 8).collect();
        assert_members_current(&rt, &survivors);
    }

    #[test]
    fn identical_seeds_reproduce_the_run_exactly() {
        let run = |loss_seed: u64| {
            let runtime_config = RuntimeConfig {
                loss: 0.2,
                seed: loss_seed,
                ..RuntimeConfig::default()
            };
            let mut rt = GroupRuntime::new(config(), runtime_config, small_net(5));
            let trace: Vec<ChurnEvent> = (0..9)
                .map(|i| ChurnEvent::join(SEC + i * 300_000))
                .chain([
                    ChurnEvent::leave(33 * SEC, 1),
                    ChurnEvent::crash(37 * SEC, 5),
                ])
                .collect();
            rt.run_trace(&trace);
            rt.finish(90 * SEC);
            let report = rt.report();
            (
                report.delivered,
                report.copies_lost,
                report.nacks,
                report.forward_copies,
                rt.server().tree().group_key().cloned(),
            )
        };
        assert_eq!(run(11), run(11), "same seed must reproduce exactly");
        let (_, lost_a, ..) = run(11);
        let (_, lost_b, ..) = run(12);
        assert!(lost_a > 0 && lost_b > 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn rejects_out_of_range_loss() {
        let _ = GroupRuntime::new(
            config(),
            RuntimeConfig {
                loss: 1.5,
                ..RuntimeConfig::default()
            },
            small_net(6),
        );
    }
}
